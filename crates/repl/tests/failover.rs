//! End-to-end failover: a primary with a WAL-shipping standby, killed and
//! replaced, with sessions riding across the loss.
//!
//! These are the proof obligations from the replication design:
//!
//! * zero committed (semi-sync acknowledged) writes lost across failover;
//! * no DML applied twice — acknowledged work replays from the status
//!   table, unacknowledged work is resubmitted exactly once;
//! * a deposed primary is fenced stickily: it refuses logins and writes
//!   even across its own restart.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use phoenix_core::PhoenixConnection;
use phoenix_driver::{error::codes, DriverError, Environment};
use phoenix_engine::{CommitMode, EngineConfig};
use phoenix_repl::{Shipper, Standby, StandbyConfig};
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::{Request, Response};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-repl-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn semi_sync() -> EngineConfig {
    EngineConfig {
        commit_mode: CommitMode::SemiSync,
        ..EngineConfig::default()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn count(conn: &mut phoenix_driver::Connection, sql: &str) -> i64 {
    match conn.execute(sql).unwrap().rows()[0][0] {
        Value::Int(n) => n,
        ref other => panic!("expected integer count, got {other:?}"),
    }
}

/// The tentpole proof: every write the primary acknowledged under
/// semi-sync is served by the standby after promotion, and the promoted
/// standby is a fully writable primary on the same address.
#[test]
fn promotion_preserves_every_acknowledged_write() {
    let pdir = temp_dir("promo-p");
    let sdir = temp_dir("promo-s");
    let mut h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut c = env.connect(&h.addr(), "app", "test").unwrap();
    c.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
    for i in 0..100 {
        c.execute(&format!("INSERT INTO t VALUES ({i}, 'row-{i}')"))
            .unwrap();
    }
    // Semi-sync already guarantees the standby holds every acknowledged
    // commit; wait for full catch-up (trailing markers) to be strict.
    let target = h.with_engine(|e| e.last_gsn()).unwrap();
    wait_until("standby catch-up", || standby.applied_gsn() >= target);

    // Server loss, then promotion.
    h.crash().unwrap();
    shipper.stop();
    let epoch = standby.promote(0).unwrap();
    assert!(epoch >= 2, "promotion must outrank the seed epoch");
    assert!(standby.is_promoted());

    let mut c2 = env.connect(&standby.addr(), "app", "test").unwrap();
    assert_eq!(count(&mut c2, "SELECT COUNT(*) FROM t"), 100);
    for i in [0i64, 57, 99] {
        assert_eq!(
            count(&mut c2, &format!("SELECT COUNT(*) FROM t WHERE id = {i}")),
            1,
            "row {i} lost or duplicated across failover"
        );
    }
    // The promoted standby is a real primary: writes work.
    c2.execute("INSERT INTO t VALUES (1000, 'after-failover')")
        .unwrap();
    assert_eq!(count(&mut c2, "SELECT COUNT(*) FROM t"), 101);

    drop(c2);
    drop(standby);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// The commit-mode knob: under semi-sync, an acknowledged statement's
/// commit record is already on the standby when `execute` returns.
#[test]
fn semi_sync_ack_means_standby_holds_the_commit() {
    let pdir = temp_dir("ss-p");
    let sdir = temp_dir("ss-s");
    let h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let _shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut c = env.connect(&h.addr(), "app", "test").unwrap();
    c.execute("CREATE TABLE s (v INT)").unwrap();
    for i in 0..10 {
        c.execute(&format!("INSERT INTO s VALUES ({i})")).unwrap();
        // The INSERT's commit is this session's highest allocated GSN, and
        // semi-sync blocked until the standby acknowledged it.
        let (acked, last) = h
            .with_engine(|e| (e.repl_acked_gsn(), e.last_gsn()))
            .unwrap();
        assert!(
            acked >= last,
            "semi-sync returned before the standby acked: acked {acked} < last {last}"
        );
    }
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// Split-brain defense (the fencing satellite): after promotion the old
/// primary is fenced by the supervisor's `Promote` kill switch — it
/// refuses new logins and in-session writes, and the refusal is *sticky*
/// across its own crash and restart.
#[test]
fn deposed_primary_is_fenced_stickily_across_restart() {
    let pdir = temp_dir("fence-p");
    let sdir = temp_dir("fence-s");
    let mut h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut c = env.connect(&h.addr(), "app", "test").unwrap();
    c.execute("CREATE TABLE f (v INT)").unwrap();
    c.execute("INSERT INTO f VALUES (1)").unwrap();
    let target = h.with_engine(|e| e.last_gsn()).unwrap();
    wait_until("standby catch-up", || standby.applied_gsn() >= target);

    // Promote the standby while the old primary is still alive — the
    // split-brain window. The supervisor then fences the old incarnation.
    let new_epoch = standby.promote(0).unwrap();
    let mut ctrl = std::net::TcpStream::connect(h.addr()).unwrap();
    write_frame(&mut ctrl, &Request::Promote { epoch: new_epoch }.encode()).unwrap();
    match Response::decode(&read_frame(&mut ctrl).unwrap()).unwrap() {
        Response::Promoted { epoch } => assert_eq!(epoch, new_epoch),
        other => panic!("fence request refused: {other:?}"),
    }
    shipper.stop();

    // In-session writes on the deposed primary fail...
    assert!(
        c.execute("INSERT INTO f VALUES (2)").is_err(),
        "a fenced primary accepted a write"
    );
    // ...and new logins are refused with the retryable Fenced code.
    match env.connect(&h.addr(), "app", "test") {
        Err(DriverError::Sql { code, .. }) => assert_eq!(code, codes::FENCED),
        Err(other) => panic!("wrong refusal class: {other}"),
        Ok(_) => panic!("fenced primary accepted a login"),
    }

    // Sticky: the fence marker survives a crash + restart of the deposed
    // primary — it can never serve again, even if an operator bounces it.
    h.crash().unwrap();
    h.restart().unwrap();
    match env.connect(&h.addr(), "app", "test") {
        Err(DriverError::Sql { code, .. }) => assert_eq!(code, codes::FENCED),
        Err(other) => panic!("wrong refusal class: {other}"),
        Ok(_) => panic!("fence did not survive restart"),
    }

    // Meanwhile the promoted standby serves the data and the writes the
    // old primary refused never happened anywhere.
    let mut c2 = env.connect(&standby.addr(), "app", "test").unwrap();
    assert_eq!(count(&mut c2, "SELECT COUNT(*) FROM f"), 1);

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// The driver-failover satellite, end to end at the session layer: a
/// Phoenix session opened against a server list survives primary loss.
/// Recovery rotates through refused (dead primary) and Fenced (standby
/// not yet promoted) answers until promotion lands, then re-installs the
/// session on the new primary.
#[test]
fn phoenix_session_rides_failover_to_promoted_standby() {
    let pdir = temp_dir("ride-p");
    let sdir = temp_dir("ride-s");
    let mut h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut config = phoenix_core::PhoenixConfig::default();
    config.recovery.ping_interval = Duration::from_millis(20);
    config.recovery.max_wait = Duration::from_secs(20);
    let mut pc = PhoenixConnection::connect_multi(
        &env,
        &[&h.addr(), &standby.addr()],
        "app",
        "test",
        config,
    )
    .unwrap();
    pc.execute("CREATE TABLE r (id INT)").unwrap();
    pc.execute("INSERT INTO r VALUES (1)").unwrap();
    let target = h.with_engine(|e| e.last_gsn()).unwrap();
    wait_until("standby catch-up", || standby.applied_gsn() >= target);

    // Kill the primary, then promote only after a delay — the session's
    // recovery loop must tolerate the standby answering Fenced meanwhile.
    h.crash().unwrap();
    shipper.stop();
    let promoter = {
        let addr = standby.addr();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(400));
            let mut ctrl = std::net::TcpStream::connect(addr).unwrap();
            write_frame(&mut ctrl, &Request::Promote { epoch: 0 }.encode()).unwrap();
            match Response::decode(&read_frame(&mut ctrl).unwrap()).unwrap() {
                Response::Promoted { .. } => {}
                other => panic!("operator promote failed: {other:?}"),
            }
        })
    };

    // This statement is submitted into the outage: it must be masked.
    pc.execute("INSERT INTO r VALUES (2)").unwrap();
    promoter.join().unwrap();

    let rows = pc.execute("SELECT COUNT(*) FROM r").unwrap();
    assert_eq!(rows.rows()[0][0], Value::Int(2));
    assert!(pc.stats().recoveries >= 1, "failover should be a recovery");
    assert_eq!(pc.current_server(), standby.addr());

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// The exactly-once satellite: crash the primary with a pipelined window
/// half-acknowledged, promote the standby, and verify on the survivor
/// that every acknowledged tag's effect is present exactly once — replays
/// answered from the replicated status table, unacknowledged statements
/// resubmitted once — and nothing applied twice.
#[test]
fn exactly_once_across_failover_with_pipelined_window() {
    let pdir = temp_dir("once-p");
    let sdir = temp_dir("once-s");
    let mut h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut config = phoenix_core::PhoenixConfig::default();
    config.recovery.ping_interval = Duration::from_millis(20);
    config.recovery.max_wait = Duration::from_secs(20);
    let mut pc = PhoenixConnection::connect_multi(
        &env,
        &[&h.addr(), &standby.addr()],
        "app",
        "test",
        config,
    )
    .unwrap();
    pc.execute("CREATE TABLE ledger (id INT, v TEXT)").unwrap();

    // Writer: pipelined windows of 8 DML statements each. The main thread
    // kills the primary mid-run, so some window is caught half-acked.
    const WINDOW: usize = 8;
    const WINDOWS: usize = 25;
    let writer = std::thread::spawn(move || {
        let mut acked: Vec<usize> = Vec::new();
        for w in 0..WINDOWS {
            let stmts: Vec<String> = (0..WINDOW)
                .map(|j| {
                    let id = w * WINDOW + j;
                    format!("INSERT INTO ledger VALUES ({id}, 'x-{id}')")
                })
                .collect();
            match pc.execute_pipelined(&stmts) {
                Ok(_) => acked.extend(w * WINDOW..(w + 1) * WINDOW),
                Err(e) => panic!("pipelined window {w} not masked: {e}"),
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        (pc, acked)
    });

    // Let the writer get going, then lose the server.
    std::thread::sleep(Duration::from_millis(60));
    h.crash().unwrap();
    shipper.stop();
    std::thread::sleep(Duration::from_millis(100));
    standby.promote(0).unwrap();

    let (mut pc, acked) = writer.join().unwrap();
    assert_eq!(acked.len(), WINDOW * WINDOWS, "every window must be masked");
    assert!(
        pc.stats().recoveries >= 1,
        "the crash landed mid-run; recovery must have fired"
    );

    // Verify on the survivor: every acknowledged id exactly once, and no
    // id — acknowledged or not — more than once.
    let mut c = env.connect(&standby.addr(), "audit", "test").unwrap();
    assert_eq!(
        count(&mut c, "SELECT COUNT(*) FROM ledger"),
        (WINDOW * WINDOWS) as i64,
        "ledger row count diverged: writes lost or applied twice"
    );
    for id in &acked {
        assert_eq!(
            count(
                &mut c,
                &format!("SELECT COUNT(*) FROM ledger WHERE id = {id}")
            ),
            1,
            "acknowledged id {id} must appear exactly once"
        );
    }

    // The session stays useful after the storm.
    pc.execute("INSERT INTO ledger VALUES (100000, 'post')")
        .unwrap();

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// Re-attach after a standby outage: the shipper reconnects, the hello
/// reports the standby's high-water GSN, and only the missing suffix is
/// re-shipped (served from the tap's staged frames or the primary's logs).
#[test]
fn shipper_reattaches_and_reships_only_the_missing_suffix() {
    let pdir = temp_dir("reatt-p");
    let sdir = temp_dir("reatt-s");
    // Async mode here: the primary must not block while the standby is down.
    let h = ServerHarness::start(&pdir, EngineConfig::default()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let standby_addr = standby.addr();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby_addr.clone());

    let env = Environment::new();
    let mut c = env.connect(&h.addr(), "app", "test").unwrap();
    c.execute("CREATE TABLE g (v INT)").unwrap();
    c.execute("INSERT INTO g VALUES (1)").unwrap();
    let target = h.with_engine(|e| e.last_gsn()).unwrap();
    wait_until("initial catch-up", || standby.applied_gsn() >= target);

    // Standby goes away; primary keeps committing (async mode).
    let gsn_before = standby.applied_gsn();
    drop(standby);
    for i in 2..=20 {
        c.execute(&format!("INSERT INTO g VALUES ({i})")).unwrap();
    }

    // A new standby incarnation re-opens the same directory (warm_load
    // over its own logs) on a fresh port; repoint a fresh shipper at it.
    shipper.stop();
    let standby2 = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    assert!(
        standby2.applied_gsn() >= gsn_before,
        "standby restart lost its own durable log"
    );
    let _shipper2 = Shipper::start(h.shared_engine().unwrap(), standby2.addr());
    let target = h.with_engine(|e| e.last_gsn()).unwrap();
    wait_until("suffix catch-up", || standby2.applied_gsn() >= target);

    // And the replayed standby actually holds all 20 rows.
    standby2.promote(0).unwrap();
    let mut c2 = env.connect(&standby2.addr(), "app", "test").unwrap();
    assert_eq!(count(&mut c2, "SELECT COUNT(*) FROM g"), 20);

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
}
