//! The warm standby: receiver, incremental applier, and promotion.
//!
//! A [`Standby`] owns a data directory and a TCP port. Until promoted it
//! speaks only the replication subset of the protocol: `ReplHello` (report
//! the highest GSN it holds), `ReplFrames` (append to its own per-partition
//! logs, fsync, apply every newly *decided* record, ack), `Promote`, and
//! `Ping`. Login attempts are answered with the retryable `Fenced` error so
//! a failover-aware driver rotates on to the next address — or retries here
//! until promotion completes.
//!
//! # The warm image
//!
//! The applier maintains exactly the state `phoenix_storage::warm_load`
//! recovers: a store with every record below a watermark materialized, plus
//! the *undecided tail* — records whose transaction fate the next frames
//! will decide. Frames are appended to disk **before** they are ingested in
//! memory, and ingested only if the append succeeded, so the directory and
//! the image never disagree: at any instant, killing the standby and
//! running ordinary recovery (or `warm_load`) on its directory reproduces
//! the image. Promotion hands the image to `Engine::open_warm`, which
//! replays only the on-disk tail at or past the watermark — typically a few
//! frames — making promotion time independent of database size.
//!
//! # Fencing
//!
//! Promotion durably bumps the directory's replication epoch to outrank
//! every epoch it has ever seen. A deposed primary learns the new epoch
//! from `Promote` (the supervisor's kill switch) or from this standby's
//! hello-ack, and its own engine then refuses every login and WAL append.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use phoenix_engine::{read_epoch, write_epoch, Engine, EngineConfig, ErrorCode};
use phoenix_server::server::SharedEngine;
use phoenix_server::RunningServer;
use phoenix_storage::db::{Durable, MAX_PARTITIONS};
use phoenix_storage::record::LogRecord;
use phoenix_storage::store::Store;
use phoenix_storage::types::TxnId;
use phoenix_storage::wal::{Wal, WalPoints};
use phoenix_storage::{warm_load, WarmImage};
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::{Request, Response};

use crate::metrics::repl_metrics;

/// Chaos fault-point names for the standby's own log streams — distinct
/// from the primary's `wal.*` points so schedules targeting the primary's
/// append windows don't also perturb (or get perturbed by) standby appends.
const STANDBY_POINTS: WalPoints = WalPoints {
    append: "repl.standby.append",
    fsync: "repl.standby.fsync",
    truncate: "repl.standby.truncate",
    rotate: "repl.standby.rotate",
};

/// Standby configuration.
#[derive(Debug, Clone, Default)]
pub struct StandbyConfig {
    /// Engine configuration used when this standby is promoted (and for
    /// the durability mode of its own log appends).
    pub engine_config: EngineConfig,
    /// TCP port for the receiver — and, after promotion, for the real
    /// server (0 = ephemeral; the bound port is reused across promotion so
    /// a client's server list stays valid).
    pub port: u16,
    /// Promote automatically if no primary traffic (hello, frames,
    /// heartbeats) arrives for this long. `None` = operator-only promotion.
    pub auto_promote_after: Option<Duration>,
}

/// The incremental warm applier: `warm_load`'s state, kept current as
/// frames arrive.
struct WarmApplier {
    store: Store,
    mark: TxnId,
    applied_below_gsn: u64,
    /// GSN-ordered records whose transaction fate is not yet decided (or
    /// which sit behind one that isn't).
    pending: VecDeque<(u64, u32, LogRecord)>,
    committed: HashSet<TxnId>,
    aborted: HashSet<TxnId>,
    /// Partially-logged `CommitMulti` fates: participants vs streams seen.
    multi: HashMap<TxnId, (Vec<u32>, HashSet<u32>)>,
    /// Highest GSN held (on disk and in this image).
    max_gsn: u64,
}

impl WarmApplier {
    fn from_dir(dir: &Path) -> io::Result<WarmApplier> {
        let w = warm_load(dir).map_err(|e| io::Error::other(e.to_string()))?;
        let mut a = WarmApplier {
            store: w.store,
            mark: w.mark,
            applied_below_gsn: w.applied_below_gsn,
            pending: VecDeque::new(),
            committed: w.committed,
            aborted: w.aborted,
            multi: HashMap::new(),
            max_gsn: w.max_gsn,
        };
        // Re-derive the partial CommitMulti ledger from the tail: every
        // record of an undecided transaction is in `pending` by
        // construction, so the tail alone reconstructs it.
        for (_, stream, rec) in &w.pending {
            a.note_fate(*stream, rec);
        }
        a.pending = w.pending.into();
        Ok(a)
    }

    /// Learn what `rec` says about transaction fates.
    fn note_fate(&mut self, stream: u32, rec: &LogRecord) {
        match rec {
            LogRecord::Commit { txn } => {
                self.committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                self.aborted.insert(*txn);
            }
            LogRecord::CommitMulti { txn, participants } => {
                let entry = self
                    .multi
                    .entry(*txn)
                    .or_insert_with(|| (participants.clone(), HashSet::new()));
                entry.1.insert(stream);
                if entry.0.iter().all(|p| entry.1.contains(p)) {
                    // Present in every participant stream: committed, by the
                    // same rule recovery uses.
                    self.committed.insert(*txn);
                }
            }
            _ => {}
        }
    }

    fn decided(&self, txn: TxnId) -> bool {
        txn <= self.mark || self.committed.contains(&txn) || self.aborted.contains(&txn)
    }

    /// Ingest one frame that has already been durably appended to this
    /// standby's log, then apply whatever prefix became decided.
    fn ingest(&mut self, stream: u32, gsn: u64, rec: LogRecord) -> io::Result<u64> {
        debug_assert!(gsn > self.max_gsn, "tap frames arrive in strict GSN order");
        self.max_gsn = gsn;
        self.note_fate(stream, &rec);
        self.pending.push_back((gsn, stream, rec));
        self.drain()
    }

    /// Apply the longest decided prefix of `pending`. Returns how many
    /// records were materialized.
    fn drain(&mut self) -> io::Result<u64> {
        let mut applied = 0u64;
        while let Some((gsn, _, rec)) = self.pending.front() {
            if !self.decided(rec.txn()) {
                self.applied_below_gsn = *gsn;
                return Ok(applied);
            }
            let (_, _, rec) = self.pending.pop_front().expect("front exists");
            // Same eligibility rule as recovery replay: committed and not
            // already inside the snapshot image. Record order is GSN order,
            // so this is bit-identical to the sequential replay path.
            if rec.txn() > self.mark && self.committed.contains(&rec.txn()) {
                self.store
                    .apply(&rec)
                    .map_err(|e| io::Error::other(format!("standby apply diverged: {e}")))?;
                applied += 1;
            }
        }
        self.applied_below_gsn = self.max_gsn + 1;
        Ok(applied)
    }
}

/// State the receiver connections and the promoter contend over.
struct ReplState {
    /// `Some` until promotion consumes it.
    applier: Option<WarmApplier>,
    /// Lazily-opened per-partition logs for shipped frames.
    wals: HashMap<usize, Wal>,
}

struct Shared {
    dir: PathBuf,
    config: StandbyConfig,
    port: u16,
    shutdown: AtomicBool,
    /// Set by the accept loop when it has exited (and the listener — and
    /// with it the port — has been released for the promoted server).
    accept_done: AtomicBool,
    promoted: AtomicBool,
    /// `phoenix_obs::now_us()` of the last primary traffic.
    last_traffic_us: AtomicU64,
    /// Highest epoch any primary has announced in a hello.
    primary_epoch: AtomicU64,
    /// This directory's own durable epoch (bumped by promotion).
    own_epoch: AtomicU64,
    state: Mutex<ReplState>,
    /// The real server, once promoted.
    server: Mutex<Option<RunningServer>>,
}

/// A running warm standby.
pub struct Standby {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    monitor_thread: Option<JoinHandle<()>>,
}

impl Standby {
    /// Start a standby over `dir`: recover the directory into a warm image
    /// (an empty directory warms from nothing) and listen for a shipper.
    pub fn start(dir: impl AsRef<Path>, config: StandbyConfig) -> io::Result<Standby> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let applier = WarmApplier::from_dir(&dir)?;
        repl_metrics().applied_gsn.set(applier.max_gsn as i64);

        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let own_epoch = read_epoch(&dir);

        let shared = Arc::new(Shared {
            dir,
            port,
            shutdown: AtomicBool::new(false),
            accept_done: AtomicBool::new(false),
            promoted: AtomicBool::new(false),
            last_traffic_us: AtomicU64::new(phoenix_obs::now_us()),
            primary_epoch: AtomicU64::new(0),
            own_epoch: AtomicU64::new(own_epoch),
            state: Mutex::new(ReplState {
                applier: Some(applier),
                wals: HashMap::new(),
            }),
            server: Mutex::new(None),
            config,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("phx-standby-{port}"))
            .spawn(move || accept_loop(listener, accept_shared))?;

        let monitor_thread = match shared.config.auto_promote_after {
            None => None,
            Some(timeout) => {
                let mon = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("phx-standby-mon".into())
                        .spawn(move || monitor_loop(mon, timeout))?,
                )
            }
        };

        Ok(Standby {
            shared,
            accept_thread: Some(accept_thread),
            monitor_thread,
        })
    }

    /// `host:port` of the receiver — and of the promoted server, which
    /// reuses the same port.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.shared.port)
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.shared.port
    }

    /// The standby's data directory.
    pub fn data_dir(&self) -> &Path {
        &self.shared.dir
    }

    /// The directory's current replication epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.own_epoch.load(Ordering::SeqCst)
    }

    /// Has this standby been promoted to a serving primary?
    pub fn is_promoted(&self) -> bool {
        self.shared.promoted.load(Ordering::SeqCst)
    }

    /// Highest GSN this standby holds (pre-promotion: the applier's
    /// high-water; post-promotion: the serving engine's log).
    pub fn applied_gsn(&self) -> u64 {
        if let Some(a) = self.shared.state.lock().applier.as_ref() {
            return a.max_gsn;
        }
        self.with_engine(Engine::last_gsn).unwrap_or(0)
    }

    /// Records received but not yet materialized (the undecided tail).
    pub fn pending_records(&self) -> usize {
        self.shared
            .state
            .lock()
            .applier
            .as_ref()
            .map(|a| a.pending.len())
            .unwrap_or(0)
    }

    /// Operator promotion: fence further frames, bump the durable epoch to
    /// outrank `epoch` (and everything seen so far), replay the tail, and
    /// start serving. Returns the new epoch.
    pub fn promote(&self, epoch: u64) -> io::Result<u64> {
        do_promote(&self.shared, epoch)
    }

    /// Run `f` against the promoted engine (None before promotion or after
    /// the engine is crashed away).
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> Option<R> {
        let server = self.shared.server.lock();
        let engine = server.as_ref()?.engine.read().clone();
        engine.map(|e| f(&e))
    }

    /// The promoted server's crash-switch engine handle.
    pub fn shared_engine(&self) -> Option<SharedEngine> {
        let server = self.shared.server.lock();
        server.as_ref().map(|s| Arc::clone(&s.engine))
    }

    /// Take ownership of the promoted server (harness-style control: the
    /// caller can crash, restart, or stop it like any `RunningServer`).
    pub fn take_promoted_server(&self) -> Option<RunningServer> {
        self.shared.server.lock().take()
    }

    /// Stop the standby. If promoted, the server is stopped and its engine
    /// returned (for an orderly final checkpoint).
    pub fn stop(mut self) -> Option<Arc<Engine>> {
        self.halt();
        let server = self.shared.server.lock().take();
        server.and_then(RunningServer::stop)
    }

    fn halt(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.monitor_thread.take() {
            let _ = t.join();
        }
        // Sync whatever the receiver appended so an orderly stop leaves a
        // fully durable directory.
        let mut state = self.shared.state.lock();
        for wal in state.wals.values_mut() {
            let _ = wal.sync();
        }
        state.wals.clear();
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) && !shared.promoted.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                // Bounded read so dead shippers release their threads; a
                // live shipper heartbeats every ~100ms, far inside this.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("phx-standby-conn".into())
                    .spawn(move || serve_repl_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Dropping the listener here releases the port for the promoted server.
    drop(listener);
    shared.accept_done.store(true, Ordering::SeqCst);
}

fn monitor_loop(shared: Arc<Shared>, timeout: Duration) {
    while !shared.shutdown.load(Ordering::SeqCst) && !shared.promoted.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
        let idle_us =
            phoenix_obs::now_us().saturating_sub(shared.last_traffic_us.load(Ordering::SeqCst));
        if idle_us >= timeout.as_micros() as u64 {
            phoenix_obs::journal().record(
                "repl",
                phoenix_obs::EventKind::ServerLifecycle,
                format!("heartbeat timeout ({timeout:?} without primary traffic): promoting"),
            );
            let epoch = shared.primary_epoch.load(Ordering::SeqCst) + 1;
            if let Err(e) = do_promote(&shared, epoch) {
                // Lost a race with an operator promotion, or promotion
                // failed; either way the loop exits via the flags.
                phoenix_obs::journal().record(
                    "repl",
                    phoenix_obs::EventKind::Other,
                    format!("auto-promotion did not complete: {e}"),
                );
            }
            return;
        }
    }
}

/// Serve one replication connection until error, shutdown, or promotion.
fn serve_repl_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => break, // peer gone, or read timeout on a dead shipper
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let rsp = Response::Err {
                    code: ErrorCode::Parse as u16,
                    message: format!("malformed request: {e}"),
                };
                if write_frame(&mut stream, &rsp.encode()).is_err() {
                    break;
                }
                continue;
            }
        };
        let (response, done) = handle_request(&shared, request);
        if write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
        if done {
            break;
        }
    }
}

/// Handle one replication-protocol request. Returns the reply and whether
/// the connection should close after sending it.
fn handle_request(shared: &Shared, request: Request) -> (Response, bool) {
    match request {
        Request::Ping => (Response::Pong, false),
        Request::ReplHello { epoch, protocol: _ } => {
            if shared.promoted.load(Ordering::SeqCst) {
                return (fenced_reply("standby has been promoted"), true);
            }
            shared
                .last_traffic_us
                .store(phoenix_obs::now_us(), Ordering::SeqCst);
            shared.primary_epoch.fetch_max(epoch, Ordering::SeqCst);
            let state = shared.state.lock();
            let last_gsn = state.applier.as_ref().map(|a| a.max_gsn).unwrap_or(0);
            // The ack's epoch is the best epoch this standby knows of: a
            // deposed primary helloing a standby that has seen a newer one
            // learns here that it must fence itself.
            let best = shared
                .own_epoch
                .load(Ordering::SeqCst)
                .max(shared.primary_epoch.load(Ordering::SeqCst));
            (
                Response::ReplHelloAck {
                    epoch: best,
                    last_gsn,
                },
                false,
            )
        }
        Request::ReplFrames { epoch, frames } => {
            if shared.promoted.load(Ordering::SeqCst) {
                return (fenced_reply("standby has been promoted"), true);
            }
            if epoch < shared.primary_epoch.load(Ordering::SeqCst) {
                return (fenced_reply("frames from a stale epoch"), true);
            }
            shared
                .last_traffic_us
                .store(phoenix_obs::now_us(), Ordering::SeqCst);
            match apply_batch(shared, &frames) {
                Ok(last_gsn) => (Response::ReplAck { last_gsn }, false),
                Err(e) => (
                    Response::Err {
                        code: ErrorCode::Storage as u16,
                        message: format!("standby apply failed: {e}"),
                    },
                    true,
                ),
            }
        }
        Request::Promote { epoch } => match do_promote(shared, epoch) {
            Ok(new_epoch) => (Response::Promoted { epoch: new_epoch }, true),
            Err(e) => (
                Response::Err {
                    code: ErrorCode::Internal as u16,
                    message: format!("promotion failed: {e}"),
                },
                true,
            ),
        },
        // Anything else is a client that reached the standby before
        // promotion: refuse with the retryable Fenced code so the driver
        // rotates (or backs off and retries until promotion lands).
        _ => (fenced_reply("standby: not promoted yet"), false),
    }
}

fn fenced_reply(why: &str) -> Response {
    Response::Err {
        code: ErrorCode::Fenced as u16,
        message: why.into(),
    }
}

/// Append a batch to the standby's logs, fsync, and apply what decided.
/// Returns the new high-water GSN to ack.
///
/// A frame is ingested into the warm image **iff** its append returned Ok,
/// so disk and image never disagree; a mid-batch failure acks nothing (the
/// shipper re-ships from the hello high-water after reconnecting, and the
/// already-appended prefix is skipped by the `gsn > max_gsn` guard — on
/// this incarnation via the image, after a standby restart via
/// `warm_load`'s merge, which tolerates the prefix being on disk).
fn apply_batch(shared: &Shared, frames: &[phoenix_wire::ReplFrame]) -> io::Result<u64> {
    let mut state = shared.state.lock();
    if shared.promoted.load(Ordering::SeqCst) {
        return Err(io::Error::other("promoted while batch in flight"));
    }
    // The standby-side chaos point. Torn(n) applies only an n-frame prefix
    // — the half-applied-batch window the failover sweep explores.
    let cut = match phoenix_chaos::fault("repl.apply") {
        phoenix_chaos::FaultAction::Continue => frames.len(),
        phoenix_chaos::FaultAction::Delay(d) => {
            std::thread::sleep(d);
            frames.len()
        }
        phoenix_chaos::FaultAction::Torn(n) => n.min(frames.len()),
        phoenix_chaos::FaultAction::Crash | phoenix_chaos::FaultAction::IoError => {
            return Err(phoenix_chaos::injected_error("repl.apply"));
        }
    };
    let torn = cut < frames.len();

    let state = &mut *state;
    let applier = state
        .applier
        .as_mut()
        .ok_or_else(|| io::Error::other("applier gone (promotion raced)"))?;
    let mut touched: HashSet<usize> = HashSet::new();
    let mut applied_total = 0u64;
    for frame in &frames[..cut] {
        let k = frame.partition as usize;
        if k >= MAX_PARTITIONS {
            return Err(io::Error::other(format!("bad partition {k}")));
        }
        if frame.gsn <= applier.max_gsn {
            // Re-shipped after a reconnect: already held, skip.
            continue;
        }
        let rec = LogRecord::decode(&frame.record).map_err(|e| io::Error::other(e.to_string()))?;
        let wal = match state.wals.entry(k) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(Wal::open_with_points(
                Durable::wal_path(&shared.dir, k),
                STANDBY_POINTS,
            )?),
        };
        let mut payload = Vec::with_capacity(8 + frame.record.len());
        payload.extend_from_slice(&frame.gsn.to_le_bytes());
        payload.extend_from_slice(&frame.record);
        wal.append(&payload)?;
        touched.insert(k);
        applied_total += applier.ingest(frame.partition as u32, frame.gsn, rec)?;
    }
    // Receive-ack means *durable* receive: semi-sync primaries count on it.
    for k in &touched {
        state.wals.get_mut(k).expect("touched wal open").sync()?;
    }
    let m = repl_metrics();
    m.frames_applied.add(cut as u64);
    m.applied_gsn.set(applier.max_gsn as i64);
    let _ = applied_total;
    if torn {
        return Err(phoenix_chaos::injected_error("repl.apply"));
    }
    Ok(applier.max_gsn)
}

/// Promote: fence frames, release the port, bump the durable epoch, build
/// the engine from the warm image (tail replay only), start serving.
fn do_promote(shared: &Shared, requested_epoch: u64) -> io::Result<u64> {
    match phoenix_chaos::fault("repl.promote") {
        phoenix_chaos::FaultAction::Continue => {}
        phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        _ => return Err(phoenix_chaos::injected_error("repl.promote")),
    }
    let started = std::time::Instant::now();
    // Serialize against concurrent promoters and in-flight batches.
    let mut state = shared.state.lock();
    if shared.promoted.swap(true, Ordering::SeqCst) {
        return Err(io::Error::other("already promoted"));
    }
    // Stop accepting repl connections and wait for the listener (and the
    // port) to be released. Handler threads still parked on reads exit on
    // their own; the promoted flag refuses anything they send meanwhile.
    while !shared.accept_done.load(Ordering::SeqCst) {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(io::Error::other("standby shut down during promotion"));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Everything received must be on stable storage before we serve.
    for wal in state.wals.values_mut() {
        wal.sync()?;
    }
    state.wals.clear();

    // Outrank every epoch this directory has ever seen — durably, before
    // the engine opens, so even a crash mid-promotion leaves the bump.
    let new_epoch = requested_epoch
        .max(shared.own_epoch.load(Ordering::SeqCst) + 1)
        .max(shared.primary_epoch.load(Ordering::SeqCst) + 1);
    write_epoch(&shared.dir, new_epoch)?;
    shared.own_epoch.store(new_epoch, Ordering::SeqCst);

    let applier = state
        .applier
        .take()
        .ok_or_else(|| io::Error::other("warm image already consumed"))?;
    let image = WarmImage {
        store: applier.store,
        applied_below_gsn: applier.applied_below_gsn,
        mark: applier.mark,
    };
    let engine = Engine::open_warm(&shared.dir, shared.config.engine_config.clone(), image)
        .map_err(|e| io::Error::other(format!("open_warm failed: {e}")))?;
    let server = RunningServer::start(engine, shared.port)?;
    *shared.server.lock() = Some(server);

    let m = repl_metrics();
    m.promotions.inc();
    phoenix_obs::journal().record(
        "repl",
        phoenix_obs::EventKind::ServerLifecycle,
        format!(
            "promoted to epoch {new_epoch} in {:?}, serving on port {}",
            started.elapsed(),
            shared.port
        ),
    );
    Ok(new_epoch)
}
