#![warn(missing_docs)]

//! # phoenix-repl
//!
//! WAL-shipping hot standby for the Phoenix database stack — the subsystem
//! that extends the paper's "sessions survive a server *crash*" guarantee to
//! server *loss*.
//!
//! * [`ship`] — [`ship::Shipper`]: a primary-side thread that tails all N
//!   partition WAL streams through the storage layer's replication tap
//!   (post-fsync, strict GSN order) and pushes `[partition][gsn][record]`
//!   frames to a standby over the ordinary wire protocol
//!   (`ReplHello`/`ReplFrames`/`ReplAck`).
//! * [`standby`] — [`standby::Standby`]: a warm receiver that appends the
//!   shipped frames to its own per-partition logs (so its data directory is
//!   a valid primary directory at every instant) and continuously applies
//!   every *decided* record through the same GSN-merge replay semantics as
//!   crash recovery. [`standby::Standby::promote`] fences further frames,
//!   bumps the durable replication epoch, replays the undecided tail, and
//!   starts a full [`phoenix_server::RunningServer`] on the same port — at
//!   which point the driver's multi-address reconnect loop re-installs
//!   sessions against it and the status-table replay machinery makes the
//!   handoff exactly-once.
//! * [`metrics`] — the `phoenix_repl_*` observability surface: frames and
//!   bytes shipped/applied, ack high-water marks, replication lag, and
//!   promotion counts.
//!
//! Fencing is the split-brain defense: every promotion writes a higher
//! epoch, and a deposed primary — told about the new epoch via `Promote` or
//! a standby's hello-ack — persists a sticky fence marker and refuses every
//! subsequent login and WAL append, even across its own restart.

pub mod metrics;
pub mod ship;
pub mod standby;

pub use metrics::repl_metrics;
pub use ship::Shipper;
pub use standby::{Standby, StandbyConfig};
