//! The primary-side WAL shipper.
//!
//! One thread per primary/standby pair. The shipper attaches to the
//! engine's replication tap, catches the standby up from the on-disk logs,
//! then drains the tap's post-fsync stream into `ReplFrames` batches —
//! waiting for the standby's `ReplAck` after every batch, which is what
//! advances the ack high-water mark semi-sync commits block on.
//!
//! The shipper holds the server's *crash-switch* engine handle
//! ([`phoenix_server::server::SharedEngine`]), not a bare `Arc<Engine>`:
//! when the harness crashes the primary the handle goes observably dead and
//! the shipper thread exits, exactly as a shipper inside a dying process
//! would. Every iteration of the live loop also visits the `repl.ship`
//! durable fault point, so chaos schedules can kill the primary mid-ship.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use phoenix_engine::Engine;
use phoenix_server::server::SharedEngine;
use phoenix_storage::ShipFrame;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::{ReplFrame, Request, Response, PROTOCOL_V2};

use crate::metrics::repl_metrics;

/// Frames per `ReplFrames` batch. Bounds both the standby's per-batch fsync
/// cost and the shipper's memory while catching up from backlog.
const BATCH: usize = 512;
/// How long one `repl_poll` waits for traffic before the shipper sends an
/// empty `ReplFrames` heartbeat (which is also what keeps the standby's
/// heartbeat-timeout promoter at bay).
const POLL_WAIT: Duration = Duration::from_millis(100);
/// Backoff between reconnect attempts after a ship error.
const RETRY_DELAY: Duration = Duration::from_millis(50);

/// A running shipper thread. Dropping it (or calling [`Shipper::stop`])
/// detaches the tap and joins the thread.
pub struct Shipper {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Why one shipping session (connect → hello → attach → live loop) ended.
enum ShipExit {
    /// [`Shipper::stop`] was called.
    Stopped,
    /// This primary was fenced (locally, or by a standby whose hello-ack
    /// carried a higher epoch). The shipper thread exits for good.
    Fenced,
    /// The crash switch fired: the engine was taken out of the shared
    /// handle. A real shipper thread dies with its process; ours exits.
    Gone,
}

impl Shipper {
    /// Start shipping the primary behind `engine` to the standby receiver
    /// at `standby_addr`. The thread exits on its own when the engine is
    /// crashed away or fenced; otherwise it reconnects with backoff until
    /// stopped.
    pub fn start(engine: SharedEngine, standby_addr: impl Into<String>) -> Shipper {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let addr = standby_addr.into();
        let thread = std::thread::Builder::new()
            .name("phx-repl-ship".into())
            .spawn(move || run(engine, addr, &flag))
            .expect("spawn shipper thread");
        Shipper {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop shipping and join the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Shipper {
    fn drop(&mut self) {
        self.halt();
    }
}

fn run(engine: SharedEngine, addr: String, stop: &AtomicBool) {
    let m = repl_metrics();
    while !stop.load(Ordering::Relaxed) {
        // A halted chaos session means this "process" is dead: do nothing
        // until the supervisor acknowledges the crash (at which point the
        // engine handle will be gone and we exit below).
        if phoenix_chaos::halted() {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        let Some(eng) = engine.read().clone() else {
            // The crash switch fired: the primary is gone, and with it us.
            return;
        };
        if eng.is_fenced() {
            return;
        }
        match ship_session(&eng, &engine, &addr, stop) {
            Ok(ShipExit::Stopped) => return,
            Ok(ShipExit::Fenced) => return,
            Ok(ShipExit::Gone) => return,
            Err(e) => {
                m.ship_errors.inc();
                phoenix_obs::journal().record(
                    "repl",
                    phoenix_obs::EventKind::Other,
                    format!("ship error, will reconnect: {e}"),
                );
                eng.repl_detach();
                drop(eng);
                std::thread::sleep(RETRY_DELAY);
            }
        }
    }
}

/// One shipping session: dial, handshake, catch up, then the live loop.
fn ship_session(
    eng: &Arc<Engine>,
    handle: &SharedEngine,
    addr: &str,
    stop: &AtomicBool,
) -> io::Result<ShipExit> {
    let m = repl_metrics();
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;

    write_frame(
        &mut stream,
        &Request::ReplHello {
            epoch: eng.epoch(),
            protocol: PROTOCOL_V2,
        }
        .encode(),
    )
    .map_err(io_of_frame)?;
    let (ack_epoch, standby_last_gsn) =
        match decode_rsp(&read_frame(&mut stream).map_err(io_of_frame)?)? {
            Response::ReplHelloAck { epoch, last_gsn } => (epoch, last_gsn),
            Response::Err { message, .. } => {
                return Err(io::Error::other(format!(
                    "standby refused hello: {message}"
                )))
            }
            other => {
                return Err(io::Error::other(format!(
                    "unexpected hello reply: {other:?}"
                )))
            }
        };
    if ack_epoch > eng.epoch() {
        // The standby outranks us: a promotion happened while we were away.
        // We are the deposed primary — fence durably and stop shipping.
        eng.fence(ack_epoch);
        return Ok(ShipExit::Fenced);
    }

    let backlog = eng
        .repl_attach(standby_last_gsn)
        .map_err(|e| io::Error::other(e.to_string()))?;
    phoenix_obs::journal().record(
        "repl",
        phoenix_obs::EventKind::Other,
        format!(
            "shipper attached: standby at gsn {standby_last_gsn}, backlog {} frames",
            backlog.len()
        ),
    );
    for chunk in backlog.chunks(BATCH) {
        if stop.load(Ordering::Relaxed) {
            eng.repl_detach();
            return Ok(ShipExit::Stopped);
        }
        send_batch(&mut stream, eng, chunk)?;
    }

    loop {
        if stop.load(Ordering::Relaxed) {
            eng.repl_detach();
            return Ok(ShipExit::Stopped);
        }
        if eng.is_fenced() {
            eng.repl_detach();
            return Ok(ShipExit::Fenced);
        }
        if handle.read().is_none() {
            // The primary was crashed away. Our cloned handle would keep
            // the old engine technically alive — a dead process's thread
            // must not; stop touching it and let the incarnation die.
            eng.repl_detach();
            return Ok(ShipExit::Gone);
        }
        let frames = eng
            .repl_poll(BATCH, POLL_WAIT)
            .map_err(|e| io::Error::other(e.to_string()))?;
        // The primary-side kill point: a chaos schedule crashing here models
        // the primary dying between fsync and ship — the window async
        // commit mode deliberately leaves exposed.
        phoenix_chaos::check_durable("repl.ship")?;
        // An empty batch doubles as the heartbeat.
        send_batch(&mut stream, eng, &frames)?;
        m.lag_records
            .set(eng.last_gsn().saturating_sub(eng.repl_acked_gsn()) as i64);
    }
}

/// Ship one batch and wait for its ack.
fn send_batch(stream: &mut TcpStream, eng: &Arc<Engine>, frames: &[ShipFrame]) -> io::Result<()> {
    let m = repl_metrics();
    let bytes: usize = frames.iter().map(|(_, _, r)| r.len()).sum();
    let wire_frames: Vec<ReplFrame> = frames
        .iter()
        .map(|(partition, gsn, record)| ReplFrame {
            partition: *partition,
            gsn: *gsn,
            record: record.clone(),
        })
        .collect();
    write_frame(
        stream,
        &Request::ReplFrames {
            epoch: eng.epoch(),
            frames: wire_frames,
        }
        .encode(),
    )
    .map_err(io_of_frame)?;
    if let Some((_, gsn, _)) = frames.last() {
        m.frames_shipped.add(frames.len() as u64);
        m.bytes_shipped.add(bytes as u64);
        m.last_shipped_gsn.set(*gsn as i64);
    }
    match decode_rsp(&read_frame(stream).map_err(io_of_frame)?)? {
        Response::ReplAck { last_gsn } => {
            eng.repl_ack(last_gsn);
            m.acks.inc();
            m.last_acked_gsn.set(last_gsn as i64);
            Ok(())
        }
        Response::Err { message, .. } => Err(io::Error::other(format!(
            "standby refused frames: {message}"
        ))),
        other => Err(io::Error::other(format!("unexpected ack reply: {other:?}"))),
    }
}

fn decode_rsp(payload: &[u8]) -> io::Result<Response> {
    Response::decode(payload).map_err(|e| io::Error::other(e.to_string()))
}

fn io_of_frame(e: phoenix_wire::FrameError) -> io::Error {
    match e {
        phoenix_wire::FrameError::Io(io) => io,
        other => io::Error::other(other.to_string()),
    }
}
