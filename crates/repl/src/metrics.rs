//! Replication metric handles, registered once and cached in a static.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter, Gauge};

/// Cached handles for every replication metric.
pub struct ReplMetrics {
    /// Frames shipped to the standby (`phoenix_repl_frames_shipped_total`).
    pub frames_shipped: Arc<Counter>,
    /// Record bytes shipped (`phoenix_repl_bytes_shipped_total`).
    pub bytes_shipped: Arc<Counter>,
    /// Frames appended + applied on the standby
    /// (`phoenix_repl_frames_applied_total`).
    pub frames_applied: Arc<Counter>,
    /// Standby acks processed by the shipper
    /// (`phoenix_repl_acks_total`).
    pub acks: Arc<Counter>,
    /// Shipper connection/stream failures that forced a reconnect + re-attach
    /// (`phoenix_repl_ship_errors_total`).
    pub ship_errors: Arc<Counter>,
    /// Promotions performed by a standby
    /// (`phoenix_repl_promotions_total`).
    pub promotions: Arc<Counter>,
    /// Primary-side replication lag in log records: highest allocated GSN
    /// minus highest standby-acked GSN (`phoenix_repl_lag_records`).
    pub lag_records: Arc<Gauge>,
    /// Highest GSN the shipper has sent (`phoenix_repl_last_shipped_gsn`).
    pub last_shipped_gsn: Arc<Gauge>,
    /// Highest GSN the standby has acknowledged
    /// (`phoenix_repl_last_acked_gsn`).
    pub last_acked_gsn: Arc<Gauge>,
    /// Highest GSN materialized on the standby
    /// (`phoenix_repl_applied_gsn`).
    pub applied_gsn: Arc<Gauge>,
}

/// The replication metric set, registered on first use.
pub fn repl_metrics() -> &'static ReplMetrics {
    static M: OnceLock<ReplMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        ReplMetrics {
            frames_shipped: r.counter(
                "phoenix_repl_frames_shipped_total",
                "WAL frames shipped to the standby",
            ),
            bytes_shipped: r.counter(
                "phoenix_repl_bytes_shipped_total",
                "record bytes shipped to the standby",
            ),
            frames_applied: r.counter(
                "phoenix_repl_frames_applied_total",
                "shipped frames appended and applied on the standby",
            ),
            acks: r.counter(
                "phoenix_repl_acks_total",
                "standby receive-acks processed by the shipper",
            ),
            ship_errors: r.counter(
                "phoenix_repl_ship_errors_total",
                "shipper failures that forced a reconnect and re-attach",
            ),
            promotions: r.counter(
                "phoenix_repl_promotions_total",
                "standby promotions to primary",
            ),
            lag_records: r.gauge(
                "phoenix_repl_lag_records",
                "primary log records not yet acknowledged by the standby",
            ),
            last_shipped_gsn: r.gauge(
                "phoenix_repl_last_shipped_gsn",
                "highest GSN the shipper has sent",
            ),
            last_acked_gsn: r.gauge(
                "phoenix_repl_last_acked_gsn",
                "highest GSN the standby has acknowledged",
            ),
            applied_gsn: r.gauge(
                "phoenix_repl_applied_gsn",
                "highest GSN materialized on the standby",
            ),
        }
    })
}
