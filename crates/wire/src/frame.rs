//! Length-prefixed framing over a byte stream.
//!
//! ```text
//! frame := len:u32 LE | payload[len]
//! ```
//!
//! TCP already guarantees integrity, so unlike the WAL no checksum is
//! carried; what this layer must get right is clean failure: a peer that
//! dies mid-frame produces `UnexpectedEof`, which the driver classifies as a
//! communication failure (the trigger for Phoenix's recovery machinery).

use std::io::{self, Read, Write};

/// Maximum frame payload (64 MiB) — guards against garbage length fields.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Framing error.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (including EOF mid-frame).
    Io(io::Error),
    /// Frame length exceeds [`MAX_FRAME`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame.
///
/// Fault point `wire.write_frame` fires *before* any byte is written, so an
/// injected failure means the peer saw nothing (clean loss) or — for a torn
/// write — a strict prefix of the frame (the half-frame a dying sender
/// leaves on the socket).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() as u32 > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    match phoenix_chaos::fault("wire.write_frame") {
        phoenix_chaos::FaultAction::Continue => {}
        phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        // Crash is delivered asynchronously (socket sever by the harness
        // supervisor): the local side proceeds — this point fires on both
        // client and server, and the client must outlive the crash.
        phoenix_chaos::FaultAction::Crash => {}
        phoenix_chaos::FaultAction::IoError => {
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "wire.write_frame",
            )))
        }
        phoenix_chaos::FaultAction::Torn(n) => {
            let mut bytes = Vec::with_capacity(payload.len() + 4);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
            let n = n.min(bytes.len() - 1);
            w.write_all(&bytes[..n])?;
            w.flush()?;
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "wire.write_frame",
            )));
        }
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, blocking. EOF before a complete frame is an `Io` error
/// with kind `UnexpectedEof`.
///
/// Fault point `wire.read_frame` fires *after* the blocking read completes:
/// a visit marks the arrival of a whole frame, which keeps visit order a
/// pure function of the workload (no race against the peer's next write).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match phoenix_chaos::fault("wire.read_frame") {
        phoenix_chaos::FaultAction::Continue | phoenix_chaos::FaultAction::Crash => {}
        phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        phoenix_chaos::FaultAction::IoError | phoenix_chaos::FaultAction::Torn(_) => {
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "wire.read_frame",
            )))
        }
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xAB; 1000]);
        // Stream exhausted → UnexpectedEof.
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full frame").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }
}
