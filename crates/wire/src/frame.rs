//! Length-prefixed framing over a byte stream.
//!
//! ```text
//! frame := len:u32 LE | payload[len]
//! ```
//!
//! TCP already guarantees integrity, so unlike the WAL no checksum is
//! carried; what this layer must get right is clean failure: a peer that
//! dies mid-frame produces `UnexpectedEof`, which the driver classifies as a
//! communication failure (the trigger for Phoenix's recovery machinery).

use std::io::{self, Read, Write};

/// Maximum frame payload (64 MiB) — guards against garbage length fields.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Framing error.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (including EOF mid-frame).
    Io(io::Error),
    /// Frame length exceeds [`MAX_FRAME`].
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame.
///
/// Fault point `wire.write_frame` fires *before* any byte is written, so an
/// injected failure means the peer saw nothing (clean loss) or — for a torn
/// write — a strict prefix of the frame (the half-frame a dying sender
/// leaves on the socket).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() as u32 > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    match phoenix_chaos::fault("wire.write_frame") {
        phoenix_chaos::FaultAction::Continue => {}
        phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        // Crash is delivered asynchronously (socket sever by the harness
        // supervisor): the local side proceeds — this point fires on both
        // client and server, and the client must outlive the crash.
        phoenix_chaos::FaultAction::Crash => {}
        phoenix_chaos::FaultAction::IoError => {
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "wire.write_frame",
            )))
        }
        phoenix_chaos::FaultAction::Torn(n) => {
            let mut bytes = Vec::with_capacity(payload.len() + 4);
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(payload);
            let n = n.min(bytes.len() - 1);
            w.write_all(&bytes[..n])?;
            w.flush()?;
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "wire.write_frame",
            )));
        }
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, blocking. EOF before a complete frame is an `Io` error
/// with kind `UnexpectedEof`.
///
/// Fault point `wire.read_frame` fires *after* the blocking read completes:
/// a visit marks the arrival of a whole frame, which keeps visit order a
/// pure function of the workload (no race against the peer's next write).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    match phoenix_chaos::fault("wire.read_frame") {
        phoenix_chaos::FaultAction::Continue | phoenix_chaos::FaultAction::Crash => {}
        phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        phoenix_chaos::FaultAction::IoError | phoenix_chaos::FaultAction::Torn(_) => {
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "wire.read_frame",
            )))
        }
    }
    Ok(payload)
}

/// Write one *tagged* frame (protocol v2): an ordinary frame whose payload
/// starts with the request tag as a `u64` LE, followed by the message bytes.
///
/// The tag travels *inside* the frame — a single [`write_frame`] call — so a
/// torn write under fault injection tears the whole unit exactly as it does
/// for v1 frames; the chaos layer needs no new cases for v2.
pub fn write_tagged_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> Result<(), FrameError> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&tag.to_le_bytes());
    buf.extend_from_slice(payload);
    write_frame(w, &buf)
}

/// Read one tagged frame (protocol v2), returning `(tag, message bytes)`.
///
/// A frame shorter than the 8-byte tag prefix is a protocol violation and
/// surfaces as an `Io` error of kind `InvalidData` (not `UnexpectedEof`, so
/// it is never mistaken for a clean peer death).
pub fn read_tagged_frame(r: &mut impl Read) -> Result<(u64, Vec<u8>), FrameError> {
    let mut payload = read_frame(r)?;
    if payload.len() < 8 {
        return Err(FrameError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "tagged frame shorter than its tag prefix",
        )));
    }
    let tag = u64::from_le_bytes(payload[..8].try_into().expect("8-byte slice"));
    payload.drain(..8);
    Ok((tag, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xAB; 1000]);
        // Stream exhausted → UnexpectedEof.
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full frame").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tagged_roundtrip_interleaves_with_plain_frames() {
        let mut buf = Vec::new();
        write_tagged_frame(&mut buf, 7, b"first").unwrap();
        write_tagged_frame(&mut buf, u64::MAX, b"").unwrap();
        write_frame(&mut buf, b"plain").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_tagged_frame(&mut r).unwrap(), (7, b"first".to_vec()));
        assert_eq!(read_tagged_frame(&mut r).unwrap(), (u64::MAX, Vec::new()));
        // The tag rides inside the ordinary frame layer, so a plain read
        // after tagged frames still works.
        assert_eq!(read_frame(&mut r).unwrap(), b"plain");
    }

    #[test]
    fn short_tagged_frame_is_invalid_data_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[1, 2, 3]).unwrap(); // < 8 bytes: no room for a tag
        let mut r = Cursor::new(buf);
        match read_tagged_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = Cursor::new(buf);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }
}
