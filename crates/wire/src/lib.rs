#![warn(missing_docs)]

//! # phoenix-wire
//!
//! The framed binary client-server protocol for the Phoenix database stack —
//! the stand-in for the proprietary protocol between the paper's ODBC driver
//! and its commercial DBMS.
//!
//! * [`frame`] — length-prefixed frames over any `Read`/`Write` transport.
//! * [`message`] — the request/response message set and its binary codec
//!   (value encoding shared with the storage layer, so a row is encoded the
//!   same way on disk and on the wire).
//!
//! Two protocol versions share the frame layer:
//!
//! * **v1** is strictly request/response per connection — one request in
//!   flight, untagged frames — exactly as in ODBC. Old clients and servers
//!   speak only this.
//! * **v2** adds *tagged pipelining*: after a [`message::Request::LoginV2`]
//!   handshake both sides switch to tagged frames (`tag: u64 LE` prefixed to
//!   every payload). The client may keep up to the negotiated window of
//!   requests in flight; the server executes them in arrival (= tag) order
//!   and streams tagged responses back in the same order. v2 also adds
//!   [`message::Request::ExecBatch`], which executes several statements in
//!   one round trip and returns per-statement outcomes in a single
//!   [`message::Response::BatchResult`] frame.
//!
//! Version negotiation needs no new mechanism: a v1 server answers the
//! unknown `LoginV2` tag with a clean `Response::Err` and keeps the
//! connection alive, so a v2 client simply falls back to a v1 `Login` on the
//! same socket.
//!
//! Failure modes the Phoenix layer must handle — a dead socket mid-request,
//! a response that never arrives — surface here as ordinary `io::Error`s,
//! which the driver maps to its `Comm` error class.

pub mod frame;
pub mod message;

pub use frame::{read_frame, read_tagged_frame, write_frame, write_tagged_frame, FrameError};
pub use message::{
    BatchItem, CursorKind, FetchDir, Outcome, ReplFrame, Request, Response, DEFAULT_WINDOW,
    PROTOCOL_V1, PROTOCOL_V2,
};
