#![warn(missing_docs)]

//! # phoenix-wire
//!
//! The framed binary client-server protocol for the Phoenix database stack —
//! the stand-in for the proprietary protocol between the paper's ODBC driver
//! and its commercial DBMS.
//!
//! * [`frame`] — length-prefixed frames over any `Read`/`Write` transport.
//! * [`message`] — the request/response message set and its binary codec
//!   (value encoding shared with the storage layer, so a row is encoded the
//!   same way on disk and on the wire).
//!
//! The protocol is strictly request/response per connection; concurrency
//! comes from multiple connections, exactly as in ODBC. Failure modes the
//! Phoenix layer must handle — a dead socket mid-request, a response that
//! never arrives — surface here as ordinary `io::Error`s, which the driver
//! maps to its `Comm` error class.

pub mod frame;
pub mod message;

pub use frame::{read_frame, write_frame, FrameError};
pub use message::{CursorKind, FetchDir, Outcome, Request, Response};
