//! The protocol message set.
//!
//! Requests model the ODBC driver's interactions with the server: log in,
//! execute a statement (default result set — all rows shipped at once, the
//! server "assumes the application will fetch all the rows promptly"), open
//! a server cursor of a given kind, fetch blocks, ping, log out.
//!
//! Responses carry result sets (schema + rows), rows-affected counts, server
//! messages (the paper's *reply buffers*), cursor handles and errors.

use bytes::{Buf, BufMut, BytesMut};

use phoenix_storage::codec::{self, DecodeError};
use phoenix_storage::types::{Row, Schema, Value};

/// Protocol version 1: untagged frames, one request in flight.
pub const PROTOCOL_V1: u32 = 1;
/// Protocol version 2: tagged frames, pipelined requests, batch execution.
pub const PROTOCOL_V2: u32 = 2;
/// The pipeline window the server grants by default (and the maximum it
/// will grant regardless of what the client asks for).
pub const DEFAULT_WINDOW: u32 = 32;

/// Cursor kinds on the wire (mirrors the engine's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CursorKind {
    /// Result materialized at open; forward block fetches.
    ForwardOnly,
    /// Key membership fixed at open; rows re-read by key.
    Keyset,
    /// Predicate re-evaluated per fetch over key order.
    Dynamic,
}

/// Fetch orientation on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchDir {
    /// The next block.
    Next,
    /// The previous block.
    Prior,
    /// Position to the 0-based row index before fetching.
    Absolute(u64),
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session. `options` are applied as initial SET options.
    Login {
        /// Login user name.
        user: String,
        /// Target database name (advisory in this engine).
        database: String,
        /// Initial session options, applied as SETs.
        options: Vec<(String, Value)>,
    },
    /// Execute a statement; the response is the complete result.
    Exec {
        /// The SQL text.
        sql: String,
    },
    /// Open a server cursor over a SELECT.
    OpenCursor {
        /// The SELECT text.
        sql: String,
        /// Requested cursor kind (the server may downgrade).
        kind: CursorKind,
    },
    /// Fetch up to `n` rows.
    Fetch {
        /// The cursor handle.
        cursor: u64,
        /// Fetch orientation.
        dir: FetchDir,
        /// Maximum rows to return.
        n: u32,
    },
    /// Close a server cursor.
    CloseCursor {
        /// The cursor handle.
        cursor: u64,
    },
    /// Liveness check; answered with `Pong` without touching any session
    /// state.
    Ping,
    /// Catalog introspection: schema and primary key of a table (the
    /// ODBC `SQLPrimaryKeys`/`SQLColumns` analogue; Phoenix uses it to
    /// build key tables for persistent cursors).
    Describe {
        /// Table name (optionally namespace-qualified).
        table: String,
    },
    /// Fetch the server's observability snapshot (metrics + recovery event
    /// journal). Session-less like `Ping`: answered even before login, so a
    /// monitoring client never needs a session.
    Stats,
    /// End the session gracefully.
    Logout,
    /// Protocol-v2 login: like [`Request::Login`] but advertising the
    /// client's protocol version and desired pipeline window. A v2 server
    /// answers [`Response::LoginAckV2`] and — when the granted protocol is
    /// v2 — both sides switch to tagged frames for the rest of the
    /// connection. A v1 server answers the unknown tag with
    /// [`Response::Err`] and keeps the connection open, so the client can
    /// fall back to a v1 `Login` on the same socket.
    LoginV2 {
        /// Login user name.
        user: String,
        /// Target database name (advisory in this engine).
        database: String,
        /// Initial session options, applied as SETs.
        options: Vec<(String, Value)>,
        /// Highest protocol version the client speaks.
        protocol: u32,
        /// Pipeline window the client wants (the server grants
        /// `min(window, DEFAULT_WINDOW)`, at least 1).
        window: u32,
    },
    /// Execute several statements in one round trip (v2). Statements run in
    /// order against the session; execution stops at the first error. The
    /// answer is one [`Response::BatchResult`] carrying per-statement
    /// outcomes.
    ExecBatch {
        /// The statements, in execution order.
        stmts: Vec<String>,
    },
    /// Replication handshake, sent by a primary's shipper to a standby's
    /// receiver. The standby answers [`Response::ReplHelloAck`] with its own
    /// log high-water so the shipper can serve exactly the missing suffix —
    /// or [`Response::Err`] when the sender's epoch is stale (the shipper
    /// must then fence its primary: a newer incarnation exists).
    ReplHello {
        /// The sending primary's incarnation epoch.
        epoch: u64,
        /// Replication protocol version the shipper speaks.
        protocol: u32,
    },
    /// A batch of WAL frames shipped primary → standby, in strict GSN
    /// order. The standby appends each to its own per-partition log, fsyncs,
    /// applies, and answers [`Response::ReplAck`] with its new watermark. An
    /// empty batch is a heartbeat (resets the standby's auto-promotion
    /// timer) and is acked like any other.
    ReplFrames {
        /// The sending primary's incarnation epoch (re-checked per batch:
        /// a standby that has seen a newer epoch refuses the stale one).
        epoch: u64,
        /// The frames, GSN-ascending.
        frames: Vec<ReplFrame>,
    },
    /// Operator command: promote the receiving standby to primary under (at
    /// least) the given epoch. The standby replies [`Response::Promoted`]
    /// with the epoch it actually took, then replays its tail and starts
    /// accepting logins. Sent to a live *primary*, this fences it instead —
    /// the split-brain kill switch.
    Promote {
        /// Minimum epoch the new incarnation must exceed the old one by.
        epoch: u64,
    },
}

/// One replicated WAL frame: a partition-tagged, GSN-stamped log record,
/// byte-identical to the source stream's frame payload (minus the GSN
/// prefix, carried explicitly here).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplFrame {
    /// Which of the primary's partition streams the record came from — the
    /// standby appends it to the same stream index of its own directory.
    pub partition: u8,
    /// The record's global sequence number.
    pub gsn: u64,
    /// The encoded `LogRecord` bytes (opaque to the wire layer).
    pub record: Vec<u8>,
}

/// What a statement produced (wire view of the engine's outcome).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A complete result set.
    ResultSet {
        /// Result metadata.
        schema: Schema,
        /// All result rows.
        rows: Vec<Row>,
    },
    /// Rows modified by a DML statement.
    RowsAffected(u64),
    /// DDL / control statement completed.
    Done,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session opened.
    LoginAck {
        /// Server-assigned session id.
        session: u64,
    },
    /// Statement result.
    Result {
        /// What the statement produced.
        outcome: Outcome,
        /// Server messages (PRINT output — the paper's reply buffers).
        messages: Vec<String>,
    },
    /// Cursor opened.
    CursorOpened {
        /// The cursor handle.
        cursor: u64,
        /// Result metadata.
        schema: Schema,
        /// The kind actually granted.
        granted: CursorKind,
    },
    /// A fetched block.
    Rows {
        /// The rows (possibly fewer than requested).
        rows: Vec<Row>,
        /// No more rows in this direction?
        at_end: bool,
    },
    /// Ping answer.
    Pong,
    /// Catalog answer for `Describe`.
    TableInfo {
        /// The table's schema.
        schema: Schema,
        /// Primary-key column names, in key order; empty when keyless.
        primary_key: Vec<String>,
    },
    /// Statement/session error. `code` is the engine's `ErrorCode` as u16.
    Err {
        /// The engine's `ErrorCode` as a number.
        code: u16,
        /// Human-readable message.
        message: String,
    },
    /// Observability snapshot answer for `Stats`. The payload is a
    /// `phoenix-obs` `StatsSnapshot` in its own versioned encoding, carried
    /// opaquely so the wire layer needs no knowledge of metric structure
    /// (and the obs format can evolve without a protocol bump).
    Stats {
        /// `StatsSnapshot::encode()` bytes; decode with
        /// `StatsSnapshot::decode`.
        snapshot: Vec<u8>,
    },
    /// Logout acknowledged.
    Bye,
    /// Protocol-v2 login acknowledged. Sent as the last *untagged* frame;
    /// when `protocol` is v2, every subsequent frame in both directions is
    /// tagged.
    LoginAckV2 {
        /// Server-assigned session id.
        session: u64,
        /// Protocol version the server granted (≤ the client's advertised
        /// version).
        protocol: u32,
        /// Pipeline window the server granted (≥ 1).
        window: u32,
    },
    /// Per-statement outcomes of a [`Request::ExecBatch`]. Contains one
    /// item per executed statement; when a statement fails its `Err` item
    /// is last (the rest of the batch did not run).
    BatchResult {
        /// Outcomes in statement order.
        items: Vec<BatchItem>,
    },
    /// Standby's answer to [`Request::ReplHello`]: its current epoch and
    /// log high-water. The shipper resumes shipping at `last_gsn + 1`.
    ReplHelloAck {
        /// The standby's (possibly just-raised) epoch.
        epoch: u64,
        /// Highest GSN present in the standby's logs (0 = empty).
        last_gsn: u64,
    },
    /// Standby's answer to [`Request::ReplFrames`]: every frame with
    /// `gsn ≤ last_gsn` is received, appended to the standby's own log and
    /// fsynced — the semi-sync commit ack point.
    ReplAck {
        /// The standby's new log high-water.
        last_gsn: u64,
    },
    /// Answer to [`Request::Promote`]: the standby took this epoch and is
    /// replaying its tail; logins are accepted shortly after on the same
    /// address.
    Promoted {
        /// The new incarnation's epoch (> every epoch the standby had seen).
        epoch: u64,
    },
}

/// One statement's outcome inside a [`Response::BatchResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// The statement executed.
    Ok {
        /// What the statement produced.
        outcome: Outcome,
        /// Server messages delivered with this statement's reply.
        messages: Vec<String>,
    },
    /// The statement failed; batch execution stopped here.
    Err {
        /// The engine's `ErrorCode` as a number.
        code: u16,
        /// Human-readable message.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const REQ_LOGIN: u8 = 1;
const REQ_EXEC: u8 = 2;
const REQ_OPEN_CURSOR: u8 = 3;
const REQ_FETCH: u8 = 4;
const REQ_CLOSE_CURSOR: u8 = 5;
const REQ_PING: u8 = 6;
const REQ_LOGOUT: u8 = 7;
const REQ_DESCRIBE: u8 = 8;
const REQ_STATS: u8 = 9;
const REQ_LOGIN_V2: u8 = 10;
const REQ_EXEC_BATCH: u8 = 11;
const REQ_REPL_HELLO: u8 = 12;
const REQ_REPL_FRAMES: u8 = 13;
const REQ_PROMOTE: u8 = 14;

const RSP_LOGIN_ACK: u8 = 101;
const RSP_RESULT: u8 = 102;
const RSP_CURSOR_OPENED: u8 = 103;
const RSP_ROWS: u8 = 104;
const RSP_PONG: u8 = 105;
const RSP_ERR: u8 = 106;
const RSP_BYE: u8 = 107;
const RSP_TABLE_INFO: u8 = 108;
const RSP_STATS: u8 = 109;
const RSP_LOGIN_ACK_V2: u8 = 110;
const RSP_BATCH_RESULT: u8 = 111;
const RSP_REPL_HELLO_ACK: u8 = 112;
const RSP_REPL_ACK: u8 = 113;
const RSP_PROMOTED: u8 = 114;

fn cursor_kind_tag(k: CursorKind) -> u8 {
    match k {
        CursorKind::ForwardOnly => 0,
        CursorKind::Keyset => 1,
        CursorKind::Dynamic => 2,
    }
}

fn cursor_kind_from(t: u8) -> Result<CursorKind, DecodeError> {
    Ok(match t {
        0 => CursorKind::ForwardOnly,
        1 => CursorKind::Keyset,
        2 => CursorKind::Dynamic,
        other => return Err(DecodeError(format!("bad cursor kind {other}"))),
    })
}

fn put_fetch_dir(buf: &mut impl BufMut, d: FetchDir) {
    match d {
        FetchDir::Next => buf.put_u8(0),
        FetchDir::Prior => buf.put_u8(1),
        FetchDir::Absolute(k) => {
            buf.put_u8(2);
            buf.put_u64_le(k);
        }
    }
}

fn get_fetch_dir(buf: &mut impl Buf) -> Result<FetchDir, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError("truncated fetch dir".into()));
    }
    Ok(match buf.get_u8() {
        0 => FetchDir::Next,
        1 => FetchDir::Prior,
        2 => {
            if buf.remaining() < 8 {
                return Err(DecodeError("truncated absolute position".into()));
            }
            FetchDir::Absolute(buf.get_u64_le())
        }
        other => return Err(DecodeError(format!("bad fetch dir {other}"))),
    })
}

fn put_rows(buf: &mut impl BufMut, rows: &[Row]) {
    buf.put_u32_le(rows.len() as u32);
    for r in rows {
        codec::put_row(buf, r);
    }
}

fn get_rows(buf: &mut impl Buf) -> Result<Vec<Row>, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError("truncated row count".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rows.push(codec::get_row(buf)?);
    }
    Ok(rows)
}

fn put_outcome(buf: &mut BytesMut, outcome: &Outcome) {
    match outcome {
        Outcome::ResultSet { schema, rows } => {
            buf.put_u8(0);
            codec::put_schema(buf, schema);
            put_rows(buf, rows);
        }
        Outcome::RowsAffected(n) => {
            buf.put_u8(1);
            buf.put_u64_le(*n);
        }
        Outcome::Done => buf.put_u8(2),
    }
}

fn get_outcome(buf: &mut &[u8]) -> Result<Outcome, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError("truncated outcome tag".into()));
    }
    Ok(match buf.get_u8() {
        0 => {
            let schema = codec::get_schema(buf)?;
            let rows = get_rows(buf)?;
            Outcome::ResultSet { schema, rows }
        }
        1 => {
            if buf.remaining() < 8 {
                return Err(DecodeError("truncated count".into()));
            }
            Outcome::RowsAffected(buf.get_u64_le())
        }
        2 => Outcome::Done,
        other => return Err(DecodeError(format!("bad outcome tag {other}"))),
    })
}

fn put_messages(buf: &mut BytesMut, messages: &[String]) {
    buf.put_u16_le(messages.len() as u16);
    for m in messages {
        codec::put_str(buf, m);
    }
}

fn get_messages(buf: &mut &[u8]) -> Result<Vec<String>, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError("truncated message count".into()));
    }
    let n = buf.get_u16_le() as usize;
    let mut messages = Vec::with_capacity(n);
    for _ in 0..n {
        messages.push(codec::get_str(buf)?);
    }
    Ok(messages)
}

impl Request {
    /// Serialize for framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            Request::Login {
                user,
                database,
                options,
            } => {
                buf.put_u8(REQ_LOGIN);
                codec::put_str(&mut buf, user);
                codec::put_str(&mut buf, database);
                buf.put_u16_le(options.len() as u16);
                for (k, v) in options {
                    codec::put_str(&mut buf, k);
                    codec::put_value(&mut buf, v);
                }
            }
            Request::Exec { sql } => {
                buf.put_u8(REQ_EXEC);
                codec::put_str(&mut buf, sql);
            }
            Request::OpenCursor { sql, kind } => {
                buf.put_u8(REQ_OPEN_CURSOR);
                codec::put_str(&mut buf, sql);
                buf.put_u8(cursor_kind_tag(*kind));
            }
            Request::Fetch { cursor, dir, n } => {
                buf.put_u8(REQ_FETCH);
                buf.put_u64_le(*cursor);
                put_fetch_dir(&mut buf, *dir);
                buf.put_u32_le(*n);
            }
            Request::CloseCursor { cursor } => {
                buf.put_u8(REQ_CLOSE_CURSOR);
                buf.put_u64_le(*cursor);
            }
            Request::Ping => buf.put_u8(REQ_PING),
            Request::Describe { table } => {
                buf.put_u8(REQ_DESCRIBE);
                codec::put_str(&mut buf, table);
            }
            Request::Stats => buf.put_u8(REQ_STATS),
            Request::Logout => buf.put_u8(REQ_LOGOUT),
            Request::LoginV2 {
                user,
                database,
                options,
                protocol,
                window,
            } => {
                buf.put_u8(REQ_LOGIN_V2);
                codec::put_str(&mut buf, user);
                codec::put_str(&mut buf, database);
                buf.put_u16_le(options.len() as u16);
                for (k, v) in options {
                    codec::put_str(&mut buf, k);
                    codec::put_value(&mut buf, v);
                }
                buf.put_u32_le(*protocol);
                buf.put_u32_le(*window);
            }
            Request::ExecBatch { stmts } => {
                buf.put_u8(REQ_EXEC_BATCH);
                buf.put_u32_le(stmts.len() as u32);
                for s in stmts {
                    codec::put_str(&mut buf, s);
                }
            }
            Request::ReplHello { epoch, protocol } => {
                buf.put_u8(REQ_REPL_HELLO);
                buf.put_u64_le(*epoch);
                buf.put_u32_le(*protocol);
            }
            Request::ReplFrames { epoch, frames } => {
                buf.put_u8(REQ_REPL_FRAMES);
                buf.put_u64_le(*epoch);
                buf.put_u32_le(frames.len() as u32);
                for f in frames {
                    buf.put_u8(f.partition);
                    buf.put_u64_le(f.gsn);
                    buf.put_u32_le(f.record.len() as u32);
                    buf.extend_from_slice(&f.record);
                }
            }
            Request::Promote { epoch } => {
                buf.put_u8(REQ_PROMOTE);
                buf.put_u64_le(*epoch);
            }
        }
        buf.to_vec()
    }

    /// Deserialize a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Request, DecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 1 {
            return Err(DecodeError("empty request".into()));
        }
        let tag = buf.get_u8();
        let req = match tag {
            REQ_LOGIN => {
                let user = codec::get_str(&mut buf)?;
                let database = codec::get_str(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(DecodeError("truncated option count".into()));
                }
                let n = buf.get_u16_le() as usize;
                let mut options = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = codec::get_str(&mut buf)?;
                    let v = codec::get_value(&mut buf)?;
                    options.push((k, v));
                }
                Request::Login {
                    user,
                    database,
                    options,
                }
            }
            REQ_EXEC => Request::Exec {
                sql: codec::get_str(&mut buf)?,
            },
            REQ_OPEN_CURSOR => {
                let sql = codec::get_str(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError("truncated cursor kind".into()));
                }
                let kind = cursor_kind_from(buf.get_u8())?;
                Request::OpenCursor { sql, kind }
            }
            REQ_FETCH => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated cursor id".into()));
                }
                let cursor = buf.get_u64_le();
                let dir = get_fetch_dir(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(DecodeError("truncated fetch size".into()));
                }
                let n = buf.get_u32_le();
                Request::Fetch { cursor, dir, n }
            }
            REQ_CLOSE_CURSOR => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated cursor id".into()));
                }
                Request::CloseCursor {
                    cursor: buf.get_u64_le(),
                }
            }
            REQ_PING => Request::Ping,
            REQ_DESCRIBE => Request::Describe {
                table: codec::get_str(&mut buf)?,
            },
            REQ_STATS => Request::Stats,
            REQ_LOGOUT => Request::Logout,
            REQ_LOGIN_V2 => {
                let user = codec::get_str(&mut buf)?;
                let database = codec::get_str(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(DecodeError("truncated option count".into()));
                }
                let n = buf.get_u16_le() as usize;
                let mut options = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = codec::get_str(&mut buf)?;
                    let v = codec::get_value(&mut buf)?;
                    options.push((k, v));
                }
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated protocol/window".into()));
                }
                let protocol = buf.get_u32_le();
                let window = buf.get_u32_le();
                Request::LoginV2 {
                    user,
                    database,
                    options,
                    protocol,
                    window,
                }
            }
            REQ_EXEC_BATCH => {
                if buf.remaining() < 4 {
                    return Err(DecodeError("truncated statement count".into()));
                }
                let n = buf.get_u32_le() as usize;
                let mut stmts = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    stmts.push(codec::get_str(&mut buf)?);
                }
                Request::ExecBatch { stmts }
            }
            REQ_REPL_HELLO => {
                if buf.remaining() < 12 {
                    return Err(DecodeError("truncated repl hello".into()));
                }
                let epoch = buf.get_u64_le();
                let protocol = buf.get_u32_le();
                Request::ReplHello { epoch, protocol }
            }
            REQ_REPL_FRAMES => {
                if buf.remaining() < 12 {
                    return Err(DecodeError("truncated repl frame header".into()));
                }
                let epoch = buf.get_u64_le();
                let n = buf.get_u32_le() as usize;
                let mut frames = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if buf.remaining() < 13 {
                        return Err(DecodeError("truncated repl frame".into()));
                    }
                    let partition = buf.get_u8();
                    let gsn = buf.get_u64_le();
                    let len = buf.get_u32_le() as usize;
                    if buf.remaining() < len {
                        return Err(DecodeError("truncated repl frame record".into()));
                    }
                    let record = buf[..len].to_vec();
                    buf.advance(len);
                    frames.push(ReplFrame {
                        partition,
                        gsn,
                        record,
                    });
                }
                Request::ReplFrames { epoch, frames }
            }
            REQ_PROMOTE => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated promote epoch".into()));
                }
                Request::Promote {
                    epoch: buf.get_u64_le(),
                }
            }
            other => return Err(DecodeError(format!("unknown request tag {other}"))),
        };
        if buf.remaining() != 0 {
            return Err(DecodeError("trailing bytes in request".into()));
        }
        Ok(req)
    }
}

impl Response {
    /// Serialize for framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        match self {
            Response::LoginAck { session } => {
                buf.put_u8(RSP_LOGIN_ACK);
                buf.put_u64_le(*session);
            }
            Response::Result { outcome, messages } => {
                buf.put_u8(RSP_RESULT);
                put_outcome(&mut buf, outcome);
                put_messages(&mut buf, messages);
            }
            Response::CursorOpened {
                cursor,
                schema,
                granted,
            } => {
                buf.put_u8(RSP_CURSOR_OPENED);
                buf.put_u64_le(*cursor);
                codec::put_schema(&mut buf, schema);
                buf.put_u8(cursor_kind_tag(*granted));
            }
            Response::Rows { rows, at_end } => {
                buf.put_u8(RSP_ROWS);
                put_rows(&mut buf, rows);
                buf.put_u8(*at_end as u8);
            }
            Response::Pong => buf.put_u8(RSP_PONG),
            Response::TableInfo {
                schema,
                primary_key,
            } => {
                buf.put_u8(RSP_TABLE_INFO);
                codec::put_schema(&mut buf, schema);
                buf.put_u16_le(primary_key.len() as u16);
                for k in primary_key {
                    codec::put_str(&mut buf, k);
                }
            }
            Response::Err { code, message } => {
                buf.put_u8(RSP_ERR);
                buf.put_u16_le(*code);
                codec::put_str(&mut buf, message);
            }
            Response::Stats { snapshot } => {
                buf.put_u8(RSP_STATS);
                buf.put_u32_le(snapshot.len() as u32);
                buf.put_slice(snapshot);
            }
            Response::Bye => buf.put_u8(RSP_BYE),
            Response::LoginAckV2 {
                session,
                protocol,
                window,
            } => {
                buf.put_u8(RSP_LOGIN_ACK_V2);
                buf.put_u64_le(*session);
                buf.put_u32_le(*protocol);
                buf.put_u32_le(*window);
            }
            Response::BatchResult { items } => {
                buf.put_u8(RSP_BATCH_RESULT);
                buf.put_u32_le(items.len() as u32);
                for item in items {
                    match item {
                        BatchItem::Ok { outcome, messages } => {
                            buf.put_u8(0);
                            put_outcome(&mut buf, outcome);
                            put_messages(&mut buf, messages);
                        }
                        BatchItem::Err { code, message } => {
                            buf.put_u8(1);
                            buf.put_u16_le(*code);
                            codec::put_str(&mut buf, message);
                        }
                    }
                }
            }
            Response::ReplHelloAck { epoch, last_gsn } => {
                buf.put_u8(RSP_REPL_HELLO_ACK);
                buf.put_u64_le(*epoch);
                buf.put_u64_le(*last_gsn);
            }
            Response::ReplAck { last_gsn } => {
                buf.put_u8(RSP_REPL_ACK);
                buf.put_u64_le(*last_gsn);
            }
            Response::Promoted { epoch } => {
                buf.put_u8(RSP_PROMOTED);
                buf.put_u64_le(*epoch);
            }
        }
        buf.to_vec()
    }

    /// Deserialize a frame payload.
    pub fn decode(bytes: &[u8]) -> Result<Response, DecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 1 {
            return Err(DecodeError("empty response".into()));
        }
        let tag = buf.get_u8();
        let rsp = match tag {
            RSP_LOGIN_ACK => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated session id".into()));
                }
                Response::LoginAck {
                    session: buf.get_u64_le(),
                }
            }
            RSP_RESULT => {
                let outcome = get_outcome(&mut buf)?;
                let messages = get_messages(&mut buf)?;
                Response::Result { outcome, messages }
            }
            RSP_CURSOR_OPENED => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated cursor id".into()));
                }
                let cursor = buf.get_u64_le();
                let schema = codec::get_schema(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError("truncated granted kind".into()));
                }
                let granted = cursor_kind_from(buf.get_u8())?;
                Response::CursorOpened {
                    cursor,
                    schema,
                    granted,
                }
            }
            RSP_ROWS => {
                let rows = get_rows(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError("truncated at_end flag".into()));
                }
                Response::Rows {
                    rows,
                    at_end: buf.get_u8() != 0,
                }
            }
            RSP_PONG => Response::Pong,
            RSP_TABLE_INFO => {
                let schema = codec::get_schema(&mut buf)?;
                if buf.remaining() < 2 {
                    return Err(DecodeError("truncated pk count".into()));
                }
                let n = buf.get_u16_le() as usize;
                let mut primary_key = Vec::with_capacity(n);
                for _ in 0..n {
                    primary_key.push(codec::get_str(&mut buf)?);
                }
                Response::TableInfo {
                    schema,
                    primary_key,
                }
            }
            RSP_ERR => {
                if buf.remaining() < 2 {
                    return Err(DecodeError("truncated error code".into()));
                }
                let code = buf.get_u16_le();
                let message = codec::get_str(&mut buf)?;
                Response::Err { code, message }
            }
            RSP_STATS => {
                if buf.remaining() < 4 {
                    return Err(DecodeError("truncated stats length".into()));
                }
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n {
                    return Err(DecodeError("truncated stats payload".into()));
                }
                let mut snapshot = vec![0u8; n];
                buf.copy_to_slice(&mut snapshot);
                Response::Stats { snapshot }
            }
            RSP_BYE => Response::Bye,
            RSP_LOGIN_ACK_V2 => {
                if buf.remaining() < 16 {
                    return Err(DecodeError("truncated v2 login ack".into()));
                }
                let session = buf.get_u64_le();
                let protocol = buf.get_u32_le();
                let window = buf.get_u32_le();
                Response::LoginAckV2 {
                    session,
                    protocol,
                    window,
                }
            }
            RSP_BATCH_RESULT => {
                if buf.remaining() < 4 {
                    return Err(DecodeError("truncated batch item count".into()));
                }
                let n = buf.get_u32_le() as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    if buf.remaining() < 1 {
                        return Err(DecodeError("truncated batch item tag".into()));
                    }
                    items.push(match buf.get_u8() {
                        0 => {
                            let outcome = get_outcome(&mut buf)?;
                            let messages = get_messages(&mut buf)?;
                            BatchItem::Ok { outcome, messages }
                        }
                        1 => {
                            if buf.remaining() < 2 {
                                return Err(DecodeError("truncated batch error code".into()));
                            }
                            let code = buf.get_u16_le();
                            let message = codec::get_str(&mut buf)?;
                            BatchItem::Err { code, message }
                        }
                        other => return Err(DecodeError(format!("bad batch item tag {other}"))),
                    });
                }
                Response::BatchResult { items }
            }
            RSP_REPL_HELLO_ACK => {
                if buf.remaining() < 16 {
                    return Err(DecodeError("truncated repl hello ack".into()));
                }
                let epoch = buf.get_u64_le();
                let last_gsn = buf.get_u64_le();
                Response::ReplHelloAck { epoch, last_gsn }
            }
            RSP_REPL_ACK => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated repl ack".into()));
                }
                Response::ReplAck {
                    last_gsn: buf.get_u64_le(),
                }
            }
            RSP_PROMOTED => {
                if buf.remaining() < 8 {
                    return Err(DecodeError("truncated promoted epoch".into()));
                }
                Response::Promoted {
                    epoch: buf.get_u64_le(),
                }
            }
            other => return Err(DecodeError(format!("unknown response tag {other}"))),
        };
        if buf.remaining() != 0 {
            return Err(DecodeError("trailing bytes in response".into()));
        }
        Ok(rsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_storage::types::{Column, DataType};

    fn roundtrip_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    fn roundtrip_rsp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Login {
            user: "app".into(),
            database: "tpch".into(),
            options: vec![("lock_timeout".into(), Value::Int(5000))],
        });
        roundtrip_req(Request::Exec {
            sql: "SELECT * FROM customer WHERE name = 'Smith'".into(),
        });
        roundtrip_req(Request::OpenCursor {
            sql: "SELECT * FROM orders".into(),
            kind: CursorKind::Dynamic,
        });
        roundtrip_req(Request::Fetch {
            cursor: 7,
            dir: FetchDir::Absolute(42),
            n: 100,
        });
        roundtrip_req(Request::Fetch {
            cursor: 7,
            dir: FetchDir::Prior,
            n: 1,
        });
        roundtrip_req(Request::CloseCursor { cursor: 7 });
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Describe {
            table: "dbo.orders".into(),
        });
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Logout);
        roundtrip_req(Request::LoginV2 {
            user: "alice".into(),
            database: "orders".into(),
            options: vec![("lock_timeout".into(), Value::Int(5))],
            protocol: PROTOCOL_V2,
            window: DEFAULT_WINDOW,
        });
        roundtrip_req(Request::ExecBatch { stmts: Vec::new() });
        roundtrip_req(Request::ExecBatch {
            stmts: vec![
                "BEGIN TRANSACTION".into(),
                "UPDATE t SET v = 1".into(),
                "COMMIT".into(),
            ],
        });
        roundtrip_req(Request::ReplHello {
            epoch: 3,
            protocol: PROTOCOL_V2,
        });
        roundtrip_req(Request::ReplFrames {
            epoch: 3,
            frames: Vec::new(),
        });
        roundtrip_req(Request::ReplFrames {
            epoch: 3,
            frames: vec![
                ReplFrame {
                    partition: 0,
                    gsn: 41,
                    record: vec![1, 2, 3],
                },
                ReplFrame {
                    partition: 7,
                    gsn: 42,
                    record: Vec::new(),
                },
            ],
        });
        roundtrip_req(Request::Promote { epoch: 4 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_rsp(Response::LoginAck { session: 3 });
        roundtrip_rsp(Response::Result {
            outcome: Outcome::ResultSet {
                schema: Schema::new(vec![
                    Column::new("id", DataType::Int).not_null(),
                    Column::new("name", DataType::Text),
                ]),
                rows: vec![
                    vec![Value::Int(1), Value::Text("Smith".into())],
                    vec![Value::Int(2), Value::Null],
                ],
            },
            messages: vec!["1 row(s) affected".into()],
        });
        roundtrip_rsp(Response::Result {
            outcome: Outcome::RowsAffected(1500),
            messages: Vec::new(),
        });
        roundtrip_rsp(Response::Result {
            outcome: Outcome::Done,
            messages: Vec::new(),
        });
        roundtrip_rsp(Response::CursorOpened {
            cursor: 9,
            schema: Schema::new(vec![Column::new("k", DataType::Int)]),
            granted: CursorKind::Keyset,
        });
        roundtrip_rsp(Response::Rows {
            rows: vec![vec![Value::Float(1.5)]],
            at_end: true,
        });
        roundtrip_rsp(Response::Pong);
        roundtrip_rsp(Response::TableInfo {
            schema: Schema::new(vec![Column::new("id", DataType::Int).not_null()]),
            primary_key: vec!["id".into()],
        });
        roundtrip_rsp(Response::Err {
            code: 2,
            message: "no such table 'x'".into(),
        });
        roundtrip_rsp(Response::Stats {
            snapshot: Vec::new(),
        });
        roundtrip_rsp(Response::Stats {
            snapshot: vec![0x53, 0x58, 0x48, 0x50, 1, 0, 0, 0, 0],
        });
        roundtrip_rsp(Response::Bye);
        roundtrip_rsp(Response::LoginAckV2 {
            session: 12,
            protocol: PROTOCOL_V2,
            window: 8,
        });
        roundtrip_rsp(Response::BatchResult { items: Vec::new() });
        roundtrip_rsp(Response::BatchResult {
            items: vec![
                BatchItem::Ok {
                    outcome: Outcome::Done,
                    messages: Vec::new(),
                },
                BatchItem::Ok {
                    outcome: Outcome::RowsAffected(3),
                    messages: vec!["3 row(s) affected".into()],
                },
                BatchItem::Ok {
                    outcome: Outcome::ResultSet {
                        schema: Schema::new(vec![Column::new("n", DataType::Int)]),
                        rows: vec![vec![Value::Int(3)]],
                    },
                    messages: Vec::new(),
                },
                BatchItem::Err {
                    code: 6,
                    message: "duplicate primary key".into(),
                },
            ],
        });
        roundtrip_rsp(Response::ReplHelloAck {
            epoch: 3,
            last_gsn: 4096,
        });
        roundtrip_rsp(Response::ReplAck { last_gsn: 4097 });
        roundtrip_rsp(Response::Promoted { epoch: 4 });
    }

    #[test]
    fn truncated_v2_messages_rejected() {
        // Chop bytes off the end of each v2 encoding: every prefix must fail
        // to decode rather than yield a partial message.
        let encodings = [
            Request::LoginV2 {
                user: "u".into(),
                database: "d".into(),
                options: Vec::new(),
                protocol: PROTOCOL_V2,
                window: 4,
            }
            .encode(),
            Request::ExecBatch {
                stmts: vec!["SELECT 1".into()],
            }
            .encode(),
            Request::ReplHello {
                epoch: 1,
                protocol: PROTOCOL_V2,
            }
            .encode(),
            Request::ReplFrames {
                epoch: 1,
                frames: vec![ReplFrame {
                    partition: 1,
                    gsn: 9,
                    record: vec![0xAB],
                }],
            }
            .encode(),
            Request::Promote { epoch: 2 }.encode(),
        ];
        for bytes in &encodings {
            for cut in 1..bytes.len() {
                assert!(Request::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
        let encodings = [
            Response::LoginAckV2 {
                session: 1,
                protocol: PROTOCOL_V2,
                window: 4,
            }
            .encode(),
            Response::BatchResult {
                items: vec![BatchItem::Err {
                    code: 1,
                    message: "x".into(),
                }],
            }
            .encode(),
            Response::ReplHelloAck {
                epoch: 1,
                last_gsn: 9,
            }
            .encode(),
            Response::ReplAck { last_gsn: 9 }.encode(),
            Response::Promoted { epoch: 2 }.encode(),
        ];
        for bytes in &encodings {
            for cut in 1..bytes.len() {
                assert!(Response::decode(&bytes[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[200]).is_err());
        assert!(Response::decode(&[200]).is_err());
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert!(Request::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_give_descriptive_errors() {
        // Every unassigned request tag decodes to a clean error naming the
        // tag — the server relies on this to answer `Response::Err` and keep
        // the connection alive instead of dropping it.
        for tag in [0u8, 15, 42, 100, 255] {
            let err = Request::decode(&[tag]).unwrap_err();
            assert!(
                err.0.contains("unknown request tag") && err.0.contains(&tag.to_string()),
                "tag {tag}: {err:?}"
            );
        }
        // Garbage *after* a valid tag is also an error, not a partial parse.
        let err = Request::decode(&[REQ_EXEC, 0xFF, 0xFF, 0xFF, 0xFF]).unwrap_err();
        assert!(!err.0.is_empty());
    }

    #[test]
    fn stats_payload_truncations_rejected() {
        let full = Response::Stats {
            snapshot: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Response::decode(&full[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn truncations_rejected_not_panicking() {
        let full = Response::Result {
            outcome: Outcome::ResultSet {
                schema: Schema::new(vec![Column::new("a", DataType::Text)]),
                rows: vec![vec![Value::Text("x".into())]],
            },
            messages: vec!["m".into()],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(Response::decode(&full[..cut]).is_err(), "cut {cut}");
        }
    }
}
