//! Golden-frame snapshot tests: the exact byte encodings of v1 and v2
//! messages, checked against fixtures committed to the repo.
//!
//! Codec roundtrip tests prove encode/decode agree *with each other*; they
//! cannot catch both sides drifting together (which would silently break
//! cross-version interop with already-deployed peers). These tests pin the
//! bytes themselves. If an encoding change is intentional — a new protocol
//! revision — regenerate with:
//!
//! ```text
//! BLESS=1 cargo test -p phoenix-wire --test golden_frames
//! ```
//!
//! and review the fixture diff like any other wire-format change.

use phoenix_storage::types::{Column, DataType, Schema, Value};
use phoenix_wire::{BatchItem, CursorKind, FetchDir, Outcome, ReplFrame, Request, Response};
use phoenix_wire::{DEFAULT_WINDOW, PROTOCOL_V2};

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 3);
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 {
            out.push(if i % 16 == 0 { '\n' } else { ' ' });
        }
        out.push_str(&format!("{b:02x}"));
    }
    out.push('\n');
    out
}

fn check(name: &str, bytes: &[u8]) -> Result<(), String> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("{name}.hex"));
    let got = hex(bytes);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return Ok(());
    }
    let want = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "{name}: missing fixture {} ({e}); run with BLESS=1",
            path.display()
        )
    })?;
    if want != got {
        return Err(format!(
            "{name}: encoding drifted from committed fixture.\n--- fixture\n{want}--- actual\n{got}"
        ));
    }
    Ok(())
}

/// The canonical message set. Deliberately exercises every variant and every
/// nested encoding branch (outcome kinds, value types, batch item kinds).
fn golden_set() -> Vec<(&'static str, Vec<u8>)> {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int).not_null(),
        Column::new("name", DataType::Text),
    ]);
    vec![
        (
            "v1_req_login",
            Request::Login {
                user: "alice".into(),
                database: "orders".into(),
                options: vec![("lock_timeout".into(), Value::Int(5))],
            }
            .encode(),
        ),
        (
            "v1_req_exec",
            Request::Exec {
                sql: "SELECT * FROM customer".into(),
            }
            .encode(),
        ),
        (
            "v1_req_open_cursor",
            Request::OpenCursor {
                sql: "SELECT id FROM customer".into(),
                kind: CursorKind::Keyset,
            }
            .encode(),
        ),
        (
            "v1_req_fetch",
            Request::Fetch {
                cursor: 7,
                dir: FetchDir::Absolute(41),
                n: 16,
            }
            .encode(),
        ),
        (
            "v1_req_close_cursor",
            Request::CloseCursor { cursor: 7 }.encode(),
        ),
        ("v1_req_ping", Request::Ping.encode()),
        (
            "v1_req_describe",
            Request::Describe {
                table: "dbo.orders".into(),
            }
            .encode(),
        ),
        ("v1_req_stats", Request::Stats.encode()),
        ("v1_req_logout", Request::Logout.encode()),
        (
            "v1_rsp_login_ack",
            Response::LoginAck { session: 3 }.encode(),
        ),
        (
            "v1_rsp_result_rows",
            Response::Result {
                outcome: Outcome::ResultSet {
                    schema: schema.clone(),
                    rows: vec![
                        vec![Value::Int(1), Value::Text("Smith".into())],
                        vec![Value::Int(2), Value::Null],
                    ],
                },
                messages: vec!["2 row(s) returned".into()],
            }
            .encode(),
        ),
        (
            "v1_rsp_result_affected",
            Response::Result {
                outcome: Outcome::RowsAffected(1500),
                messages: Vec::new(),
            }
            .encode(),
        ),
        (
            "v1_rsp_cursor_opened",
            Response::CursorOpened {
                cursor: 9,
                schema: schema.clone(),
                granted: CursorKind::ForwardOnly,
            }
            .encode(),
        ),
        (
            "v1_rsp_rows",
            Response::Rows {
                rows: vec![vec![Value::Float(1.5), Value::Bool(true)]],
                at_end: true,
            }
            .encode(),
        ),
        (
            "v1_rsp_err",
            Response::Err {
                code: 2,
                message: "no such table 'x'".into(),
            }
            .encode(),
        ),
        ("v1_rsp_bye", Response::Bye.encode()),
        (
            "v2_req_login",
            Request::LoginV2 {
                user: "alice".into(),
                database: "orders".into(),
                options: vec![("lock_timeout".into(), Value::Int(5))],
                protocol: PROTOCOL_V2,
                window: DEFAULT_WINDOW,
            }
            .encode(),
        ),
        (
            "v2_req_exec_batch",
            Request::ExecBatch {
                stmts: vec![
                    "BEGIN TRANSACTION".into(),
                    "UPDATE t SET v = 1".into(),
                    "COMMIT".into(),
                ],
            }
            .encode(),
        ),
        (
            "v2_rsp_login_ack",
            Response::LoginAckV2 {
                session: 12,
                protocol: PROTOCOL_V2,
                window: 8,
            }
            .encode(),
        ),
        (
            "v2_rsp_batch_result",
            Response::BatchResult {
                items: vec![
                    BatchItem::Ok {
                        outcome: Outcome::Done,
                        messages: Vec::new(),
                    },
                    BatchItem::Ok {
                        outcome: Outcome::RowsAffected(3),
                        messages: vec!["3 row(s) affected".into()],
                    },
                    BatchItem::Ok {
                        outcome: Outcome::ResultSet {
                            schema,
                            rows: vec![vec![Value::Int(3), Value::Text("ok".into())]],
                        },
                        messages: Vec::new(),
                    },
                    BatchItem::Err {
                        code: 6,
                        message: "duplicate primary key".into(),
                    },
                ],
            }
            .encode(),
        ),
        (
            "v2_req_repl_hello",
            Request::ReplHello {
                epoch: 3,
                protocol: PROTOCOL_V2,
            }
            .encode(),
        ),
        (
            "v2_req_repl_frames",
            Request::ReplFrames {
                epoch: 3,
                frames: vec![
                    ReplFrame {
                        partition: 0,
                        gsn: 41,
                        record: vec![0xDE, 0xAD, 0xBE, 0xEF],
                    },
                    ReplFrame {
                        partition: 7,
                        gsn: 42,
                        record: Vec::new(),
                    },
                ],
            }
            .encode(),
        ),
        (
            "v2_req_repl_heartbeat",
            Request::ReplFrames {
                epoch: 3,
                frames: Vec::new(),
            }
            .encode(),
        ),
        ("v2_req_promote", Request::Promote { epoch: 4 }.encode()),
        (
            "v2_rsp_repl_hello_ack",
            Response::ReplHelloAck {
                epoch: 3,
                last_gsn: 4096,
            }
            .encode(),
        ),
        (
            "v2_rsp_repl_ack",
            Response::ReplAck { last_gsn: 4097 }.encode(),
        ),
        ("v2_rsp_promoted", Response::Promoted { epoch: 4 }.encode()),
        ("v2_tagged_frame", {
            // A full tagged frame as it appears on the socket: length
            // header, tag prefix, then the message payload.
            let mut buf = Vec::new();
            phoenix_wire::write_tagged_frame(
                &mut buf,
                0x0102_0304_0506_0708,
                &Request::Exec {
                    sql: "SELECT 1".into(),
                }
                .encode(),
            )
            .unwrap();
            buf
        }),
    ]
}

#[test]
fn encodings_match_committed_fixtures() {
    let mut failures = Vec::new();
    for (name, bytes) in golden_set() {
        if let Err(e) = check(name, &bytes) {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn fixtures_decode_back_to_messages() {
    // The committed v1 request fixture must decode on today's code — this is
    // the direction an old client exercises against a new server.
    for (name, bytes) in golden_set() {
        if name.starts_with("v1_req") || name.starts_with("v2_req") {
            Request::decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        } else if name.starts_with("v1_rsp") || name.starts_with("v2_rsp") {
            Response::decode(&bytes).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        }
    }
}
