// The offline build environment has no `proptest` crate available, so these
// property tests are compiled only when the `slow-proptests` feature is
// enabled (which requires supplying a real proptest dependency).
#![cfg(feature = "slow-proptests")]

//! Property tests of the wire protocol: round-trip over generated messages
//! and total decoding over arbitrary bytes (a malicious or corrupt peer must
//! never panic the process).

use proptest::prelude::*;

use phoenix_storage::types::{Column, DataType, Row, Schema, Value};
use phoenix_wire::message::{CursorKind, FetchDir, Outcome, Request, Response};

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>()
            .prop_filter("no NaN", |f| !f.is_nan())
            .prop_map(Value::Float),
        "[ -~]{0,16}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::Date),
    ]
}

fn row() -> impl Strategy<Value = Row> {
    prop::collection::vec(value(), 0..5)
}

fn schema() -> impl Strategy<Value = Schema> {
    prop::collection::vec(
        (
            "[a-z][a-z0-9_]{0,10}",
            prop::sample::select(vec![
                DataType::Int,
                DataType::Float,
                DataType::Text,
                DataType::Bool,
                DataType::Date,
            ]),
            any::<bool>(),
        ),
        0..6,
    )
    .prop_map(|cols| {
        Schema::new(
            cols.into_iter()
                .map(|(name, dtype, nullable)| Column {
                    name,
                    dtype,
                    nullable,
                })
                .collect(),
        )
    })
}

fn cursor_kind() -> impl Strategy<Value = CursorKind> {
    prop::sample::select(vec![
        CursorKind::ForwardOnly,
        CursorKind::Keyset,
        CursorKind::Dynamic,
    ])
}

fn fetch_dir() -> impl Strategy<Value = FetchDir> {
    prop_oneof![
        Just(FetchDir::Next),
        Just(FetchDir::Prior),
        any::<u64>().prop_map(FetchDir::Absolute),
    ]
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (
            "[ -~]{0,12}",
            "[ -~]{0,12}",
            prop::collection::vec(("[a-z]{1,8}", value()), 0..4)
        )
            .prop_map(|(user, database, options)| Request::Login {
                user,
                database,
                options
            }),
        "[ -~]{0,64}".prop_map(|sql| Request::Exec { sql }),
        ("[ -~]{0,64}", cursor_kind()).prop_map(|(sql, kind)| Request::OpenCursor { sql, kind }),
        (any::<u64>(), fetch_dir(), any::<u32>()).prop_map(|(cursor, dir, n)| Request::Fetch {
            cursor,
            dir,
            n
        }),
        any::<u64>().prop_map(|cursor| Request::CloseCursor { cursor }),
        Just(Request::Ping),
        "[ -~]{0,24}".prop_map(|table| Request::Describe { table }),
        Just(Request::Logout),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|session| Response::LoginAck { session }),
        (
            prop_oneof![
                (schema(), prop::collection::vec(row(), 0..6))
                    .prop_map(|(schema, rows)| Outcome::ResultSet { schema, rows }),
                any::<u64>().prop_map(Outcome::RowsAffected),
                Just(Outcome::Done),
            ],
            prop::collection::vec("[ -~]{0,16}".prop_map(String::from), 0..3)
        )
            .prop_map(|(outcome, messages)| Response::Result { outcome, messages }),
        (any::<u64>(), schema(), cursor_kind()).prop_map(|(cursor, schema, granted)| {
            Response::CursorOpened {
                cursor,
                schema,
                granted,
            }
        }),
        (prop::collection::vec(row(), 0..6), any::<bool>())
            .prop_map(|(rows, at_end)| Response::Rows { rows, at_end }),
        Just(Response::Pong),
        (
            schema(),
            prop::collection::vec("[a-z]{1,8}".prop_map(String::from), 0..3)
        )
            .prop_map(|(schema, primary_key)| Response::TableInfo {
                schema,
                primary_key
            }),
        (any::<u16>(), "[ -~]{0,32}").prop_map(|(code, message)| Response::Err { code, message }),
        Just(Response::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn request_roundtrip(req in request()) {
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(rsp in response()) {
        prop_assert_eq!(Response::decode(&rsp.encode()).unwrap(), rsp);
    }

    /// Arbitrary bytes never panic the decoders.
    #[test]
    fn decoders_are_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Truncating a valid message always yields an error, never a panic or a
    /// silent partial decode that round-trips differently.
    #[test]
    fn truncation_detected(rsp in response(), frac in 0.0f64..1.0) {
        let full = rsp.encode();
        let cut = ((full.len() as f64) * frac) as usize;
        if cut < full.len() {
            prop_assert!(Response::decode(&full[..cut]).is_err());
        }
    }
}
