//! End-to-end tests of Phoenix persistent sessions against a real TCP
//! server with crash injection — each test exercises a mechanism from §3 of
//! the paper.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_core::{
    CaptureStrategy, PhoenixConfig, PhoenixConnection, PhoenixCursorKind, RepositionStrategy,
};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-core-test-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn config() -> PhoenixConfig {
    let mut c = PhoenixConfig::default();
    c.recovery.read_timeout = Some(Duration::from_millis(800));
    c.recovery.ping_interval = Duration::from_millis(20);
    c.recovery.max_wait = Duration::from_secs(10);
    c
}

fn start() -> (ServerHarness, PathBuf) {
    let dir = temp_dir();
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    (h, dir)
}

fn connect(h: &ServerHarness) -> PhoenixConnection {
    PhoenixConnection::connect(&Environment::new(), &h.addr(), "app", "test", config()).unwrap()
}

fn seed(pc: &mut PhoenixConnection) {
    pc.execute("CREATE TABLE customer (id INT PRIMARY KEY, name TEXT, nation INT)")
        .unwrap();
    pc.execute("INSERT INTO customer VALUES (1, 'Smith', 10), (2, 'Jones', 10), (3, 'Smith', 20), (4, 'Brown', 30)")
        .unwrap();
}

#[test]
fn transparent_in_absence_of_failures() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    seed(&mut pc);
    let r = pc
        .execute("SELECT name FROM customer WHERE nation = 10 ORDER BY id")
        .unwrap();
    assert_eq!(
        r.rows(),
        &[
            vec![Value::Text("Smith".into())],
            vec![Value::Text("Jones".into())]
        ]
    );
    assert_eq!(pc.stats().materialized_result_sets, 1);
    assert_eq!(pc.stats().recoveries, 0);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn cleanup_drops_phoenix_objects() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    seed(&mut pc);
    pc.execute("SELECT * FROM customer").unwrap();
    pc.execute("SELECT * FROM customer WHERE id = 1").unwrap();
    pc.close();

    // Inspect with a plain driver connection: no phoenix rs_/cap_ leftovers
    // and no status rows.
    let env = Environment::new();
    let mut raw = env.connect(&h.addr(), "inspect", "test").unwrap();
    let r = raw.execute("SELECT COUNT(*) FROM phoenix.status").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(0));
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn query_resubmitted_after_crash_between_requests() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    seed(&mut pc);

    h.crash().unwrap();
    let hh = std::thread::spawn({
        let mut h = h;
        move || {
            std::thread::sleep(Duration::from_millis(300));
            h.restart().unwrap();
            h
        }
    });

    // The very next request hits a dead server; Phoenix must mask it.
    let r = pc.execute("SELECT COUNT(*) FROM customer").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(4));
    assert!(pc.stats().recoveries >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn seamless_delivery_across_crash_mid_fetch() {
    // The paper's recovery experiment (§4 / Figure 2): fetch most of a
    // result set, crash the server, and the next fetch — after recovery —
    // returns the next tuple as if nothing happened.
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE seq (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for chunk in (0..200).collect::<Vec<i64>>().chunks(50) {
        let vals: Vec<String> = chunk.iter().map(|i| format!("({i}, 'row{i}')")).collect();
        pc.execute(&format!("INSERT INTO seq VALUES {}", vals.join(", ")))
            .unwrap();
    }

    let mut stmt = pc.statement();
    stmt.set_fetch_block(16);
    stmt.execute("SELECT id, v FROM seq").unwrap();
    let mut got = Vec::new();
    for _ in 0..150 {
        got.push(stmt.fetch().unwrap().unwrap());
    }
    assert_eq!(stmt.delivered(), 150);

    // Crash and restart in the background while the client keeps fetching.
    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        h.restart().unwrap();
        h
    });

    while let Some(row) = stmt.fetch().unwrap() {
        got.push(row);
    }
    assert_eq!(got.len(), 200);
    // Delivery is seamless: ids are 0..200 in order with no gaps or repeats.
    for (i, row) in got.iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64), "row {i}");
    }
    assert!(pc.stats().recoveries >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dml_applied_exactly_once_despite_crash() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE acc (id INT PRIMARY KEY, bal INT)")
        .unwrap();
    pc.execute("INSERT INTO acc VALUES (1, 100)").unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        h.restart().unwrap();
        h
    });

    // This update hits the dead server: Phoenix recovers, probes the status
    // table (nothing committed), resubmits — exactly once.
    let r = pc
        .execute("UPDATE acc SET bal = bal + 10 WHERE id = 1")
        .unwrap();
    assert_eq!(r.affected(), 1);
    let r = pc.execute("SELECT bal FROM acc").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(110));
    assert!(pc.stats().status_probes >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn application_transaction_replayed_after_crash() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    pc.execute("BEGIN").unwrap();
    pc.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    pc.execute("INSERT INTO t VALUES (2, 20)").unwrap();

    // Crash mid-transaction: the server loses the uncommitted work.
    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        h.restart().unwrap();
        h
    });

    // The application keeps going, oblivious. Phoenix replays the logged
    // transaction before executing the next statement.
    pc.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    pc.execute("COMMIT").unwrap();

    let r = pc.execute("SELECT COUNT(*), SUM(v) FROM t").unwrap();
    assert_eq!(r.rows()[0], vec![Value::Int(3), Value::Int(60)]);
    assert!(pc.stats().replayed_txn_statements >= 2);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn rollback_during_outage_is_honored() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    pc.execute("BEGIN").unwrap();
    pc.execute("INSERT INTO t VALUES (1)").unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    // The crash already rolled the transaction back; ROLLBACK must succeed
    // from the application's perspective.
    pc.execute("ROLLBACK").unwrap();
    let r = pc.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(0));

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn temp_objects_survive_crash_via_redirection() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    seed(&mut pc);
    pc.execute("CREATE TABLE #work (id INT, doubled INT)")
        .unwrap();
    pc.execute("INSERT INTO #work SELECT id, nation * 2 FROM customer")
        .unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        h.restart().unwrap();
        h
    });

    // A real temp table would be gone; the Phoenix stand-in persists.
    let r = pc.execute("SELECT COUNT(*) FROM #work").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(4));

    // And it can still be dropped through its temp name.
    pc.execute("DROP TABLE #work").unwrap();
    let e = pc.execute("SELECT * FROM #work").unwrap_err();
    assert!(!e.is_comm());

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn temp_procedures_are_redirected() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    seed(&mut pc);
    pc.execute("CREATE PROCEDURE #smiths AS SELECT id FROM customer WHERE name = 'Smith'")
        .unwrap();
    let r = pc.execute("EXEC #smiths").unwrap();
    assert_eq!(r.rows().len(), 2);
    pc.execute("DROP PROCEDURE #smiths").unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn keyset_cursor_survives_crash_and_sees_updates() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE orders (okey INT PRIMARY KEY, total FLOAT)")
        .unwrap();
    for i in 1..=20 {
        pc.execute(&format!("INSERT INTO orders VALUES ({i}, {i}.0)"))
            .unwrap();
    }

    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Keyset);
    stmt.set_fetch_block(4);
    stmt.execute("SELECT okey, total FROM orders WHERE okey <= 10")
        .unwrap();
    assert_eq!(stmt.granted_cursor(), Some(PhoenixCursorKind::Keyset));
    let mut rows = Vec::new();
    for _ in 0..5 {
        rows.push(stmt.fetch().unwrap().unwrap());
    }

    // Update a not-yet-fetched row, delete another, then crash.
    {
        let env = Environment::new();
        let mut raw = env.connect(&h.addr(), "x", "test").unwrap();
        raw.execute("UPDATE orders SET total = 777.0 WHERE okey = 7")
            .unwrap();
        raw.execute("DELETE FROM orders WHERE okey = 8").unwrap();
        raw.close();
    }
    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        h.restart().unwrap();
        h
    });

    while let Some(row) = stmt.fetch().unwrap() {
        rows.push(row);
    }
    let keys: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 7, 9, 10]); // 8 deleted
    assert_eq!(rows[6][1], Value::Float(777.0)); // update visible

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dynamic_cursor_sees_inserts_and_survives_crash() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE ev (id INT PRIMARY KEY, kind TEXT)")
        .unwrap();
    for i in [10, 20, 30, 40, 50] {
        pc.execute(&format!("INSERT INTO ev VALUES ({i}, 'a')"))
            .unwrap();
    }

    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Dynamic);
    stmt.execute("SELECT id FROM ev WHERE kind = 'a'").unwrap();
    assert_eq!(stmt.granted_cursor(), Some(PhoenixCursorKind::Dynamic));
    let first = stmt.fetch().unwrap().unwrap();
    assert_eq!(first[0], Value::Int(10));

    // Insert into the not-yet-visited key range, then crash.
    {
        let env = Environment::new();
        let mut raw = env.connect(&h.addr(), "x", "test").unwrap();
        raw.execute("INSERT INTO ev VALUES (25, 'a')").unwrap();
        raw.execute("INSERT INTO ev VALUES (60, 'a')").unwrap(); // beyond captured keys
        raw.close();
    }
    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        h.restart().unwrap();
        h
    });

    let mut keys = vec![10];
    while let Some(row) = stmt.fetch().unwrap() {
        keys.push(row[0].as_i64().unwrap());
    }
    // Dynamic semantics: 25 (inserted into the range) and 60 (inserted past
    // the captured keys) are both visible.
    assert_eq!(keys, vec![10, 20, 25, 30, 40, 50, 60]);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn cursor_downgrade_on_unsupported_shapes() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    seed(&mut pc);
    // Aggregation cannot be keyset.
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Keyset);
    stmt.execute("SELECT COUNT(*) FROM customer").unwrap();
    assert_eq!(stmt.granted_cursor(), Some(PhoenixCursorKind::ForwardOnly));
    let rows = stmt.fetch_all().unwrap();
    assert_eq!(rows[0][0], Value::Int(4));
    assert!(pc.stats().cursor_downgrades >= 1);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn set_options_replayed_on_recovery() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("SET lock_timeout 5000").unwrap();
    pc.execute("SET app_name 'report-runner'").unwrap();
    pc.execute("CREATE TABLE t (v INT)").unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    // Execution succeeding implies login + option replay worked.
    pc.execute("INSERT INTO t VALUES (1)").unwrap();
    assert!(pc.stats().recoveries >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn gives_up_when_server_stays_down() {
    let (mut h, dir) = start();
    let mut pc = PhoenixConnection::connect(&Environment::new(), &h.addr(), "app", "t", {
        let mut c = config();
        c.recovery.max_wait = Duration::from_millis(400);
        c
    })
    .unwrap();
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    h.crash().unwrap();
    // No restart: Phoenix must eventually pass the comm error to the app.
    let e = pc.execute("SELECT * FROM t").unwrap_err();
    assert!(e.is_comm());
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn chaos_exactly_once_under_repeated_crashes() {
    // Invariant test: N wrapped DML inserts, with the server crashing and
    // restarting underneath, must each apply exactly once.
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE ledger (id INT PRIMARY KEY, v INT)")
        .unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let chaos_stop = std::sync::Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        let mut h = h;
        let mut crashes = 0;
        while !chaos_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(70));
            if chaos_stop.load(Ordering::SeqCst) {
                break;
            }
            h.crash().unwrap();
            crashes += 1;
            std::thread::sleep(Duration::from_millis(60));
            h.restart().unwrap();
        }
        (h, crashes)
    });

    const N: i64 = 40;
    for i in 0..N {
        let r = pc
            .execute(&format!("INSERT INTO ledger VALUES ({i}, {i})"))
            .unwrap();
        assert_eq!(r.affected(), 1, "insert {i}");
    }
    stop.store(true, Ordering::SeqCst);
    let (h, crashes) = chaos.join().unwrap();

    let r = pc.execute("SELECT COUNT(*), SUM(v) FROM ledger").unwrap();
    assert_eq!(
        r.rows()[0][0],
        Value::Int(N),
        "exactly-once violated (crashes: {crashes})"
    );
    assert_eq!(r.rows()[0][1], Value::Int((N - 1) * N / 2));

    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn capture_strategies_agree() {
    for strategy in [
        CaptureStrategy::ServerProc,
        CaptureStrategy::ServerInsert,
        CaptureStrategy::ClientRoundTrip,
    ] {
        let (h, dir) = start();
        let mut pc = PhoenixConnection::connect(
            &Environment::new(),
            &h.addr(),
            "app",
            "t",
            config().with_capture(strategy),
        )
        .unwrap();
        seed(&mut pc);
        let r = pc
            .execute("SELECT id, name FROM customer WHERE nation = 10 ORDER BY id")
            .unwrap();
        assert_eq!(r.rows().len(), 2, "{strategy:?}");
        assert_eq!(r.rows()[0][1], Value::Text("Smith".into()));
        pc.close();
        drop(h);
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn reposition_strategies_agree_across_crash() {
    for strategy in [
        RepositionStrategy::ServerSide,
        RepositionStrategy::ClientScan,
    ] {
        let (mut h, dir) = start();
        let mut pc = PhoenixConnection::connect(
            &Environment::new(),
            &h.addr(),
            "app",
            "t",
            config().with_reposition(strategy),
        )
        .unwrap();
        pc.execute("CREATE TABLE s (id INT PRIMARY KEY)").unwrap();
        let vals: Vec<String> = (0..100).map(|i| format!("({i})")).collect();
        pc.execute(&format!("INSERT INTO s VALUES {}", vals.join(", ")))
            .unwrap();

        let mut stmt = pc.statement();
        stmt.set_fetch_block(8);
        stmt.execute("SELECT id FROM s").unwrap();
        for _ in 0..60 {
            stmt.fetch().unwrap().unwrap();
        }
        h.crash().unwrap();
        let hh = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            h.restart().unwrap();
            h
        });
        let mut rest = Vec::new();
        while let Some(r) = stmt.fetch().unwrap() {
            rest.push(r[0].as_i64().unwrap());
        }
        assert_eq!(rest, (60..100).collect::<Vec<i64>>(), "{strategy:?}");
        let h = hh.join().unwrap();
        pc.close();
        drop(h);
        std::fs::remove_dir_all(dir).unwrap();
    }
}

#[test]
fn messages_preserved_with_dml_outcome() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    let r = pc.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    assert_eq!(r.affected(), 3);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}
