//! Feature-focused Phoenix tests: command batches, stored procedures,
//! message preservation, passthrough mode, and interception edge cases.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection, PhoenixCursorKind};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;
use phoenix_wire::message::Outcome;

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-feat-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn config() -> PhoenixConfig {
    let mut c = PhoenixConfig::default();
    c.recovery.read_timeout = Some(Duration::from_millis(800));
    c.recovery.ping_interval = Duration::from_millis(20);
    c.recovery.max_wait = Duration::from_secs(10);
    c
}

fn start() -> (ServerHarness, PathBuf) {
    let dir = temp_dir();
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    (h, dir)
}

fn connect(h: &ServerHarness) -> PhoenixConnection {
    PhoenixConnection::connect(&Environment::new(), &h.addr(), "app", "test", config()).unwrap()
}

#[test]
fn command_batch_runs_each_statement_through_the_pipeline() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    let results = pc
        .execute_batch(
            "CREATE TABLE b (id INT PRIMARY KEY, v INT); \
             INSERT INTO b VALUES (1, 10), (2, 20); \
             SELECT SUM(v) FROM b; \
             UPDATE b SET v = v + 1 WHERE id = 1",
        )
        .unwrap();
    assert_eq!(results.len(), 4);
    assert_eq!(results[1].affected(), 2);
    assert_eq!(results[2].rows()[0][0], Value::Int(30));
    assert_eq!(results[3].affected(), 1);
    // The SELECT inside the batch was materialized; the DMLs were wrapped.
    assert_eq!(pc.stats().materialized_result_sets, 1);
    assert_eq!(pc.stats().wrapped_dml, 2);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn command_batch_survives_crash_between_statements() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE b (id INT PRIMARY KEY)").unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    let results = pc
        .execute_batch("INSERT INTO b VALUES (1); INSERT INTO b VALUES (2); SELECT COUNT(*) FROM b")
        .unwrap();
    assert_eq!(results[2].rows()[0][0], Value::Int(2));
    assert!(pc.stats().recoveries >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn batch_stops_at_first_error() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE b (id INT PRIMARY KEY)").unwrap();
    let err = pc
        .execute_batch(
            "INSERT INTO b VALUES (1); INSERT INTO missing VALUES (2); INSERT INTO b VALUES (3)",
        )
        .unwrap_err();
    assert!(!err.is_comm());
    // Only the first statement ran.
    let r = pc.execute("SELECT COUNT(*) FROM b").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn stored_procedures_survive_crash_and_keep_working() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE audit (id INT PRIMARY KEY, what TEXT)")
        .unwrap();
    pc.execute("CREATE PROCEDURE log_it (@id INT, @w TEXT) AS INSERT INTO audit VALUES (@id, @w)")
        .unwrap();
    pc.execute("EXEC log_it (1, 'before')").unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    // Durable procedures survive the crash; the EXEC is resubmitted
    // transparently after recovery.
    pc.execute("EXEC log_it (2, 'after')").unwrap();
    let r = pc.execute("SELECT COUNT(*) FROM audit").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(2));

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn print_messages_flow_through_phoenix() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    let r = pc.execute("PRINT 'phase ' + '1'").unwrap();
    assert_eq!(r.messages, vec!["phase 1"]);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn passthrough_mode_behaves_like_native() {
    let (mut h, dir) = start();
    let mut pc = PhoenixConnection::connect(
        &Environment::new().with_read_timeout(Some(Duration::from_millis(500))),
        &h.addr(),
        "app",
        "test",
        PhoenixConfig::passthrough(),
    )
    .unwrap();
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    pc.execute("INSERT INTO t VALUES (1)").unwrap();
    // No phoenix objects are created in passthrough mode.
    assert_eq!(pc.stats().materialized_result_sets, 0);
    assert_eq!(pc.stats().wrapped_dml, 0);
    // And a crash is NOT masked.
    h.crash().unwrap();
    let e = pc.execute("SELECT 1").unwrap_err();
    assert!(e.is_comm());
    h.restart().unwrap();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn select_inside_transaction_is_still_recoverable() {
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    pc.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();

    pc.execute("BEGIN").unwrap();
    pc.execute("UPDATE t SET v = v + 1 WHERE id = 1").unwrap();
    // A query mid-transaction (sees the uncommitted update — our engine
    // reads the live image).
    let r = pc.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(11));

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    // The transaction replays; the update's effect is still visible…
    let r = pc.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(11));
    pc.execute("COMMIT").unwrap();
    // …and commits.
    let r = pc.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(11));

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn schema_presented_to_app_keeps_original_names() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    pc.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // The materialized table sanitizes `COUNT(*)` to a storable name, but
    // the application must see the original result-set metadata.
    let r = pc
        .execute("SELECT COUNT(*), SUM(v) AS total FROM t")
        .unwrap();
    match &r.outcome {
        Outcome::ResultSet { schema, rows } => {
            assert_eq!(schema.columns[0].name, "COUNT(*)");
            assert_eq!(schema.columns[1].name, "total");
            assert_eq!(rows[0], vec![Value::Int(2), Value::Int(3)]);
        }
        other => panic!("{other:?}"),
    }
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn unparseable_requests_are_forwarded_opaquely() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    // Phoenix can't classify this; the server reports the parse error.
    let e = pc.execute("FROBNICATE THE DATABASE").unwrap_err();
    assert_eq!(e.server_code(), Some(phoenix_driver::error::codes::PARSE));
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn statement_after_statement_reuses_pipeline_objects_independently() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 0..5 {
        pc.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    // Several overlapping statements on one connection: each materializes
    // into its own phoenix table; results never bleed across.
    let mut s1 = pc.statement();
    s1.execute("SELECT id FROM t WHERE id < 3").unwrap();
    let r1 = s1.fetch_all().unwrap();
    let mut s2 = pc.statement();
    s2.execute("SELECT id FROM t WHERE id >= 3").unwrap();
    let r2 = s2.fetch_all().unwrap();
    assert_eq!(r1.len(), 3);
    assert_eq!(r2.len(), 2);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dynamic_cursor_with_composite_key_downgrades_to_keyset() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE li (a INT NOT NULL, b INT NOT NULL, v INT, PRIMARY KEY (a, b))")
        .unwrap();
    pc.execute("INSERT INTO li VALUES (1, 1, 10), (1, 2, 20), (2, 1, 30)")
        .unwrap();
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Dynamic);
    stmt.execute("SELECT a, b, v FROM li").unwrap();
    assert_eq!(stmt.granted_cursor(), Some(PhoenixCursorKind::Keyset));
    assert_eq!(stmt.fetch_all().unwrap().len(), 3);
    assert!(pc.stats().cursor_downgrades >= 1);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn keyset_cursor_over_temp_object_redirection() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE src (id INT PRIMARY KEY, v INT)")
        .unwrap();
    pc.execute("INSERT INTO src VALUES (1, 1), (2, 2), (3, 3)")
        .unwrap();
    pc.execute("CREATE TABLE #snap (id INT PRIMARY KEY, v INT)")
        .unwrap();
    pc.execute("INSERT INTO #snap SELECT id, v FROM src")
        .unwrap();
    // Cursor over a temp table: the redirection makes it a persistent
    // phoenix table, which even has a primary key — keyset works.
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Keyset);
    stmt.execute("SELECT id, v FROM #snap").unwrap();
    assert_eq!(stmt.granted_cursor(), Some(PhoenixCursorKind::Keyset));
    assert_eq!(stmt.fetch_all().unwrap().len(), 3);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn double_crash_during_recovery_is_survived() {
    // A second crash landing while Phoenix is mid-recovery must not surface
    // to the application: the recovery sequence retries as a unit.
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    pc.execute("INSERT INTO t VALUES (1)").unwrap();

    // Crash; restart briefly; crash again almost immediately (so the client
    // is very likely inside recovery when the second crash hits); then come
    // back for good.
    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        h.restart().unwrap();
        std::thread::sleep(Duration::from_millis(15));
        h.crash().unwrap();
        std::thread::sleep(Duration::from_millis(120));
        h.restart().unwrap();
        h
    });

    let r = pc.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    assert!(pc.stats().recoveries >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn hung_server_detected_by_timeout_and_masked() {
    // Paper §2: "ODBC functions may simply hang when the server fails. The
    // user does not know whether the server is busy, the connection slow, or
    // if a database failure has occurred." Phoenix's detector treats a read
    // timeout like any other communication failure: ping, decide, recover.
    // Here the server never crashes — it just stops responding for a while —
    // and the application still gets its answer.
    let (h, dir) = start();
    let mut pc = PhoenixConnection::connect(&Environment::new(), &h.addr(), "app", "test", {
        let mut c = config();
        c.recovery.read_timeout = Some(Duration::from_millis(250));
        // Generous give-up window: under a fully parallel `cargo test
        // --workspace` the machine is saturated with other crash storms and
        // wall-clock margins stretch; this test is about detection and
        // masking, not the deadline.
        c.recovery.max_wait = Duration::from_secs(120);
        c
    })
    .unwrap();
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    pc.execute("INSERT INTO t VALUES (1, 10)").unwrap();

    // Stall the engine well past the client's read timeout.
    h.stall(Duration::from_millis(1200));

    // This update times out mid-flight, triggers recovery (which itself
    // stalls until the server wakes), probes the status table, and applies
    // the update exactly once.
    let r = pc.execute("UPDATE t SET v = v + 5 WHERE id = 1").unwrap();
    assert_eq!(r.affected(), 1);
    let r = pc.execute("SELECT v FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(15), "exactly-once under timeout");
    assert!(pc.stats().recoveries >= 1);

    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn exec_side_effects_exactly_once_under_crashes() {
    // A procedure that inserts must apply exactly once even when the server
    // crashes around the call — EXEC gets the same status-record wrapping
    // as bare DML.
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE counters (id INT PRIMARY KEY, v INT)")
        .unwrap();
    pc.execute("INSERT INTO counters VALUES (1, 0)").unwrap();
    pc.execute("CREATE PROCEDURE bump AS UPDATE counters SET v = v + 1 WHERE id = 1")
        .unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let chaos_stop = std::sync::Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        let mut h = h;
        while !chaos_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(60));
            if chaos_stop.load(Ordering::SeqCst) {
                break;
            }
            h.crash().unwrap();
            std::thread::sleep(Duration::from_millis(50));
            h.restart().unwrap();
        }
        h
    });

    const CALLS: i64 = 30;
    for _ in 0..CALLS {
        pc.execute("EXEC bump").unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let h = chaos.join().unwrap();

    let r = pc.execute("SELECT v FROM counters").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(CALLS), "EXEC not exactly-once");
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn exec_with_internal_transaction_falls_back_to_forwarding() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    pc.execute("CREATE PROC txn_proc AS BEGIN BEGIN TRAN; INSERT INTO t VALUES (1); COMMIT END")
        .unwrap();
    // The wrap attempt hits the nested-BEGIN error and falls back; the call
    // still succeeds.
    let r = pc.execute("EXEC txn_proc").unwrap();
    let _ = r;
    let r = pc.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn exec_returning_result_set_still_delivers_rows() {
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    pc.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    pc.execute("CREATE PROC all_rows AS SELECT v FROM t ORDER BY v")
        .unwrap();
    let r = pc.execute("EXEC all_rows").unwrap();
    assert_eq!(r.rows().len(), 3);
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn scrollable_persistent_result_set_across_crash() {
    use phoenix_core::PhoenixFetch;
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE s (id INT PRIMARY KEY)").unwrap();
    let vals: Vec<String> = (0..50).map(|i| format!("({i})")).collect();
    pc.execute(&format!("INSERT INTO s VALUES {}", vals.join(", ")))
        .unwrap();

    let mut stmt = pc.statement();
    stmt.execute("SELECT id FROM s").unwrap();

    let first = stmt.fetch_scroll(PhoenixFetch::Next, 5).unwrap();
    assert_eq!(
        first
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4]
    );

    let back = stmt.fetch_scroll(PhoenixFetch::Prior, 3).unwrap();
    assert_eq!(
        back.iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![2, 3, 4]
    );

    // Crash the server; the next scroll waits out recovery and still lands
    // on the right window.
    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    let abs = stmt.fetch_scroll(PhoenixFetch::Absolute(40), 20).unwrap();
    assert_eq!(abs.len(), 10);
    assert_eq!(abs[0][0], Value::Int(40));
    assert_eq!(abs[9][0], Value::Int(49));

    // Interleave with plain forward fetch: continues after the window.
    assert!(stmt.fetch().unwrap().is_none());

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn scrollable_keyset_absolute() {
    use phoenix_core::PhoenixFetch;
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE s (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..20 {
        pc.execute(&format!("INSERT INTO s VALUES ({i}, 'r{i}')"))
            .unwrap();
    }
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Keyset);
    stmt.execute("SELECT id, v FROM s").unwrap();
    let w = stmt.fetch_scroll(PhoenixFetch::Absolute(15), 10).unwrap();
    assert_eq!(w.len(), 5);
    assert_eq!(w[0][0], Value::Int(15));
    // Keyset semantics persist: an update is visible on a re-scroll.
    pc.execute("UPDATE s SET v = 'CHANGED' WHERE id = 16")
        .unwrap();
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Keyset);
    stmt.execute("SELECT id, v FROM s").unwrap();
    let w = stmt.fetch_scroll(PhoenixFetch::Absolute(16), 1).unwrap();
    assert_eq!(w[0][1], Value::Text("CHANGED".into()));
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dynamic_cursor_rejects_scroll() {
    use phoenix_core::PhoenixFetch;
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE s (id INT PRIMARY KEY)").unwrap();
    pc.execute("INSERT INTO s VALUES (1), (2)").unwrap();
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Dynamic);
    stmt.execute("SELECT id FROM s").unwrap();
    let e = stmt.fetch_scroll(PhoenixFetch::Absolute(1), 1).unwrap_err();
    assert_eq!(e.server_code(), Some(phoenix_driver::error::codes::CURSOR));
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn eager_cleanup_bounds_server_growth() {
    let (h, dir) = start();
    let mut pc = PhoenixConnection::connect(
        &Environment::new(),
        &h.addr(),
        "app",
        "test",
        config().with_eager_cleanup(true),
    )
    .unwrap();
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    pc.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    // Many queries on a long-lived session…
    for _ in 0..20 {
        let r = pc.execute("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows().len(), 3);
    }
    for _ in 0..5 {
        let mut stmt = pc.statement();
        stmt.execute("SELECT id FROM t").unwrap();
        stmt.fetch_all().unwrap();
        stmt.close();
    }

    // …leave no lingering result tables: inspect the server directly.
    let engine_tables: Vec<String> = h.with_engine(|e| e.snapshot().table_names()).unwrap();
    let rs_tables: Vec<&String> = engine_tables
        .iter()
        .filter(|n| n.starts_with("phoenix.rs_"))
        .collect();
    assert!(
        rs_tables.is_empty(),
        "eager cleanup left result tables behind: {rs_tables:?}"
    );

    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn eager_cleanup_does_not_break_recovery() {
    // Dropping consumed tables must not make phase-2 verification think
    // session state was lost after a crash.
    let (mut h, dir) = start();
    let mut pc = PhoenixConnection::connect(
        &Environment::new(),
        &h.addr(),
        "app",
        "test",
        config().with_eager_cleanup(true),
    )
    .unwrap();
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    pc.execute("INSERT INTO t VALUES (1)").unwrap();
    pc.execute("SELECT * FROM t").unwrap(); // materialized + eagerly dropped

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    let r = pc.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));
    assert!(pc.stats().recoveries >= 1);

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dropped_temp_object_does_not_fail_recovery_verification() {
    // Regression: an application-issued `DROP TABLE #x` removes the
    // persistent stand-in; a later crash must not make phase-2 verification
    // demand the (legitimately gone) table.
    let (mut h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE base (v INT)").unwrap();
    pc.execute("INSERT INTO base VALUES (7)").unwrap();
    pc.execute("CREATE TABLE #stage (v INT)").unwrap();
    pc.execute("INSERT INTO #stage SELECT v FROM base").unwrap();
    pc.execute("DROP TABLE #stage").unwrap();

    h.crash().unwrap();
    let hh = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        h.restart().unwrap();
        h
    });

    let r = pc.execute("SELECT v FROM base").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(7));
    // And re-creating a temp with the same name works (fresh stand-in).
    pc.execute("CREATE TABLE #stage (v INT)").unwrap();
    pc.execute("INSERT INTO #stage VALUES (1)").unwrap();
    let r = pc.execute("SELECT COUNT(*) FROM #stage").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(1));

    let h = hh.join().unwrap();
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn scrollable_keyset_prior() {
    use phoenix_core::PhoenixFetch;
    let (h, dir) = start();
    let mut pc = connect(&h);
    pc.execute("CREATE TABLE s (id INT PRIMARY KEY)").unwrap();
    for i in 0..10 {
        pc.execute(&format!("INSERT INTO s VALUES ({i})")).unwrap();
    }
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::Keyset);
    stmt.execute("SELECT id FROM s").unwrap();
    let fwd = stmt.fetch_scroll(PhoenixFetch::Next, 6).unwrap();
    assert_eq!(fwd.last().unwrap()[0], Value::Int(5));
    let back = stmt.fetch_scroll(PhoenixFetch::Prior, 3).unwrap();
    assert_eq!(
        back.iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![3, 4, 5]
    );
    // Position stays where the Prior window started: Next resumes at 3.
    let next = stmt.fetch_scroll(PhoenixFetch::Next, 2).unwrap();
    assert_eq!(
        next.iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![3, 4]
    );
    pc.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn dml_gives_up_when_server_stays_down() {
    // The give-up policy applies uniformly: a wrapped DML against a server
    // that never returns eventually surfaces the communication error.
    let (mut h, dir) = start();
    let mut pc = PhoenixConnection::connect(&Environment::new(), &h.addr(), "app", "t", {
        let mut c = config();
        c.recovery.max_wait = Duration::from_millis(400);
        c
    })
    .unwrap();
    pc.execute("CREATE TABLE t (v INT)").unwrap();
    h.crash().unwrap();
    let e = pc.execute("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(e.is_comm());
    // After the server comes back, a NEW phoenix session works and the
    // failed insert was not half-applied.
    h.restart().unwrap();
    let mut pc2 = connect(&h);
    let r = pc2.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(0));
    pc2.close();
    drop(h);
    std::fs::remove_dir_all(dir).unwrap();
}
