//! Generation of Phoenix object names.
//!
//! Everything Phoenix creates on the server lives in the `phoenix` namespace
//! (the paper's "special Phoenix database") and is tagged with a
//! process-unique session tag so that concurrent Phoenix sessions never
//! collide and cleanup can be exact.

use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_sql::ast::ObjectName;

/// The namespace Phoenix owns on the server.
pub const PHOENIX_NS: &str = "phoenix";

/// The shared status table recording DML outcomes (paper: the table holding
/// "testable state" and reply buffers).
pub const STATUS_TABLE: &str = "phoenix.status";

static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// A process-unique session tag: `pid` + a counter, so names are unique
/// across concurrent sessions of this process and across processes on the
/// same machine.
pub fn fresh_session_tag() -> String {
    let n = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
    format!("{}_{n}", std::process::id())
}

/// Per-session generator of Phoenix object names.
#[derive(Debug, Clone)]
pub struct Namer {
    tag: String,
    next: u64,
}

impl Namer {
    /// A namer for the given session tag.
    pub fn new(tag: String) -> Namer {
        Namer { tag, next: 1 }
    }

    /// The session tag embedded in every generated name.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    fn next_id(&mut self) -> u64 {
        let n = self.next;
        self.next += 1;
        n
    }

    /// Persistent result-set table: `phoenix.rs_<tag>_<n>`.
    pub fn result_table(&mut self) -> ObjectName {
        let n = self.next_id();
        ObjectName::qualified(PHOENIX_NS, format!("rs_{}_{n}", self.tag))
    }

    /// Persistent key table for keyset/dynamic cursors: `phoenix.ks_…`.
    pub fn key_table(&mut self) -> ObjectName {
        let n = self.next_id();
        ObjectName::qualified(PHOENIX_NS, format!("ks_{}_{n}", self.tag))
    }

    /// Capture procedure: `phoenix.cap_…`.
    pub fn capture_proc(&mut self) -> ObjectName {
        let n = self.next_id();
        ObjectName::qualified(PHOENIX_NS, format!("cap_{}_{n}", self.tag))
    }

    /// Persistent stand-in for a session temp object `#name`.
    pub fn temp_stand_in(&mut self, temp: &ObjectName) -> ObjectName {
        let n = self.next_id();
        let bare = temp.name.trim_start_matches('#');
        ObjectName::qualified(PHOENIX_NS, format!("tmp_{}_{n}_{bare}", self.tag))
    }

    /// The *genuine* session temp table used as the liveness proxy. This one
    /// must stay volatile — its absence after reconnect proves the old
    /// session is gone.
    pub fn alive_marker(&self) -> ObjectName {
        ObjectName::bare(format!("#phx_alive_{}", self.tag))
    }

    /// Request tag for the status table: a per-session counter. Together
    /// with the session tag it forms the `(session, tag)` primary key — the
    /// same numeric tag a pipelined submission carries in its v2 frame.
    pub fn request_tag(&mut self) -> u64 {
        self.next_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique() {
        let a = fresh_session_tag();
        let b = fresh_session_tag();
        assert_ne!(a, b);
    }

    #[test]
    fn names_are_namespaced_and_distinct() {
        let mut n = Namer::new("7_1".into());
        let rs = n.result_table();
        let ks = n.key_table();
        let cap = n.capture_proc();
        assert_eq!(rs.namespace.as_deref(), Some(PHOENIX_NS));
        assert_ne!(rs.name, ks.name);
        assert!(cap.name.starts_with("cap_"));
        let t = n.temp_stand_in(&ObjectName::bare("#work"));
        assert!(t.name.contains("work"));
        assert!(!t.is_temp());
    }

    #[test]
    fn alive_marker_is_a_real_temp_table() {
        let n = Namer::new("9_9".into());
        assert!(n.alive_marker().is_temp());
    }

    #[test]
    fn request_tags_progress() {
        let mut n = Namer::new("x".into());
        assert_ne!(n.request_tag(), n.request_tag());
    }
}
