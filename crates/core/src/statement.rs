//! [`PhoenixStatement`] — fetch-wise delivery of persistent result sets and
//! the persistent keyset/dynamic cursors of paper §3 ("Cursors").
//!
//! * **Forward-only** (default result set): the query is materialized into a
//!   persistent table; Phoenix delivers from that table through a server
//!   cursor, remembering the delivery position client-side. After a crash
//!   it re-opens delivery and re-positions — server-side (`OFFSET`, no
//!   tuples shipped) or by client scan-and-discard, per configuration.
//! * **Keyset**: only the result's *primary keys* are materialized in a
//!   persistent key table; each fetch reads the next key(s) and SELECTs the
//!   current row by key. Deleted rows are skipped, updated rows show fresh
//!   data, and the cursor — unlike a native one — survives a crash.
//! * **Dynamic**: the same key table paces the cursor, but each fetch
//!   SELECTs a key *range* `(last delivered, next key]`, so rows inserted
//!   into the range appear — and again the cursor persists across failures.
//!
//! A cursor request the query shape can't support (no primary key, computed
//! projection, aggregation, multi-table) is downgraded, exactly as native
//! ODBC drivers downgrade cursor types.

use phoenix_driver::DriverError;
use phoenix_sql::ast::{Expr, ObjectName, SelectItem, SelectStmt, Statement};
use phoenix_sql::display::render_expr;
use phoenix_sql::parser::parse_statement;
use phoenix_sql::rewrite::with_projections;
use phoenix_storage::types::{Row, Schema, Value};
use phoenix_wire::message::{CursorKind as WireCursor, FetchDir};

use crate::config::RepositionStrategy;
use crate::connection::PhoenixConnection;
use crate::materialize::value_literal;
use crate::naming::STATUS_TABLE;
use crate::Result;

/// Fetch orientation for [`PhoenixStatement::fetch_scroll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhoenixFetch {
    /// The next `n` rows from the current position.
    Next,
    /// The `n` rows before the current position (position moves back).
    Prior,
    /// Rows starting at the 0-based index.
    Absolute(u64),
}

/// Cursor kinds the application can request on a Phoenix statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhoenixCursorKind {
    /// Persistent result table, forward delivery (default result set).
    ForwardOnly,
    /// Persistent key table; rows re-read by key.
    Keyset,
    /// Persistent key table; key-range SELECTs per fetch.
    Dynamic,
}

enum Delivery {
    /// Forward-only delivery from a persistent result table.
    Persistent {
        table: ObjectName,
        schema: Schema,
        /// Rows already handed to the application.
        delivered: u64,
        /// Open driver cursor on the mapped connection (`None` right after
        /// a recovery — re-opened lazily with repositioning).
        cursor: Option<u64>,
        buf: Vec<Row>,
        buf_pos: usize,
        at_end: bool,
    },
    /// Keyset cursor over a persistent key table.
    Keyset {
        key_table: ObjectName,
        base: ObjectName,
        key_cols: Vec<String>,
        proj_cols: Vec<String>,
        schema: Schema,
        /// Keys consumed so far (client-side position).
        pos: u64,
        key_buf: Vec<Row>,
        key_buf_pos: usize,
        keys_done: bool,
    },
    /// Dynamic cursor: key table for pacing + range SELECTs.
    Dynamic {
        key_table: ObjectName,
        base: ObjectName,
        key_col: String,
        proj_cols: Vec<String>,
        schema: Schema,
        pred_sql: Option<String>,
        /// Key-table entries consumed (pacing).
        pos: u64,
        /// Key of the last row delivered to the application.
        last_key: Option<Value>,
        buf: Vec<Row>,
        buf_pos: usize,
        done: bool,
    },
}

/// A Phoenix statement handle.
pub struct PhoenixStatement<'c> {
    pc: &'c mut PhoenixConnection,
    kind: PhoenixCursorKind,
    fetch_block: usize,
    granted: Option<PhoenixCursorKind>,
    state: Option<Delivery>,
    /// Server objects this statement's execution created (result/key table,
    /// capture procedure) — dropped eagerly on re-execute/close when
    /// `eager_cleanup` is configured.
    owned: Vec<phoenix_sql::ast::ObjectName>,
}

impl<'c> PhoenixStatement<'c> {
    pub(crate) fn new(pc: &'c mut PhoenixConnection) -> PhoenixStatement<'c> {
        let fetch_block = pc.config.fetch_block;
        PhoenixStatement {
            pc,
            kind: PhoenixCursorKind::ForwardOnly,
            fetch_block,
            granted: None,
            state: None,
            owned: Vec::new(),
        }
    }

    /// Release this statement's server-side objects now (no-op unless
    /// `eager_cleanup` is configured; otherwise everything is swept at
    /// session termination, as in the paper).
    pub fn close(&mut self) {
        self.state = None;
        self.granted = None;
        if self.pc.config.eager_cleanup {
            for name in std::mem::take(&mut self.owned) {
                // Tables and procedures are disjoint name sets; try both.
                self.pc.drop_phoenix_table(&name);
                self.pc.drop_phoenix_proc(&name);
            }
        } else {
            self.owned.clear();
        }
    }

    /// Set the requested cursor type (before `execute`).
    pub fn set_cursor_type(&mut self, kind: PhoenixCursorKind) -> &mut Self {
        self.kind = kind;
        self
    }

    /// Rows per delivery block (min 1).
    pub fn set_fetch_block(&mut self, n: usize) -> &mut Self {
        self.fetch_block = n.max(1);
        self
    }

    /// The cursor kind actually granted after `execute` (downgrades happen
    /// exactly where a native driver would downgrade).
    pub fn granted_cursor(&self) -> Option<PhoenixCursorKind> {
        self.granted
    }

    /// Result schema of the open statement.
    pub fn schema(&self) -> Option<&Schema> {
        match &self.state {
            Some(Delivery::Persistent { schema, .. })
            | Some(Delivery::Keyset { schema, .. })
            | Some(Delivery::Dynamic { schema, .. }) => Some(schema),
            None => None,
        }
    }

    /// Rows delivered so far (the client-side position Phoenix re-syncs
    /// from after a crash).
    pub fn delivered(&self) -> u64 {
        match &self.state {
            Some(Delivery::Persistent { delivered, .. }) => *delivered,
            Some(Delivery::Keyset { pos, .. }) => *pos,
            Some(Delivery::Dynamic { pos, .. }) => *pos,
            None => 0,
        }
    }

    /// Execute a SELECT under the configured cursor type.
    pub fn execute(&mut self, sql: &str) -> Result<()> {
        self.close();
        let select = match parse_statement(sql) {
            Ok(Statement::Select(s)) => s,
            Ok(_) => {
                return Err(DriverError::Protocol(
                    "PhoenixStatement::execute takes a SELECT; use PhoenixConnection::execute for other statements".into(),
                ))
            }
            Err(e) => {
                return Err(DriverError::Sql {
                    code: phoenix_driver::error::codes::PARSE,
                    message: e.to_string(),
                })
            }
        };
        // Temp-object references go through the same redirection as the
        // connection-level pipeline.
        let select = match self.pc.redirect_temps(&Statement::Select(select)) {
            Statement::Select(s) => s,
            _ => unreachable!("redirect preserves statement kind"),
        };

        match self.kind {
            PhoenixCursorKind::ForwardOnly => self.open_persistent(&select),
            PhoenixCursorKind::Keyset | PhoenixCursorKind::Dynamic => {
                match self.cursor_plan(&select)? {
                    Some(plan) => {
                        if self.kind == PhoenixCursorKind::Keyset {
                            self.open_keyset(&select, plan)
                        } else {
                            self.open_dynamic(&select, plan)
                        }
                    }
                    None => {
                        self.pc.stats.cursor_downgrades += 1;
                        self.open_persistent(&select)
                    }
                }
            }
        }
    }

    /// Fetch the next row, or `None` at the end of the result set. A server
    /// crash at any point during delivery is masked: the fetch simply takes
    /// longer while Phoenix recovers and re-positions.
    pub fn fetch(&mut self) -> Result<Option<Row>> {
        match self.state.as_ref() {
            None => Err(DriverError::Protocol("no open result set".into())),
            Some(Delivery::Persistent { .. }) => self.fetch_persistent(),
            Some(Delivery::Keyset { .. }) => self.fetch_keyset(),
            Some(Delivery::Dynamic { .. }) => self.fetch_dynamic(),
        }
    }

    /// Scrollable fetch over the persistent result (forward-only and keyset
    /// deliveries; dynamic cursors have no stable numbering, as in ODBC).
    ///
    /// Scrolling reads the materialized table directly with windowed
    /// `LIMIT/OFFSET` queries, so it is stateless on the server and
    /// trivially crash-proof: a scroll issued right after a server crash
    /// simply waits out the recovery like any other request.
    pub fn fetch_scroll(&mut self, dir: PhoenixFetch, n: usize) -> Result<Vec<Row>> {
        match self.state.as_ref() {
            None => Err(DriverError::Protocol("no open result set".into())),
            Some(Delivery::Persistent { .. }) => self.scroll_persistent(dir, n),
            Some(Delivery::Keyset { .. }) => self.scroll_keyset(dir, n),
            Some(Delivery::Dynamic { .. }) => Err(DriverError::Sql {
                code: phoenix_driver::error::codes::CURSOR,
                message: "dynamic cursors do not support scrolling".into(),
            }),
        }
    }

    fn scroll_persistent(&mut self, dir: PhoenixFetch, n: usize) -> Result<Vec<Row>> {
        let (table, delivered) = match self.state.as_ref() {
            Some(Delivery::Persistent {
                table, delivered, ..
            }) => (table.clone(), *delivered),
            _ => unreachable!(),
        };
        let start = match dir {
            PhoenixFetch::Next => delivered,
            PhoenixFetch::Prior => delivered.saturating_sub(n as u64),
            PhoenixFetch::Absolute(k) => k,
        };
        let r = self
            .pc
            .run_mapped_retry(&format!("SELECT * FROM {table} LIMIT {n} OFFSET {start}"))?;
        let rows = r.rows().to_vec();
        // Scrolling repositions the statement and invalidates the streaming
        // cursor/read-ahead buffer.
        if let Some(Delivery::Persistent {
            delivered,
            cursor,
            buf,
            buf_pos,
            at_end,
            ..
        }) = self.state.as_mut()
        {
            *delivered = match dir {
                PhoenixFetch::Prior => start,
                _ => start + rows.len() as u64,
            };
            if let Some(cid) = cursor.take() {
                let _ = self.pc.mapped.close_cursor_raw(cid);
            }
            buf.clear();
            *buf_pos = 0;
            *at_end = false;
        }
        Ok(rows)
    }

    fn scroll_keyset(&mut self, dir: PhoenixFetch, n: usize) -> Result<Vec<Row>> {
        // Reposition the key-table position, then serve through the normal
        // keyset fetch path (current row data by key).
        let pos = match self.state.as_ref() {
            Some(Delivery::Keyset { pos, .. }) => *pos,
            _ => unreachable!(),
        };
        let new_pos = match dir {
            PhoenixFetch::Next => pos,
            PhoenixFetch::Prior => pos.saturating_sub(n as u64),
            PhoenixFetch::Absolute(k) => k,
        };
        if let Some(Delivery::Keyset {
            pos,
            key_buf,
            key_buf_pos,
            keys_done,
            ..
        }) = self.state.as_mut()
        {
            *pos = new_pos;
            key_buf.clear();
            *key_buf_pos = 0;
            *keys_done = false;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.fetch_keyset()? {
                Some(row) => out.push(row),
                None => break,
            }
        }
        if matches!(dir, PhoenixFetch::Prior) {
            // A Prior scroll leaves the position where it started reading.
            if let Some(Delivery::Keyset {
                pos,
                key_buf,
                key_buf_pos,
                keys_done,
                ..
            }) = self.state.as_mut()
            {
                *pos = new_pos;
                key_buf.clear();
                *key_buf_pos = 0;
                *keys_done = false;
            }
        }
        Ok(out)
    }

    /// Drain the remaining rows.
    pub fn fetch_all(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        while let Some(row) = self.fetch()? {
            out.push(row);
        }
        Ok(out)
    }

    // -----------------------------------------------------------------------
    // Forward-only persistent delivery
    // -----------------------------------------------------------------------

    fn open_persistent(&mut self, select: &SelectStmt) -> Result<()> {
        let m = self.pc.materialize_with_retry(select)?;
        self.owned.push(m.table.clone());
        if let Some(p) = &m.capture_proc {
            self.owned.push(p.clone());
        }
        self.granted = Some(PhoenixCursorKind::ForwardOnly);
        self.state = Some(Delivery::Persistent {
            table: m.table,
            schema: m.schema,
            delivered: 0,
            cursor: None,
            buf: Vec::new(),
            buf_pos: 0,
            at_end: false,
        });
        Ok(())
    }

    fn fetch_persistent(&mut self) -> Result<Option<Row>> {
        loop {
            // Serve from the block buffer.
            if let Some(Delivery::Persistent {
                buf,
                buf_pos,
                delivered,
                ..
            }) = self.state.as_mut()
            {
                if *buf_pos < buf.len() {
                    let row = buf[*buf_pos].clone();
                    *buf_pos += 1;
                    *delivered += 1;
                    return Ok(Some(row));
                }
            }
            let (at_end, cursor) = match self.state.as_ref() {
                Some(Delivery::Persistent { at_end, cursor, .. }) => (*at_end, *cursor),
                _ => unreachable!(),
            };
            if at_end {
                return Ok(None);
            }

            // Ensure a delivery cursor is open (re-positioning if this is a
            // post-recovery re-open).
            if cursor.is_none() {
                self.reopen_persistent_cursor()?;
                continue;
            }

            // Fetch the next block; a comm failure triggers recovery and a
            // repositioned re-open.
            let block = self.fetch_block;
            let cid = cursor.expect("checked above");
            match self.pc.mapped.fetch_cursor_raw(cid, FetchDir::Next, block) {
                Ok((rows, end)) => {
                    // Buffered rows are always served before `at_end` is
                    // consulted (the buffer check heads the loop), so the
                    // final block is delivered in full.
                    if let Some(Delivery::Persistent {
                        buf,
                        buf_pos,
                        at_end,
                        ..
                    }) = self.state.as_mut()
                    {
                        *buf = rows;
                        *buf_pos = 0;
                        *at_end = end;
                    }
                }
                Err(e) if e.is_comm() => {
                    self.pc.recover()?;
                    if let Some(Delivery::Persistent {
                        cursor,
                        buf,
                        buf_pos,
                        ..
                    }) = self.state.as_mut()
                    {
                        *cursor = None;
                        buf.clear();
                        *buf_pos = 0;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// (Re-)open the delivery cursor over the persistent result table,
    /// positioned after the rows already delivered.
    fn reopen_persistent_cursor(&mut self) -> Result<()> {
        let (table, delivered) = match self.state.as_ref() {
            Some(Delivery::Persistent {
                table, delivered, ..
            }) => (table.clone(), *delivered),
            _ => unreachable!(),
        };
        let strategy = self.pc.config.reposition;
        let t0 = std::time::Instant::now();
        loop {
            let attempt = (|| -> Result<u64> {
                match strategy {
                    RepositionStrategy::ServerSide => {
                        // Server-side skip: no tuples cross the wire.
                        let sql = if delivered > 0 {
                            format!("SELECT * FROM {table} OFFSET {delivered}")
                        } else {
                            format!("SELECT * FROM {table}")
                        };
                        let (cid, _, _) = self
                            .pc
                            .mapped
                            .open_cursor_raw(&sql, WireCursor::ForwardOnly)?;
                        Ok(cid)
                    }
                    RepositionStrategy::ClientScan => {
                        // Baseline: re-open from the start and discard.
                        let sql = format!("SELECT * FROM {table}");
                        let (cid, _, _) = self
                            .pc
                            .mapped
                            .open_cursor_raw(&sql, WireCursor::ForwardOnly)?;
                        let mut to_skip = delivered;
                        while to_skip > 0 {
                            let n = to_skip.min(256) as usize;
                            let (rows, end) =
                                self.pc.mapped.fetch_cursor_raw(cid, FetchDir::Next, n)?;
                            to_skip -= rows.len() as u64;
                            if end {
                                break;
                            }
                        }
                        Ok(cid)
                    }
                }
            })();
            match attempt {
                Ok(cid) => {
                    if let Some(Delivery::Persistent { cursor, .. }) = self.state.as_mut() {
                        *cursor = Some(cid);
                    }
                    if delivered > 0 {
                        let us = t0.elapsed().as_micros() as u64;
                        self.pc.stats.last_reposition_us = us;
                        self.pc.stats.reposition_us += us;
                        phoenix_obs::journal().record(
                            "core",
                            phoenix_obs::EventKind::CursorRestored,
                            format!(
                                "cursor over {table} repositioned past {delivered} row(s) in {us} us"
                            ),
                        );
                    }
                    return Ok(());
                }
                Err(e) if e.is_comm() => self.pc.recover()?,
                Err(e) => return Err(e),
            }
        }
    }

    // -----------------------------------------------------------------------
    // Keyset / dynamic plumbing
    // -----------------------------------------------------------------------

    /// Decide whether the query shape supports a keyed Phoenix cursor:
    /// single base table with a primary key, plain column (or `*`)
    /// projection, no aggregation/ordering/limit. Returns the base table,
    /// its key columns, and the output projection column names.
    fn cursor_plan(&mut self, select: &SelectStmt) -> Result<Option<CursorPlan>> {
        if select.from.len() != 1
            || select.distinct
            || !select.group_by.is_empty()
            || select.having.is_some()
            || !select.order_by.is_empty()
            || select.limit.is_some()
            || select.offset.is_some()
        {
            return Ok(None);
        }
        let base = select.from[0].table.clone();
        let (schema, pk) = loop {
            match self.pc.private.describe(&base.to_string()) {
                Ok(x) => break x,
                Err(e) if e.is_comm() => self.pc.recover()?,
                Err(e) => return Err(e),
            }
        };
        if pk.is_empty() {
            return Ok(None);
        }
        let mut proj_cols = Vec::new();
        for item in &select.projections {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    proj_cols.extend(schema.names().map(str::to_string));
                }
                SelectItem::Expr {
                    expr: Expr::Column { name, .. },
                    ..
                } => proj_cols.push(name.clone()),
                _ => return Ok(None), // computed projection → downgrade
            }
        }
        // Output schema from the base table's column metadata.
        let mut cols = Vec::new();
        for name in &proj_cols {
            match schema.index_of(name) {
                Some(i) => cols.push(schema.columns[i].clone()),
                None => return Ok(None),
            }
        }
        Ok(Some(CursorPlan {
            base,
            key_cols: pk,
            proj_cols,
            out_schema: Schema::new(cols),
        }))
    }

    /// Materialize the key table for a keyed cursor.
    fn materialize_keys(&mut self, select: &SelectStmt, plan: &CursorPlan) -> Result<ObjectName> {
        let key_select = with_projections(select.clone(), &plan.key_cols);
        let m = self.pc.materialize_with_retry(&key_select)?;
        self.owned.push(m.table.clone());
        if let Some(p) = &m.capture_proc {
            self.owned.push(p.clone());
        }
        Ok(m.table)
    }

    fn open_keyset(&mut self, select: &SelectStmt, plan: CursorPlan) -> Result<()> {
        let key_table = self.materialize_keys(select, &plan)?;
        self.granted = Some(PhoenixCursorKind::Keyset);
        self.state = Some(Delivery::Keyset {
            key_table,
            base: plan.base,
            key_cols: plan.key_cols,
            proj_cols: plan.proj_cols,
            schema: plan.out_schema,
            pos: 0,
            key_buf: Vec::new(),
            key_buf_pos: 0,
            keys_done: false,
        });
        Ok(())
    }

    fn fetch_keyset(&mut self) -> Result<Option<Row>> {
        loop {
            // Next key from the buffered block, refilling as needed.
            let key = {
                let (need_refill, done) = match self.state.as_ref() {
                    Some(Delivery::Keyset {
                        key_buf,
                        key_buf_pos,
                        keys_done,
                        ..
                    }) => (*key_buf_pos >= key_buf.len(), *keys_done),
                    _ => unreachable!(),
                };
                if need_refill {
                    if done {
                        return Ok(None);
                    }
                    self.refill_key_buffer()?;
                    continue;
                }
                match self.state.as_mut() {
                    Some(Delivery::Keyset {
                        key_buf,
                        key_buf_pos,
                        pos,
                        ..
                    }) => {
                        let k = key_buf[*key_buf_pos].clone();
                        *key_buf_pos += 1;
                        *pos += 1;
                        k
                    }
                    _ => unreachable!(),
                }
            };

            // SELECT the current row by key (paper: "reads the key from the
            // table and SELECTs the record from the database using this
            // key"). Deleted → skip; updated → fresh data.
            let sql = {
                let (base, key_cols, proj_cols) = match self.state.as_ref() {
                    Some(Delivery::Keyset {
                        base,
                        key_cols,
                        proj_cols,
                        ..
                    }) => (base.clone(), key_cols.clone(), proj_cols.clone()),
                    _ => unreachable!(),
                };
                let preds: Vec<String> = key_cols
                    .iter()
                    .zip(&key)
                    .map(|(c, v)| format!("{c} = {}", value_literal(v)))
                    .collect();
                format!(
                    "SELECT {} FROM {base} WHERE {}",
                    proj_cols.join(", "),
                    preds.join(" AND ")
                )
            };
            let r = self.pc.run_mapped_retry(&sql)?;
            let rows = r.rows();
            if let Some(row) = rows.first() {
                return Ok(Some(row.clone()));
            }
            // Row deleted since the keyset was captured: skip to next key.
        }
    }

    fn refill_key_buffer(&mut self) -> Result<()> {
        let (key_table, pos) = match self.state.as_ref() {
            Some(Delivery::Keyset { key_table, pos, .. }) => (key_table.clone(), *pos),
            _ => unreachable!(),
        };
        let block = self.fetch_block;
        let sql = format!("SELECT * FROM {key_table} LIMIT {block} OFFSET {pos}");
        let r = self.pc.run_mapped_retry(&sql)?;
        let rows = r.rows().to_vec();
        if let Some(Delivery::Keyset {
            key_buf,
            key_buf_pos,
            keys_done,
            ..
        }) = self.state.as_mut()
        {
            *keys_done = rows.len() < block;
            *key_buf = rows;
            *key_buf_pos = 0;
        }
        Ok(())
    }

    fn open_dynamic(&mut self, select: &SelectStmt, plan: CursorPlan) -> Result<()> {
        // Dynamic range pacing needs a single-column key; composite keys
        // downgrade to keyset (still persistent, slightly stricter
        // membership semantics).
        if plan.key_cols.len() != 1 {
            self.pc.stats.cursor_downgrades += 1;
            return self.open_keyset(select, plan);
        }
        let key_table = self.materialize_keys(select, &plan)?;
        // Internally the projection is extended with the key column so the
        // cursor can track `last_key`; it is stripped before delivery if the
        // application did not ask for it (see `fetch_dynamic`).
        self.granted = Some(PhoenixCursorKind::Dynamic);
        self.state = Some(Delivery::Dynamic {
            key_table,
            base: plan.base,
            key_col: plan.key_cols[0].clone(),
            proj_cols: plan.proj_cols,
            schema: plan.out_schema,
            pred_sql: select.where_clause.as_ref().map(render_expr),
            pos: 0,
            last_key: None,
            buf: Vec::new(),
            buf_pos: 0,
            done: false,
        });
        Ok(())
    }

    fn fetch_dynamic(&mut self) -> Result<Option<Row>> {
        loop {
            // Serve the buffered range, tracking last_key.
            if let Some(Delivery::Dynamic {
                buf,
                buf_pos,
                last_key,
                proj_cols,
                ..
            }) = self.state.as_mut()
            {
                if *buf_pos < buf.len() {
                    let mut row = buf[*buf_pos].clone();
                    *buf_pos += 1;
                    // Internal layout: proj cols then the key column.
                    let key = row.pop().expect("internal key column present");
                    *last_key = Some(key);
                    debug_assert_eq!(row.len(), proj_cols.len());
                    return Ok(Some(row));
                }
            }
            let done = match self.state.as_ref() {
                Some(Delivery::Dynamic { done, .. }) => *done,
                _ => unreachable!(),
            };
            if done {
                return Ok(None);
            }
            self.refill_dynamic_buffer()?;
        }
    }

    /// Fetch the next key range into the buffer (paper: "a fetch causes
    /// Phoenix/ODBC to use the last record key seen by the application and
    /// the next record key from the table to SELECT a range of rows").
    fn refill_dynamic_buffer(&mut self) -> Result<()> {
        let (key_table, base, key_col, proj_cols, pred_sql, pos, last_key) =
            match self.state.as_ref() {
                Some(Delivery::Dynamic {
                    key_table,
                    base,
                    key_col,
                    proj_cols,
                    pred_sql,
                    pos,
                    last_key,
                    ..
                }) => (
                    key_table.clone(),
                    base.clone(),
                    key_col.clone(),
                    proj_cols.clone(),
                    pred_sql.clone(),
                    *pos,
                    last_key.clone(),
                ),
                _ => unreachable!(),
            };

        // Next pacing key from the persistent key table.
        let next_key = {
            let sql = format!("SELECT * FROM {key_table} LIMIT 1 OFFSET {pos}");
            let r = self.pc.run_mapped_retry(&sql)?;
            r.rows().first().map(|row| row[0].clone())
        };

        let mut preds = Vec::new();
        if let Some(p) = &pred_sql {
            preds.push(format!("({p})"));
        }
        if let Some(last) = &last_key {
            preds.push(format!("{key_col} > {}", value_literal(last)));
        }
        let tail_block = self.fetch_block;
        let (sql, advance_pos, tail) = match &next_key {
            Some(k) => {
                preds.push(format!("{key_col} <= {}", value_literal(k)));
                (
                    format!(
                        "SELECT {}, {key_col} FROM {base}{} ORDER BY {key_col}",
                        proj_cols.join(", "),
                        where_clause(&preds)
                    ),
                    true,
                    false,
                )
            }
            None => (
                // Key table exhausted: tail query picks up rows inserted
                // beyond the last captured key.
                format!(
                    "SELECT {}, {key_col} FROM {base}{} ORDER BY {key_col} LIMIT {tail_block}",
                    proj_cols.join(", "),
                    where_clause(&preds)
                ),
                false,
                true,
            ),
        };

        let r = self.pc.run_mapped_retry(&sql)?;
        let rows = r.rows().to_vec();
        if let Some(Delivery::Dynamic {
            buf,
            buf_pos,
            pos,
            done,
            last_key,
            ..
        }) = self.state.as_mut()
        {
            if advance_pos {
                *pos += 1;
                if rows.is_empty() {
                    // Every row in (last, next_key] is gone; move the lower
                    // bound forward so the next range starts after it.
                    *last_key = next_key;
                }
            } else if tail && rows.is_empty() {
                *done = true;
            }
            *buf = rows;
            *buf_pos = 0;
        }
        Ok(())
    }

    /// Expose the status-table name so examples can show the testable-state
    /// machinery without reaching into internals.
    pub fn status_table_name() -> &'static str {
        STATUS_TABLE
    }
}

struct CursorPlan {
    base: ObjectName,
    key_cols: Vec<String>,
    proj_cols: Vec<String>,
    out_schema: Schema,
}

fn where_clause(preds: &[String]) -> String {
    if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    }
}
