//! Recovery-layer metric handles, registered once and cached in a static.
//!
//! These are process-wide aggregates over every [`crate::PhoenixConnection`];
//! the per-connection [`crate::PhoenixStats`] remains the fine-grained view.
//! The counters pair with the event journal: the counters say *how much*
//! recovery happened, the journal says *in what order*.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter, Histogram};

/// Cached handles for every recovery metric.
pub struct CoreMetrics {
    /// Reconnect attempts inside ping loops
    /// (`phoenix_reconnect_attempts_total`).
    pub reconnect_attempts: Arc<Counter>,
    /// Sleeps taken between reconnect attempts
    /// (`phoenix_backoff_sleeps_total`). Always `attempts - successes` —
    /// the successful attempt never sleeps.
    pub backoff_sleeps: Arc<Counter>,
    /// Completed recovery passes (`phoenix_recoveries_total`).
    pub recoveries: Arc<Counter>,
    /// End-to-end virtual-session recovery latency
    /// (`phoenix_recovery_us`): failure detection to re-established,
    /// verified session.
    pub recovery_us: Arc<Histogram>,
    /// Requests answered from the status table instead of re-execution
    /// (`phoenix_replayed_replies_total`) — the paper's reply-buffer hits.
    pub replayed_replies: Arc<Counter>,
}

/// The recovery metric set, registered on first use.
pub fn core_metrics() -> &'static CoreMetrics {
    static M: OnceLock<CoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        CoreMetrics {
            reconnect_attempts: r.counter(
                "phoenix_reconnect_attempts_total",
                "reconnect attempts made inside ping loops",
            ),
            backoff_sleeps: r.counter(
                "phoenix_backoff_sleeps_total",
                "sleeps taken between reconnect attempts",
            ),
            recoveries: r.counter(
                "phoenix_recoveries_total",
                "completed virtual-session recovery passes",
            ),
            recovery_us: r.histogram(
                "phoenix_recovery_us",
                "end-to-end virtual-session recovery latency (us)",
            ),
            replayed_replies: r.counter(
                "phoenix_replayed_replies_total",
                "requests answered from the status table (reply-buffer hits)",
            ),
        }
    })
}
