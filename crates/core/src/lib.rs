#![warn(missing_docs)]

//! # phoenix-core — Persistent Client-Server Database Sessions
//!
//! A faithful reproduction of **Phoenix/ODBC** (Barga, Lomet, Baby, Agrawal;
//! *Persistent Client-Server Database Sessions*, EDBT 2000): middleware that
//! gives client applications database sessions that **survive a database
//! server crash**, without the application taking any measures for its own
//! recoverability.
//!
//! ## How it works (paper §3)
//!
//! Phoenix wraps the native driver's call points. Every application request
//! is intercepted, classified with a one-pass parse, and — where it creates
//! volatile server state — rewritten so that state lands in **persistent
//! tables** in the `phoenix` namespace on the server:
//!
//! * **Result sets** — the query's metadata is probed with the `WHERE 0=1`
//!   trick, a persistent table is created from it, and the result is
//!   captured server-side via a generated stored procedure
//!   (`CREATE PROCEDURE … AS INSERT INTO t <select>`), so no row crosses the
//!   network during capture. Delivery then reads from the persistent table,
//!   and Phoenix remembers the delivery position client-side.
//! * **Keyset / dynamic cursors** — only the qualifying *keys* are
//!   materialized; fetches re-read current rows by key (keyset) or by
//!   key-range (dynamic), so updates/inserts remain visible with the
//!   paper's exact semantics — but now the cursor survives a crash.
//! * **Data modification** — each DML statement is wrapped in a transaction
//!   together with an insert into a Phoenix **status table** recording the
//!   request id and its outcome (rows affected, messages): *testable state*.
//!   After a crash, probing the status table decides "return logged outcome"
//!   vs. "resubmit".
//! * **Application transactions** — Phoenix injects the status insert just
//!   before the application's own COMMIT (the paper's reply-buffer write),
//!   and keeps a client-side log of the open transaction's statements so an
//!   uncommitted transaction can be transparently replayed.
//! * **Temporary objects** — `CREATE TABLE #x` / temp procedures are
//!   rewritten to persistent objects in the `phoenix` namespace and all
//!   later references are redirected; Phoenix drops them at clean session
//!   end.
//! * **Session context** — login information and `SET` options are recorded
//!   client-side and replayed when rebuilding a connection.
//!
//! The application talks to a **virtual session** ([`PhoenixConnection`]).
//! On a communication failure Phoenix pings until the server is back,
//! decides crash-vs-blip with a *liveness proxy* (a genuine session temp
//! table that exists only if the old session survived), then runs two-phase
//! recovery: (1) rebuild connections and replay session context, (2)
//! reinstall SQL state — verify the materialized tables, re-position result
//! delivery server-side, probe the status table for in-flight requests, and
//! resubmit or replay what was lost. The application just sees a slow
//! response.
//!
//! ## Module map
//!
//! * [`config`] — strategies and recovery tuning ([`PhoenixConfig`]).
//! * [`naming`] — generation of Phoenix object names (`phoenix.rs_*`, …).
//! * [`context`] — the client-side session context and request log.
//! * [`connection`] — [`PhoenixConnection`]: the virtual session.
//! * [`statement`] — [`PhoenixStatement`]: persistent result-set delivery
//!   and persistent keyset/dynamic cursors.
//! * [`materialize`] — the result-set capture pipeline.
//! * [`dml`] — DML wrapping and the status table.
//! * [`recovery`] — failure detection, ping loop, two-phase reinstall.
//! * [`metrics`] — process-wide recovery counters and the recovery-latency
//!   histogram, registered in the [`phoenix_obs`] registry; recovery steps
//!   also leave an ordered timeline in the [`phoenix_obs::journal()`].

pub mod config;
pub mod connection;
pub mod context;
pub mod dml;
pub mod materialize;
pub mod metrics;
pub mod naming;
pub mod recovery;
pub mod statement;

pub use config::{CaptureStrategy, PhoenixConfig, RepositionStrategy};
pub use connection::{PhoenixConnection, PhoenixStats};
pub use statement::{PhoenixCursorKind, PhoenixFetch, PhoenixStatement};

/// Crate-wide result alias (driver errors are the app-visible error type,
/// exactly as with a native driver).
pub type Result<T> = std::result::Result<T, phoenix_driver::DriverError>;
