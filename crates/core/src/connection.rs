//! [`PhoenixConnection`] — the virtual database session (paper §3, "Virtual
//! ODBC Sessions").
//!
//! The application connects to Phoenix; Phoenix maps that virtual session
//! onto *two* real driver connections:
//!
//! * the **mapped** connection, which carries (possibly rewritten)
//!   application requests — "the mapped connection activity mimics the
//!   application's use of a normal ODBC connection";
//! * the **private** connection, on which Phoenix performs the activity it
//!   must mask from the application: creating persistent tables and capture
//!   procedures, pinging for server recovery, probing the status table, and
//!   re-creating session state.
//!
//! Should a crash occur, the virtual handles stay valid: Phoenix re-maps
//! them to fresh post-crash connections, replays the recorded session
//! context, verifies its materialized state, and resumes — the application
//! sees only a delayed response.

use phoenix_driver::{error::codes, Connection, DriverError, Environment, QueryResult};
use phoenix_sql::ast::{SelectStmt, Statement};
use phoenix_sql::classify::{
    classify, creates_temp_object, drops_temp_object, temp_object_refs, RequestKind,
};
use phoenix_sql::display::render_statement;
use phoenix_sql::parser::parse_statement;
use phoenix_sql::rewrite::rename_table_refs;
use phoenix_storage::types::Value;
use phoenix_wire::message::Outcome;

use phoenix_obs::{journal, EventKind};

use crate::config::PhoenixConfig;
use crate::context::{PhoenixObject, SessionContext};
use crate::dml::{self, DmlOutcome};
use crate::materialize::{self, Materialized};
use crate::metrics::core_metrics;
use crate::naming::{fresh_session_tag, Namer};
use crate::recovery;
use crate::statement::PhoenixStatement;
use crate::Result;

/// Observable Phoenix behaviour counters (used by tests, examples and the
/// benchmark harness; the application never needs them).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhoenixStats {
    /// Microseconds spent re-establishing the virtual session in the most
    /// recent recovery (reconnects + context replay + state verification) —
    /// the "Virtual Session" component of the paper's Figure 2.
    pub last_recovery_virtual_us: u64,
    /// Accumulated virtual-session recovery time, microseconds.
    pub recovery_virtual_us: u64,
    /// Microseconds spent reinstalling SQL state (re-opening and
    /// re-positioning result delivery) after the most recent recovery — the
    /// "SQL State" component of Figure 2.
    pub last_reposition_us: u64,
    /// Accumulated repositioning time, microseconds.
    pub reposition_us: u64,
    /// Completed recovery passes (crash or comm-blip).
    pub recoveries: u64,
    /// Reconnect attempts made inside ping loops.
    pub reconnect_attempts: u64,
    /// Result sets materialized into persistent tables.
    pub materialized_result_sets: u64,
    /// DML statements wrapped with status records.
    pub wrapped_dml: u64,
    /// DML statements submitted through the pipelined (ExecBatch) path.
    pub pipelined_dml: u64,
    /// Status-table probes performed after failures.
    pub status_probes: u64,
    /// Requests answered from the status table (logged outcome returned
    /// instead of re-execution).
    pub replied_from_status: u64,
    /// Requests resubmitted after a crash.
    pub resubmissions: u64,
    /// Application-transaction statements replayed.
    pub replayed_txn_statements: u64,
    /// Cursor downgrades (requested kind unsupported for the query shape).
    pub cursor_downgrades: u64,
}

/// A persistent client-server database session.
pub struct PhoenixConnection {
    pub(crate) env: Environment,
    /// The server list: the primary first, then any standbys. Recovery
    /// rotates through it, so a session survives the loss of the machine it
    /// was logged into as long as some listed server gets promoted.
    pub(crate) addrs: Vec<String>,
    /// Index into `addrs` of the server the session currently lives on.
    /// Both underlying connections always point at this one server — the
    /// status table, temp stand-ins, and liveness marker are only
    /// meaningful when probe and execution hit the same database.
    pub(crate) current: usize,
    pub(crate) user: String,
    pub(crate) database: String,
    pub(crate) config: PhoenixConfig,
    pub(crate) mapped: Connection,
    pub(crate) private: Connection,
    pub(crate) namer: Namer,
    pub(crate) ctx: SessionContext,
    pub(crate) stats: PhoenixStats,
}

impl PhoenixConnection {
    /// Open a persistent session. Applications call this exactly as they
    /// would a native driver connect; everything else is Phoenix's problem.
    pub fn connect(
        env: &Environment,
        addr: &str,
        user: &str,
        database: &str,
        config: PhoenixConfig,
    ) -> Result<PhoenixConnection> {
        Self::connect_multi(env, &[addr], user, database, config)
    }

    /// Open a persistent session against a *server list*: the primary
    /// first, then any hot standbys. The initial login goes to the first
    /// address; if the primary is later lost, recovery rotates through the
    /// whole list, so the session rides a standby promotion without the
    /// application ever seeing the failover.
    pub fn connect_multi(
        env: &Environment,
        addrs: &[&str],
        user: &str,
        database: &str,
        config: PhoenixConfig,
    ) -> Result<PhoenixConnection> {
        assert!(
            !addrs.is_empty(),
            "connect_multi needs at least one address"
        );
        let env = env.clone().with_read_timeout(config.recovery.read_timeout);
        // Try each listed server in order. A refused/reset dial or a fenced
        // login (an unpromoted standby) moves on to the next address; both
        // the mapped and the private connection must land on the SAME server
        // so the liveness marker and the status table live where the
        // statements run.
        let mut winner = 0usize;
        let mut mapped = None;
        let mut last_err = None;
        for (idx, addr) in addrs.iter().enumerate() {
            match env.connect(addr, user, database) {
                Ok(conn) => {
                    winner = idx;
                    mapped = Some(conn);
                    break;
                }
                Err(e) if e.is_retryable() && idx + 1 < addrs.len() => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        let mapped = match mapped {
            Some(c) => c,
            None => return Err(last_err.expect("no address attempted")),
        };
        let mut private = env.connect(addrs[winner], user, database)?;
        let namer = Namer::new(fresh_session_tag());
        if !config.passthrough {
            dml::ensure_status_table(&mut private)?;
            recovery::create_marker(&mut private, &namer.alive_marker())?;
        }
        Ok(PhoenixConnection {
            env,
            addrs: addrs.iter().map(|a| a.to_string()).collect(),
            current: winner,
            user: user.to_string(),
            database: database.to_string(),
            config,
            mapped,
            private,
            namer,
            ctx: SessionContext::new(),
            stats: PhoenixStats::default(),
        })
    }

    /// Grow the session's server list (e.g. when a standby comes online
    /// after the session was opened). Duplicates are ignored.
    pub fn add_server(&mut self, addr: &str) {
        if !self.addrs.iter().any(|a| a == addr) {
            self.addrs.push(addr.to_string());
        }
    }

    /// The address of the server this session currently lives on.
    pub fn current_server(&self) -> &str {
        &self.addrs[self.current]
    }

    /// Behaviour counters (recoveries, materializations, probes, …).
    pub fn stats(&self) -> &PhoenixStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &PhoenixConfig {
        &self.config
    }

    /// Allocate a statement handle for fetch-wise delivery and persistent
    /// cursors.
    pub fn statement(&mut self) -> PhoenixStatement<'_> {
        PhoenixStatement::new(self)
    }

    // -----------------------------------------------------------------------
    // The intercepted execute path
    // -----------------------------------------------------------------------

    /// Execute one statement through the full Phoenix pipeline, returning
    /// the complete result (queries are materialized and then read back in
    /// full; use [`PhoenixConnection::statement`] for incremental delivery).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        if self.config.passthrough {
            return self.mapped.execute(sql);
        }
        // One-pass parse to determine request type. Unparseable requests are
        // forwarded opaquely — the server is the authority on errors.
        let stmt = match parse_statement(sql) {
            Ok(s) => s,
            Err(_) => return self.run_mapped_retry(sql),
        };
        let stmt = self.redirect_temps(&stmt);

        match classify(&stmt) {
            RequestKind::Query => match &stmt {
                Statement::Select(s) => {
                    let select = s.clone();
                    self.execute_query_complete(&select)
                }
                // EXPLAIN is read-only and idempotent: forward it directly
                // (with resubmission on comm failure). Materializing a plan
                // listing into a persistent table would be pure overhead.
                Statement::Explain(_) => self.run_mapped_retry(&render_statement(&stmt)),
                _ => unreachable!("classified Query"),
            },
            RequestKind::DataModification => self.execute_dml(&render_statement(&stmt)),
            RequestKind::Ddl => self.execute_ddl(&stmt),
            RequestKind::TxnBegin => self.execute_begin(),
            RequestKind::TxnEnd => match stmt {
                Statement::Commit => self.execute_commit(),
                _ => self.execute_rollback(),
            },
            RequestKind::SessionContext => {
                if let Statement::Set { name, value } = &stmt {
                    self.ctx.record_option(name, literal_to_value(value));
                }
                self.run_in_txn_context(&render_statement(&stmt))
            }
            RequestKind::Message => self.run_in_txn_context(&render_statement(&stmt)),
            RequestKind::Exec => self.execute_exec(&render_statement(&stmt)),
        }
    }

    /// Execute a SQL command batch (the paper lists command batches among
    /// the session-state elements Phoenix manages). Phoenix decomposes the
    /// batch client-side and runs every statement through the interception
    /// pipeline, so each piece gets the persistence treatment appropriate to
    /// its kind; execution stops at the first error, like a server batch.
    pub fn execute_batch(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = match phoenix_sql::parse_statements(sql) {
            Ok(s) => s,
            Err(_) => {
                // Unparseable batch: forward opaquely as a single request.
                return Ok(vec![self.run_mapped_retry(sql)?]);
            }
        };
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            out.push(self.execute(&render_statement(stmt))?);
        }
        Ok(out)
    }

    /// Graceful session termination: Phoenix "cleans up all persistent
    /// structures on the database server that were created to store database
    /// session state … dropping all tables and stored procedures".
    pub fn close(mut self) {
        if !self.config.passthrough {
            let mut sweep = self.ctx.debris.clone();
            sweep.extend(self.ctx.created.clone());
            for obj in sweep.iter().rev() {
                let sql = match obj.kind {
                    PhoenixObject::Table => format!("DROP TABLE IF EXISTS {}", obj.name),
                    PhoenixObject::Procedure => format!("DROP PROCEDURE IF EXISTS {}", obj.name),
                };
                let _ = self.private.execute(&sql);
            }
            let _ = dml::clear_status(&mut self.private, self.namer.tag());
        }
        self.mapped.close();
        self.private.close();
    }

    // -----------------------------------------------------------------------
    // Query path
    // -----------------------------------------------------------------------

    /// Materialize and read back a complete result set.
    fn execute_query_complete(&mut self, select: &SelectStmt) -> Result<QueryResult> {
        let m = self.materialize_with_retry(select)?;
        let sql = format!("SELECT * FROM {}", m.table);
        let mut r = self.run_mapped_retry(&sql)?;
        // Present the probed schema (it carries the query's own column
        // names and types).
        if let Outcome::ResultSet { schema, .. } = &mut r.outcome {
            *schema = m.schema.clone();
        }
        if self.config.eager_cleanup {
            // The application holds the complete result; the persistent
            // copy has served its purpose.
            self.drop_phoenix_table(&m.table);
            if let Some(p) = &m.capture_proc {
                self.drop_phoenix_proc(p);
            }
        }
        Ok(r)
    }

    /// Best-effort eager drop of a Phoenix table: demoted from verified
    /// session state first, so a failure (or crash) here can never make
    /// recovery think durable state was lost — the termination sweep will
    /// finish the job.
    pub(crate) fn drop_phoenix_table(&mut self, name: &phoenix_sql::ast::ObjectName) {
        self.ctx.demote(name);
        let _ = self
            .private
            .execute(&format!("DROP TABLE IF EXISTS {name}"));
    }

    /// Best-effort eager drop of a Phoenix procedure (see
    /// [`Self::drop_phoenix_table`]).
    pub(crate) fn drop_phoenix_proc(&mut self, name: &phoenix_sql::ast::ObjectName) {
        self.ctx.demote(name);
        let _ = self
            .private
            .execute(&format!("DROP PROCEDURE IF EXISTS {name}"));
    }

    /// Materialize a result set, retrying with fresh object names if a crash
    /// interrupts the pipeline (partially-created objects are swept at
    /// session cleanup).
    pub(crate) fn materialize_with_retry(&mut self, select: &SelectStmt) -> Result<Materialized> {
        loop {
            let table = self.namer.result_table();
            let proc = self.namer.capture_proc();
            // Reserve the names so cleanup sweeps partial runs; successful
            // materialization promotes them to verified session state.
            self.ctx.reserve(PhoenixObject::Table, table.clone());
            self.ctx.reserve(PhoenixObject::Procedure, proc.clone());
            match materialize::materialize(
                &mut self.mapped,
                &mut self.private,
                table,
                proc,
                select,
                self.config.capture,
            ) {
                Ok(m) => {
                    self.ctx.register(PhoenixObject::Table, m.table.clone());
                    if let Some(p) = &m.capture_proc {
                        self.ctx.register(PhoenixObject::Procedure, p.clone());
                    }
                    self.stats.materialized_result_sets += 1;
                    return Ok(m);
                }
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    self.replay_open_txn()?;
                    self.stats.resubmissions += 1;
                    // Loop: fresh names, full re-run.
                }
                Err(e) => return Err(e),
            }
        }
    }

    // -----------------------------------------------------------------------
    // DML path
    // -----------------------------------------------------------------------

    fn execute_dml(&mut self, sql: &str) -> Result<QueryResult> {
        if self.ctx.txn_open {
            // Inside an application transaction Phoenix does not wrap — the
            // outcome becomes testable via the status record injected at
            // COMMIT, and the statement is logged for replay.
            let r = self.run_in_txn_context(sql)?;
            return Ok(r);
        }

        let session = self.namer.tag().to_string();
        let tag = self.namer.request_tag();
        self.stats.wrapped_dml += 1;
        loop {
            match dml::wrap_and_execute(&mut self.mapped, &session, tag, sql) {
                Ok(out) => return Ok(dml_reply(out)),
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    self.stats.status_probes += 1;
                    if let Some(out) = self.probe_status_retry(tag)? {
                        // Committed before the crash: return the logged
                        // outcome (the preserved reply buffer).
                        self.note_replayed_reply(tag);
                        return Ok(dml_reply(out));
                    }
                    self.stats.resubmissions += 1;
                    // Not committed: resubmit the wrapped transaction.
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Execute a slate of independent DML statements with protocol v2
    /// pipelining: each statement travels as **one** `ExecBatch` frame
    /// (`BEGIN; dml; status insert via @@ROWCOUNT; COMMIT`) and up to the
    /// negotiated window of them is in flight at once. Results come back in
    /// submission order.
    ///
    /// This is the pipelined face of the paper's exactly-once DML treatment:
    /// a crash with `k` requests in flight leaves each one individually
    /// testable in `phoenix.status` under its `(session, tag)` key —
    /// committed requests replay their logged outcome, uncommitted ones are
    /// resubmitted. A server-reported statement error aborts that
    /// statement's wrapper and surfaces after the window drains; statements
    /// already submitted behind it fail their own `BEGIN` against the
    /// dangling transaction, so nothing beyond the failed statement applies.
    ///
    /// On a v1 connection the pipeline degrades to synchronous execution
    /// with identical semantics.
    pub fn execute_pipelined(&mut self, stmts: &[String]) -> Result<Vec<QueryResult>> {
        if self.config.passthrough {
            let mut out = Vec::with_capacity(stmts.len());
            for sql in stmts {
                out.push(self.mapped.execute(sql)?);
            }
            return Ok(out);
        }
        if self.ctx.txn_open {
            // Inside an application transaction the wrappers cannot nest;
            // fall back to the interception pipeline statement by statement
            // (each is logged for transaction replay).
            let mut out = Vec::with_capacity(stmts.len());
            for sql in stmts {
                out.push(self.execute(sql)?);
            }
            return Ok(out);
        }
        let session = self.namer.tag().to_string();
        let jobs: Vec<(u64, String)> = stmts
            .iter()
            .map(|sql| (self.namer.request_tag(), sql.clone()))
            .collect();
        self.stats.wrapped_dml += jobs.len() as u64;
        self.stats.pipelined_dml += jobs.len() as u64;
        let mut results: Vec<Option<DmlOutcome>> = vec![None; jobs.len()];
        loop {
            match self.pipeline_round(&session, &jobs, &mut results) {
                Ok(()) => {
                    return Ok(results
                        .into_iter()
                        .map(|o| dml_reply(o.expect("completed round resolves every job")))
                        .collect());
                }
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    // Probe the whole in-flight window: every unresolved tag
                    // is individually testable in the status table.
                    for (i, (tag, _)) in jobs.iter().enumerate() {
                        if results[i].is_none() {
                            self.stats.status_probes += 1;
                            if let Some(out) = self.probe_status_retry(*tag)? {
                                self.note_replayed_reply(*tag);
                                results[i] = Some(out);
                            } else {
                                self.stats.resubmissions += 1;
                            }
                        }
                    }
                    // Unresolved jobs never committed: resubmit them.
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One pipelined pass over the unresolved jobs. Fills `results` for
    /// every job whose wrapper committed and replied; a statement error
    /// drains the window, rolls the dangling wrapper back and surfaces.
    fn pipeline_round(
        &mut self,
        session: &str,
        jobs: &[(u64, String)],
        results: &mut [Option<DmlOutcome>],
    ) -> Result<()> {
        let mut failure: Option<DriverError> = None;
        {
            let mut pipe = self.mapped.pipeline();
            let mut pending: Vec<(usize, u64)> = Vec::new();
            for (i, (tag, sql)) in jobs.iter().enumerate() {
                if results[i].is_some() {
                    continue;
                }
                let ptag = pipe.submit_batch(&dml::pipelined_batch(session, *tag, sql))?;
                pending.push((i, ptag));
            }
            for (i, ptag) in pending {
                let items = pipe.wait_batch(ptag)?;
                match batch_outcome(&items) {
                    Ok(out) => results[i] = Some(out),
                    Err(e) => {
                        // First statement error wins; later wrappers hit the
                        // dangling transaction and report nested-BEGIN noise
                        // that the application never asked about.
                        failure.get_or_insert(e);
                    }
                }
            }
        }
        if let Some(e) = failure {
            // The failed wrapper's transaction is still open server-side.
            let _ = self.mapped.execute("ROLLBACK");
            return Err(e);
        }
        Ok(())
    }

    /// Execute a stored-procedure call. Procedures can modify data, so —
    /// like DML — the call is wrapped in a status-recording transaction and
    /// resubmitted only when the status probe proves it never committed
    /// (exactly-once). Procedures that manage their *own* transactions
    /// cannot be wrapped (the nested BEGIN errors out); those fall back to
    /// plain forwarding, where a crash in the commit-to-reply window gives
    /// at-least-once semantics (documented limitation; the paper's
    /// treatment of procedures with internal transactions is equally
    /// best-effort). A wrapped call that committed before a crash replays
    /// its logged rows-affected and messages; any result-set rows it
    /// produced are not reconstructable from the status record.
    fn execute_exec(&mut self, sql: &str) -> Result<QueryResult> {
        if self.ctx.txn_open {
            return self.run_in_txn_context(sql);
        }
        let session = self.namer.tag().to_string();
        let tag = self.namer.request_tag();
        self.stats.wrapped_dml += 1;
        loop {
            let attempt = (|| -> Result<QueryResult> {
                self.mapped.execute("BEGIN")?;
                let r = match self.mapped.execute(sql) {
                    Ok(r) => r,
                    Err(e) => {
                        if !e.is_comm() {
                            let _ = self.mapped.execute("ROLLBACK");
                        }
                        return Err(e);
                    }
                };
                let affected = match &r.outcome {
                    Outcome::RowsAffected(n) => *n,
                    _ => 0,
                };
                self.mapped.execute(&dml::status_insert_sql(
                    &session,
                    tag,
                    affected,
                    &r.messages,
                ))?;
                self.mapped.execute("COMMIT")?;
                Ok(r)
            })();
            match attempt {
                Ok(r) => return Ok(r),
                Err(DriverError::Sql { code, .. }) if code == codes::TXN => {
                    // The procedure opened (or closed) its own transaction:
                    // unwrappable. Forward plainly.
                    return self.run_mapped_retry(sql);
                }
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    self.stats.status_probes += 1;
                    if let Some(out) = self.probe_status_retry(tag)? {
                        self.note_replayed_reply(tag);
                        return Ok(dml_reply(out));
                    }
                    self.stats.resubmissions += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Count and journal a reply-buffer hit: a request answered from its
    /// status record instead of being re-executed.
    fn note_replayed_reply(&mut self, tag: u64) {
        self.stats.replied_from_status += 1;
        core_metrics().replayed_replies.inc();
        journal().record(
            "core",
            EventKind::ReplyReplayed,
            format!(
                "request {}:{tag} answered from status table",
                self.namer.tag()
            ),
        );
    }

    fn probe_status_retry(&mut self, tag: u64) -> Result<Option<DmlOutcome>> {
        let session = self.namer.tag().to_string();
        loop {
            match dml::probe_status(&mut self.private, &session, tag) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_comm() => self.recover()?,
                Err(e) => return Err(e),
            }
        }
    }

    // -----------------------------------------------------------------------
    // Application transactions
    // -----------------------------------------------------------------------

    fn execute_begin(&mut self) -> Result<QueryResult> {
        if self.ctx.txn_open {
            // Let the server report the nesting error.
            return self.mapped.execute("BEGIN");
        }
        let r = self.run_mapped_retry("BEGIN")?;
        let tag = self.namer.request_tag();
        self.ctx.txn_begin(tag);
        Ok(r)
    }

    fn execute_commit(&mut self) -> Result<QueryResult> {
        if !self.ctx.txn_open {
            return self.mapped.execute("COMMIT");
        }
        let session = self.namer.tag().to_string();
        let tag = self.ctx.txn_tag.expect("open txn always has a request tag");
        loop {
            // The paper's reply-buffer write: record the transaction outcome
            // in the status table *inside* the transaction, then commit.
            let attempt = (|| -> Result<QueryResult> {
                self.mapped
                    .execute(&dml::status_insert_sql(&session, tag, 0, &[]))?;
                self.mapped.execute("COMMIT")
            })();
            match attempt {
                Ok(r) => {
                    self.ctx.txn_end();
                    return Ok(r);
                }
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    self.stats.status_probes += 1;
                    if self.probe_status_retry(tag)?.is_some() {
                        // The commit made it before the crash.
                        self.note_replayed_reply(tag);
                        self.ctx.txn_end();
                        return Ok(QueryResult {
                            outcome: Outcome::Done,
                            messages: Vec::new(),
                        });
                    }
                    // Transaction lost: replay it and retry the commit.
                    self.replay_open_txn()?;
                    self.stats.resubmissions += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn execute_rollback(&mut self) -> Result<QueryResult> {
        if !self.ctx.txn_open {
            return self.mapped.execute("ROLLBACK");
        }
        let result = self.mapped.execute("ROLLBACK");
        match result {
            Ok(r) => {
                self.ctx.txn_end();
                Ok(r)
            }
            Err(e) if e.is_comm() => {
                // The crash rolled the transaction back for us.
                self.recover()?;
                self.ctx.txn_end();
                Ok(QueryResult {
                    outcome: Outcome::Done,
                    messages: Vec::new(),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Re-establish a lost application transaction by replaying its logged
    /// statements (application message logging; assumes deterministic SQL,
    /// the paper's piecewise-determinism premise).
    pub(crate) fn replay_open_txn(&mut self) -> Result<()> {
        if !self.ctx.txn_open {
            return Ok(());
        }
        loop {
            let attempt = (|| -> Result<()> {
                self.mapped.execute("BEGIN")?;
                let log = self.ctx.txn_log.clone();
                for sql in &log {
                    self.mapped.execute(sql)?;
                    self.stats.replayed_txn_statements += 1;
                }
                Ok(())
            })();
            match attempt {
                Ok(()) => return Ok(()),
                Err(e) if e.is_comm() => self.recover()?,
                Err(e) => return Err(e),
            }
        }
    }

    // -----------------------------------------------------------------------
    // DDL / temp objects
    // -----------------------------------------------------------------------

    fn execute_ddl(&mut self, stmt: &Statement) -> Result<QueryResult> {
        // Temporary object creation → persistent stand-in (paper §3,
        // "Temporary Objects"). The liveness marker is exempt — it must stay
        // genuinely temporary.
        if let Some(temp) = creates_temp_object(stmt).cloned() {
            let kind = match stmt {
                Statement::CreateProc(_) => PhoenixObject::Procedure,
                _ => PhoenixObject::Table,
            };
            let stand_in = self.namer.temp_stand_in(&temp);
            let renamed = rename_table_refs(stmt, &temp, &stand_in);
            let r = self.run_ddl_reconciled(&render_statement(&renamed))?;
            self.ctx.map_temp(temp, kind, stand_in);
            return Ok(r);
        }
        if let Some(temp) = drops_temp_object(stmt).cloned() {
            if let Some(obj) = self.ctx.unmap_temp(&temp) {
                let renamed = rename_table_refs(stmt, &temp, &obj.name);
                let r = self.run_ddl_reconciled(&render_statement(&renamed))?;
                // The stand-in no longer exists: demote it from verified
                // session state (recovery must not require it) to debris
                // (the termination sweep stays harmless).
                self.ctx.demote(&obj.name);
                return Ok(r);
            }
            // Unknown temp object: let the server report it.
            return self.mapped.execute(&render_statement(stmt));
        }
        let sql = render_statement(stmt);
        if self.ctx.txn_open {
            return self.run_in_txn_context(&sql);
        }
        self.run_ddl_reconciled(&sql)
    }

    /// Run DDL with resubmission after recovery; an `AlreadyExists` (CREATE)
    /// or `NotFound` (DROP) on a *resubmitted* statement means the original
    /// execution succeeded and only its reply was lost.
    fn run_ddl_reconciled(&mut self, sql: &str) -> Result<QueryResult> {
        let mut resubmitted = false;
        loop {
            match self.mapped.execute(sql) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    self.replay_open_txn()?;
                    self.stats.resubmissions += 1;
                    resubmitted = true;
                }
                Err(DriverError::Sql { code, .. })
                    if resubmitted
                        && (code == codes::ALREADY_EXISTS || code == codes::NOT_FOUND) =>
                {
                    return Ok(QueryResult {
                        outcome: Outcome::Done,
                        messages: Vec::new(),
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }

    // -----------------------------------------------------------------------
    // Forwarding with recovery
    // -----------------------------------------------------------------------

    /// Forward an idempotent statement on the mapped connection, recovering
    /// and resubmitting on communication failure.
    pub(crate) fn run_mapped_retry(&mut self, sql: &str) -> Result<QueryResult> {
        loop {
            match self.mapped.execute(sql) {
                Ok(r) => return Ok(r),
                Err(e) if e.is_comm() => {
                    self.recover()?;
                    self.replay_open_txn()?;
                    self.stats.resubmissions += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Forward a statement, logging it in the open application transaction
    /// (so the transaction can be replayed).
    fn run_in_txn_context(&mut self, sql: &str) -> Result<QueryResult> {
        let r = self.run_mapped_retry(sql)?;
        self.ctx.txn_log_statement(sql);
        Ok(r)
    }

    // -----------------------------------------------------------------------
    // Recovery (paper §3, "Server and Session Crash Recovery")
    // -----------------------------------------------------------------------

    /// Recover the virtual session after a detected failure.
    ///
    /// Phase 0 — decide crash vs. blip with the liveness proxy on the
    /// private connection. Phase 1 — rebuild connections and replay the
    /// session context. Phase 2 — verify that every Phoenix-materialized
    /// table survived database recovery. (Statement-level reinstallation —
    /// repositioning result delivery, probing in-flight requests — is done
    /// by the call sites that know what was in flight.)
    pub(crate) fn recover(&mut self) -> Result<()> {
        self.stats.recoveries += 1;
        journal().record(
            "core",
            EventKind::CrashDetected,
            "communication failure intercepted; recovering virtual session",
        );
        let t0 = std::time::Instant::now();
        let deadline = t0 + self.config.recovery.max_wait;

        // The whole recovery sequence retries as a unit: a *second* crash
        // landing mid-recovery just sends us around again, until the
        // configured window is exhausted (then the communication error goes
        // to the application, per the paper's give-up policy).
        loop {
            match self.try_recover_once() {
                Ok(()) => {
                    let us = t0.elapsed().as_micros() as u64;
                    self.stats.last_recovery_virtual_us = us;
                    self.stats.recovery_virtual_us += us;
                    let m = core_metrics();
                    m.recoveries.inc();
                    m.recovery_us.record(us);
                    journal().record(
                        "core",
                        EventKind::RecoveryComplete,
                        format!("virtual session re-established in {us} us"),
                    );
                    return Ok(());
                }
                Err(e) if e.is_comm() && std::time::Instant::now() < deadline => {
                    std::thread::sleep(self.config.recovery.ping_interval);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One attempt at the full recovery sequence (see [`Self::recover`]).
    fn try_recover_once(&mut self) -> Result<()> {
        // Phase 0: if the private connection's session still exists, the
        // server never crashed — only the mapped link failed.
        let marker = self.namer.alive_marker();
        let blip = !self.private.is_poisoned()
            && recovery::session_alive(&mut self.private, &marker).unwrap_or(false);

        if !blip {
            // Full path: ping until *some* listed server answers a login —
            // rotating through the whole server list, so a promoted standby
            // is found as readily as a restarted primary — then rebuild the
            // private connection there and re-create the proxy marker.
            let (private, attempts) = recovery::reconnect_loop(
                &self.env,
                &self.addrs,
                &self.user,
                &self.database,
                Vec::new(),
                &self.config.recovery,
            )?;
            // Attempt k dialed addrs[(k-1) % len]: the session now lives on
            // the address the final (successful) attempt hit.
            self.current = (attempts as usize - 1) % self.addrs.len();
            self.stats.reconnect_attempts += attempts;
            self.private = private;
            recovery::create_marker(&mut self.private, &marker)?;
            dml::ensure_status_table(&mut self.private)?;
        }

        // Phase 1: rebuild the mapped connection, replaying the recorded
        // session context (login info + SET options). Pinned to the server
        // the private connection landed on — probe and execution must see
        // the same database. The pinned wait is clamped to a few ping
        // intervals: if this one server dies between the phases (a crash
        // can race phase 0 onto a half-dead primary whose listener closes
        // a moment later), retrying the single pinned address would burn
        // the whole recovery window on connection-refused. Failing fast
        // instead — with the private link poisoned so the blip shortcut
        // cannot re-trust a session on the dead server — sends the outer
        // loop around the full sequence, which rotates to the survivors.
        let pinned = std::slice::from_ref(&self.addrs[self.current]);
        let mut pinned_settings = self.config.recovery.clone();
        pinned_settings.max_wait = pinned_settings
            .max_wait
            .min((pinned_settings.ping_interval * 10).max(std::time::Duration::from_millis(200)));
        let (mapped, attempts) = match recovery::reconnect_loop(
            &self.env,
            pinned,
            &self.user,
            &self.database,
            self.ctx.options.clone(),
            &pinned_settings,
        ) {
            Ok(v) => v,
            Err(e) => {
                self.private.poison();
                return Err(e);
            }
        };
        self.stats.reconnect_attempts += attempts;
        self.mapped = mapped;
        journal().record(
            "core",
            EventKind::ContextReinstalled,
            format!(
                "mapped connection rebuilt; {} SET option(s) replayed",
                self.ctx.options.len()
            ),
        );

        if !blip {
            // Phase 2: verify materialized session state was recovered by
            // the database recovery mechanisms.
            let mut verified = 0u64;
            for obj in self.ctx.created.clone() {
                if obj.kind == PhoenixObject::Table {
                    if !recovery::verify_table(&mut self.private, &obj.name)? {
                        return Err(DriverError::Recovery(format!(
                            "phoenix session state lost: table {} missing after recovery",
                            obj.name
                        )));
                    }
                    verified += 1;
                }
            }
            journal().record(
                "core",
                EventKind::StateVerified,
                format!("{verified} materialized table(s) verified present"),
            );
        }
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Temp-object redirection
    // -----------------------------------------------------------------------

    /// Rewrite references to known temp objects into their persistent
    /// stand-ins.
    pub(crate) fn redirect_temps(&self, stmt: &Statement) -> Statement {
        let mut current = stmt.clone();
        for temp in temp_object_refs(stmt) {
            // Skip the object being created or dropped by this very
            // statement — DDL handling resolves those names itself (and
            // must see the temp spelling to update the redirection map).
            if creates_temp_object(stmt).is_some_and(|c| c.same_as(&temp))
                || drops_temp_object(stmt).is_some_and(|d| d.same_as(&temp))
            {
                continue;
            }
            if let Some(obj) = self.ctx.temp_stand_in(&temp) {
                current = rename_table_refs(&current, &temp, &obj.name.clone());
            }
        }
        // EXEC of a redirected temp procedure.
        if let Statement::Exec(e) = &current {
            if e.name.is_temp() {
                if let Some(obj) = self.ctx.temp_stand_in(&e.name) {
                    current = rename_table_refs(&current, &e.name.clone(), &obj.name.clone());
                }
            }
        }
        current
    }
}

fn dml_reply(out: DmlOutcome) -> QueryResult {
    QueryResult {
        outcome: Outcome::RowsAffected(out.affected),
        messages: out.messages,
    }
}

/// Interpret a pipelined wrapper's batch reply: `[BEGIN; dml; status
/// insert; COMMIT]`. The DML's own item (index 1) carries the outcome; any
/// error item aborts the wrapper and surfaces as the statement's error.
fn batch_outcome(
    items: &[phoenix_wire::message::BatchItem],
) -> std::result::Result<DmlOutcome, DriverError> {
    use phoenix_wire::message::BatchItem;
    for item in items {
        if let BatchItem::Err { code, message } = item {
            return Err(DriverError::Sql {
                code: *code,
                message: message.clone(),
            });
        }
    }
    match items.get(1) {
        Some(BatchItem::Ok { outcome, messages }) => Ok(DmlOutcome {
            affected: match outcome {
                Outcome::RowsAffected(n) => *n,
                _ => 0,
            },
            messages: messages.clone(),
        }),
        _ => Err(DriverError::Protocol(format!(
            "pipelined DML wrapper returned {} item(s) without an error",
            items.len()
        ))),
    }
}

/// Extract a value from a SET literal (non-literals are stored rendered).
fn literal_to_value(e: &phoenix_sql::ast::Expr) -> Value {
    use phoenix_sql::ast::{Expr, Literal};
    match e {
        Expr::Literal(Literal::Null) => Value::Null,
        Expr::Literal(Literal::Int(i)) => Value::Int(*i),
        Expr::Literal(Literal::Float(f)) => Value::Float(*f),
        Expr::Literal(Literal::String(s)) => Value::Text(s.clone()),
        Expr::Literal(Literal::Bool(b)) => Value::Bool(*b),
        Expr::Literal(Literal::Date(d)) => phoenix_storage::types::parse_date(d)
            .map(Value::Date)
            .unwrap_or(Value::Null),
        other => Value::Text(phoenix_sql::display::render_expr(other)),
    }
}
