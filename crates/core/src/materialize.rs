//! Result-set materialization (paper §3, "Result Sets").
//!
//! The four-step pipeline, verbatim from the paper:
//!
//! 1. **Metadata probe** — append `WHERE 0=1` to the SELECT and execute it.
//!    The server compiles the query and returns only the result metadata:
//!    one round trip, no rows, minimal server load.
//! 2. **Create the persistent table** — reformat the metadata into a
//!    `CREATE TABLE` in the `phoenix` namespace (a permanent table, not a
//!    temporary one).
//! 3. **Capture** — move the result into the table *at the server*:
//!    by default via a generated stored procedure
//!    (`CREATE PROCEDURE p AS INSERT INTO t <select>` + `EXEC p`), so the
//!    data never crosses the network and the action is a single atomic
//!    statement. Alternative strategies exist for the ablation benches.
//! 4. Delivery (the `SELECT * FROM t` and position tracking) is handled by
//!    [`crate::statement::PhoenixStatement`].

use phoenix_driver::Connection;
use phoenix_sql::ast::{ColumnDef, CreateTableStmt, ObjectName, SelectStmt, Statement};
use phoenix_sql::display::{render_expr, render_statement};
use phoenix_sql::rewrite;
use phoenix_storage::types::{format_date, Row, Schema, Value};

use crate::config::CaptureStrategy;
use crate::Result;

/// Outcome of materializing one result set.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The persistent table now holding the result.
    pub table: ObjectName,
    /// Result-set schema, as probed.
    pub schema: Schema,
    /// The capture procedure, when the `ServerProc` strategy created one
    /// (registered for cleanup by the caller).
    pub capture_proc: Option<ObjectName>,
    /// Number of rows captured.
    pub rows: u64,
}

/// Step 1: probe result metadata with the `WHERE 0=1` trick.
pub fn probe_metadata(conn: &mut Connection, select: &SelectStmt) -> Result<Schema> {
    let probe = rewrite::metadata_probe(select);
    let sql = render_statement(&Statement::Select(probe));
    let result = conn.execute(&sql)?;
    match result.schema() {
        Some(s) => Ok(s.clone()),
        None => Err(phoenix_driver::DriverError::Protocol(
            "metadata probe returned no schema".into(),
        )),
    }
}

/// Step 2: reformat metadata into a CREATE TABLE statement.
///
/// Result-set column names may be arbitrary rendered expressions
/// (`COUNT(*)`, `SUM(total) / COUNT(*)`) or duplicates; the persistent
/// table gets sanitized positional names where needed. Delivery reads the
/// table positionally (`SELECT *`), and the application always sees the
/// probed schema with the original names.
pub fn create_table_sql(name: &ObjectName, schema: &Schema) -> String {
    let mut seen: Vec<String> = Vec::new();
    let columns = schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let clean = sanitize_column_name(&c.name, i, &seen);
            seen.push(clean.to_ascii_lowercase());
            ColumnDef {
                name: clean,
                type_name: c.dtype.sql_name().to_string(),
                not_null: false, // captured results may contain NULLs freely
            }
        })
        .collect();
    let stmt = Statement::CreateTable(CreateTableStmt {
        name: name.clone(),
        columns,
        primary_key: Vec::new(),
    });
    render_statement(&stmt)
}

/// Make a result-set column name storable: plain unique identifiers pass
/// through, anything else becomes `col_<i>`.
fn sanitize_column_name(name: &str, index: usize, seen: &[String]) -> String {
    let ok = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !seen.contains(&name.to_ascii_lowercase());
    if ok {
        name.to_string()
    } else {
        format!("col_{index}")
    }
}

/// Render a runtime value as a SQL literal (for the client-round-trip
/// capture strategy and key lookups).
pub fn value_literal(v: &Value) -> String {
    use phoenix_sql::ast::{Expr, Literal};
    let lit = match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Text(s) => Literal::String(s.clone()),
        Value::Bool(b) => Literal::Bool(*b),
        Value::Date(d) => Literal::Date(format_date(*d)),
    };
    render_expr(&Expr::Literal(lit))
}

/// Steps 1–3: materialize `select` into a fresh persistent table.
///
/// `worker` is the connection Phoenix performs its masked activity on (the
/// paper's *private* connection); `mapped` is the application's connection,
/// used only by the `ClientRoundTrip` ablation strategy (which pulls the
/// rows as the application's query would have).
pub fn materialize(
    mapped: &mut Connection,
    worker: &mut Connection,
    table: ObjectName,
    capture_proc_name: ObjectName,
    select: &SelectStmt,
    strategy: CaptureStrategy,
) -> Result<Materialized> {
    // Step 1 — probe on the mapped connection (the modified query travels
    // the same path the application's query would).
    let schema = probe_metadata(mapped, select)?;

    // Step 2 — create the persistent result table.
    worker.execute(&create_table_sql(&table, &schema))?;

    // Step 3 — capture.
    let mut capture_proc = None;
    let rows = match strategy {
        CaptureStrategy::ServerProc => {
            let proc =
                rewrite::capture_proc(capture_proc_name.clone(), table.clone(), select.clone());
            worker.execute(&render_statement(&Statement::CreateProc(proc)))?;
            capture_proc = Some(capture_proc_name.clone());
            let r = worker.execute(&format!("EXEC {capture_proc_name}"))?;
            r.affected()
        }
        CaptureStrategy::ServerInsert => {
            let ins = rewrite::capture_into(table.clone(), select.clone());
            let r = worker.execute(&render_statement(&Statement::Insert(ins)))?;
            r.affected()
        }
        CaptureStrategy::ClientRoundTrip => {
            // Ablation baseline: ship every row to the client and back.
            let sql = render_statement(&Statement::Select(select.clone()));
            let result = mapped.execute(&sql)?;
            let rows = result.rows().to_vec();
            insert_rows_back(worker, &table, &rows)?;
            rows.len() as u64
        }
    };

    Ok(Materialized {
        table,
        schema,
        capture_proc,
        rows,
    })
}

/// Push client-held rows back to the server in batched INSERT statements.
fn insert_rows_back(conn: &mut Connection, table: &ObjectName, rows: &[Row]) -> Result<()> {
    const BATCH: usize = 128;
    for chunk in rows.chunks(BATCH) {
        let mut sql = format!("INSERT INTO {table} VALUES ");
        for (i, row) in chunk.iter().enumerate() {
            if i > 0 {
                sql.push_str(", ");
            }
            sql.push('(');
            for (j, v) in row.iter().enumerate() {
                if j > 0 {
                    sql.push_str(", ");
                }
                sql.push_str(&value_literal(v));
            }
            sql.push(')');
        }
        conn.execute(&sql)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_storage::types::{Column, DataType};

    #[test]
    fn create_table_sql_renders_and_parses() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("name", DataType::Text),
            Column::new("total", DataType::Float),
            Column::new("due", DataType::Date),
            Column::new("flag", DataType::Bool),
        ]);
        let name = ObjectName::qualified("phoenix", "rs_1_1");
        let sql = create_table_sql(&name, &schema);
        assert!(sql.starts_with("CREATE TABLE phoenix.rs_1_1"), "{sql}");
        // All five types must round-trip through the parser.
        phoenix_sql::parse_statement(&sql).unwrap();
    }

    #[test]
    fn value_literals_are_parseable() {
        for v in [
            Value::Null,
            Value::Int(-7),
            Value::Float(2.5),
            Value::Text("O'Brien".into()),
            Value::Bool(true),
            Value::Date(9000),
        ] {
            let lit = value_literal(&v);
            phoenix_sql::parse_statement(&format!("SELECT {lit}")).unwrap();
        }
        assert_eq!(value_literal(&Value::Text("O'Brien".into())), "'O''Brien'");
    }
}
