//! The client-side session context and request log.
//!
//! The paper (§1, §3): "Some state information is also saved on the client,
//! but need not be persistent there because we are not protecting against
//! client failures. This state permits the synchronization of recovered
//! server state with the client state."
//!
//! Concretely Phoenix keeps, in client memory only:
//!
//! * the login information and every `SET` option, replayed verbatim when a
//!   post-crash connection is built (recovery phase 1);
//! * the temp-object redirection map (`#x` → `phoenix.tmp_…_x`);
//! * the registry of every object Phoenix created on the server, so clean
//!   termination can drop them all;
//! * the statements of the currently open *application* transaction, so an
//!   uncommitted transaction lost in a crash can be transparently replayed
//!   (application message logging).

use phoenix_sql::ast::ObjectName;
use phoenix_storage::types::Value;

/// What kind of server object Phoenix created (for cleanup ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhoenixObject {
    /// A persistent table.
    Table,
    /// A stored procedure.
    Procedure,
}

/// One entry in the created-objects registry.
#[derive(Debug, Clone)]
pub struct RegisteredObject {
    /// Table or procedure.
    pub kind: PhoenixObject,
    /// The object's server-side name.
    pub name: ObjectName,
}

/// Replayable session context plus volatile bookkeeping.
#[derive(Debug, Default)]
pub struct SessionContext {
    /// `SET` options in application order (latest value per name).
    pub options: Vec<(String, Value)>,
    /// Temp-object redirections currently in force.
    pub temp_map: Vec<(ObjectName, RegisteredObject)>,
    /// Every Phoenix-created server object, for cleanup at session end.
    pub created: Vec<RegisteredObject>,
    /// Names reserved for objects whose creation may not have completed
    /// (crash mid-materialization). Swept with `DROP … IF EXISTS` at
    /// cleanup, but exempt from post-recovery verification.
    pub debris: Vec<RegisteredObject>,
    /// Statement log of the open application transaction (SQL text as
    /// forwarded to the server), empty when no app transaction is open.
    pub txn_log: Vec<String>,
    /// Is an application transaction open?
    pub txn_open: bool,
    /// Request tag under which the open transaction's outcome will be
    /// recorded in the status table at commit.
    pub txn_tag: Option<u64>,
}

impl SessionContext {
    /// An empty context.
    pub fn new() -> SessionContext {
        SessionContext::default()
    }

    /// Record a SET option for replay (latest value wins, order preserved).
    pub fn record_option(&mut self, name: &str, value: Value) {
        if let Some(slot) = self
            .options
            .iter_mut()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
        {
            slot.1 = value;
        } else {
            self.options.push((name.to_string(), value));
        }
    }

    /// Register a Phoenix-created object for cleanup.
    pub fn register(&mut self, kind: PhoenixObject, name: ObjectName) {
        self.created.push(RegisteredObject { kind, name });
    }

    /// Reserve a name whose creation is about to be attempted; swept at
    /// cleanup but not treated as durable session state by recovery.
    pub fn reserve(&mut self, kind: PhoenixObject, name: ObjectName) {
        self.debris.push(RegisteredObject { kind, name });
    }

    /// Demote an object from verified session state back to debris — used by
    /// eager cleanup: the object is (being) dropped, so recovery must no
    /// longer require it to exist, but the termination sweep still covers it
    /// in case the drop itself was interrupted.
    pub fn demote(&mut self, name: &ObjectName) {
        if let Some(idx) = self.created.iter().position(|o| o.name.same_as(name)) {
            let obj = self.created.remove(idx);
            self.debris.push(obj);
        }
    }

    /// Install a temp-object redirection.
    pub fn map_temp(&mut self, temp: ObjectName, kind: PhoenixObject, stand_in: ObjectName) {
        self.register(kind, stand_in.clone());
        self.temp_map.push((
            temp,
            RegisteredObject {
                kind,
                name: stand_in,
            },
        ));
    }

    /// Current redirection for a temp name, if any.
    pub fn temp_stand_in(&self, temp: &ObjectName) -> Option<&RegisteredObject> {
        self.temp_map
            .iter()
            .rev()
            .find(|(t, _)| t.same_as(temp))
            .map(|(_, o)| o)
    }

    /// Remove a redirection (temp object dropped by the application).
    pub fn unmap_temp(&mut self, temp: &ObjectName) -> Option<RegisteredObject> {
        let idx = self.temp_map.iter().rposition(|(t, _)| t.same_as(temp))?;
        let (_, obj) = self.temp_map.remove(idx);
        Some(obj)
    }

    /// Begin logging an application transaction.
    pub fn txn_begin(&mut self, tag: u64) {
        self.txn_open = true;
        self.txn_tag = Some(tag);
        self.txn_log.clear();
    }

    /// Log a statement executed inside the open application transaction.
    pub fn txn_log_statement(&mut self, sql: &str) {
        if self.txn_open {
            self.txn_log.push(sql.to_string());
        }
    }

    /// Transaction finished (committed or rolled back).
    pub fn txn_end(&mut self) {
        self.txn_open = false;
        self.txn_tag = None;
        self.txn_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_latest_value_wins() {
        let mut c = SessionContext::new();
        c.record_option("a", Value::Int(1));
        c.record_option("b", Value::Int(2));
        c.record_option("A", Value::Int(3));
        assert_eq!(
            c.options,
            vec![
                ("a".to_string(), Value::Int(3)),
                ("b".to_string(), Value::Int(2))
            ]
        );
    }

    #[test]
    fn temp_map_roundtrip() {
        let mut c = SessionContext::new();
        let temp = ObjectName::bare("#w");
        let stand_in = ObjectName::qualified("phoenix", "tmp_1_1_w");
        c.map_temp(temp.clone(), PhoenixObject::Table, stand_in.clone());
        assert!(c.temp_stand_in(&temp).unwrap().name.same_as(&stand_in));
        assert_eq!(c.created.len(), 1);
        let removed = c.unmap_temp(&temp).unwrap();
        assert!(removed.name.same_as(&stand_in));
        assert!(c.temp_stand_in(&temp).is_none());
    }

    #[test]
    fn txn_logging() {
        let mut c = SessionContext::new();
        assert!(!c.txn_open);
        c.txn_log_statement("ignored before begin");
        assert!(c.txn_log.is_empty());
        c.txn_begin(1);
        c.txn_log_statement("INSERT INTO t VALUES (1)");
        c.txn_log_statement("UPDATE t SET v = 2");
        assert_eq!(c.txn_log.len(), 2);
        c.txn_end();
        assert!(c.txn_log.is_empty());
        assert!(c.txn_tag.is_none());
    }
}
