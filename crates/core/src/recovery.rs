//! Failure detection and the recovery primitives (paper §3, "Server and
//! Session Crash Recovery").
//!
//! Detection: Phoenix notices trouble by (i) intercepting communication
//! errors raised by the driver or (ii) timing out application requests
//! (timeouts surface as `Comm` errors from the driver, so both funnel into
//! one path).
//!
//! Once trouble is detected, Phoenix pings the server and periodically
//! attempts to reconnect. If it cannot connect within the configured window
//! it gives up and passes the communication error on to the application —
//! the paper's exact policy. When it does get through, the *liveness proxy*
//! (a genuine session temp table) distinguishes "our session still exists —
//! mere communication failure" from "the session was erased — the server
//! crashed", driving the cheap vs. full recovery path.

use std::time::{Duration, Instant};

use phoenix_driver::{error::codes, Connection, DriverError, Environment};
use phoenix_obs::{journal, EventKind};
use phoenix_sql::ast::ObjectName;
use phoenix_storage::types::Value;

use crate::config::RecoverySettings;
use crate::metrics::core_metrics;
use crate::Result;

/// Attempt to (re)connect and log in until it succeeds or `settings.max_wait`
/// elapses. Returns the new connection and the number of attempts made.
///
/// `addrs` is the session's *server list* — the primary first, then any
/// standbys. The loop rotates through it round-robin: attempt `k` dials
/// `addrs[k % addrs.len()]`, so when the primary is gone (connection
/// refused/reset, both `Comm` and therefore retryable) the very next
/// attempt tries the standby instead of hammering the dead address for the
/// whole recovery window. A standby that is not yet promoted answers logins
/// with the retryable `Fenced` code, which keeps the loop rotating until
/// promotion completes — at which point the login lands and recovery
/// proceeds exactly as it would after a plain restart.
pub fn reconnect_loop(
    env: &Environment,
    addrs: &[String],
    user: &str,
    database: &str,
    options: Vec<(String, Value)>,
    settings: &RecoverySettings,
) -> Result<(Connection, u64)> {
    assert!(
        !addrs.is_empty(),
        "reconnect_loop needs at least one address"
    );
    let deadline = Instant::now() + settings.max_wait;
    let m = core_metrics();
    let mut attempts = 0u64;
    loop {
        let addr = &addrs[(attempts as usize) % addrs.len()];
        attempts += 1;
        m.reconnect_attempts.inc();
        journal().record(
            "core",
            EventKind::ReconnectAttempt,
            format!("attempt {attempts} to {addr}"),
        );
        match env.connect_with_options(addr, user, database, options.clone()) {
            Ok(conn) => {
                journal().record(
                    "core",
                    EventKind::Reconnected,
                    format!("connected to {addr} after {attempts} attempt(s)"),
                );
                return Ok((conn, attempts));
            }
            Err(e) => {
                // Only transient failures are worth waiting out: connection
                // refused / reset (`Comm`) or the server's retryable `Busy`
                // (at capacity, admission queue full). Anything else — a
                // rejected login, a protocol error — would fail identically
                // on every retry, so surface it immediately instead of
                // burning the whole recovery window on it.
                if !e.is_retryable() {
                    return Err(e);
                }
                let now = Instant::now();
                if now >= deadline {
                    // Give up: pass the communication error to the app.
                    return Err(e);
                }
                // Clamp the sleep to the remaining window so the loop never
                // overshoots max_wait by (almost) a whole ping interval —
                // the app asked to wait max_wait, not max_wait rounded up.
                m.backoff_sleeps.inc();
                std::thread::sleep(settings.ping_interval.min(deadline - now));
            }
        }
    }
}

/// The liveness proxy test: does the session temp marker still exist on
/// `conn`'s session?
///
/// * `Ok(true)` — the marker is there: the session survived; whatever we
///   saw was a communication failure or delay, not a server crash.
/// * `Ok(false)` — the server answered but the marker is gone: the session
///   was erased (server crash, or the session was otherwise terminated).
/// * `Err` — could not even ask (connection dead too).
pub fn session_alive(conn: &mut Connection, marker: &ObjectName) -> Result<bool> {
    match conn.execute(&format!("SELECT COUNT(*) FROM {marker}")) {
        Ok(_) => Ok(true),
        Err(DriverError::Sql { code, .. }) if code == codes::NOT_FOUND => Ok(false),
        Err(e) => Err(e),
    }
}

/// Create the session liveness marker (a *real* temp table — it must die
/// with the session for the proxy test to mean anything).
pub fn create_marker(conn: &mut Connection, marker: &ObjectName) -> Result<()> {
    conn.execute(&format!("CREATE TABLE {marker} (alive INT)"))?;
    Ok(())
}

/// Verify that a Phoenix-materialized table still exists after recovery
/// (phase 2's "verifies that all application state materialized in tables on
/// the server was recovered by the database recovery mechanisms").
pub fn verify_table(conn: &mut Connection, table: &ObjectName) -> Result<bool> {
    match conn.execute(&format!("SELECT * FROM {table} WHERE 0 = 1")) {
        Ok(_) => Ok(true),
        Err(DriverError::Sql { code, .. }) if code == codes::NOT_FOUND => Ok(false),
        Err(e) => Err(e),
    }
}

/// Sleep helper used between dependent recovery stages.
pub fn backoff(settings: &RecoverySettings, since: Instant) -> Option<Duration> {
    if since.elapsed() >= settings.max_wait {
        None
    } else {
        Some(settings.ping_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The reconnect counters are process-global; serialize the tests that
    /// exercise `reconnect_loop` so their deltas stay exact.
    static RECONNECT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn reconnect_gives_up_after_max_wait() {
        let _g = RECONNECT_LOCK.lock().unwrap();
        let env = Environment::new().with_connect_timeout(Duration::from_millis(50));
        let settings = RecoverySettings {
            ping_interval: Duration::from_millis(10),
            max_wait: Duration::from_millis(100),
            read_timeout: None,
        };
        // Nothing listens on this port.
        let started = Instant::now();
        let r = reconnect_loop(
            &env,
            &["127.0.0.1:1".to_string()],
            "u",
            "d",
            Vec::new(),
            &settings,
        );
        assert!(r.is_err());
        assert!(started.elapsed() >= Duration::from_millis(100));
    }

    #[test]
    fn reconnect_does_not_overshoot_max_wait() {
        let _g = RECONNECT_LOCK.lock().unwrap();
        let env = Environment::new().with_connect_timeout(Duration::from_millis(50));
        let settings = RecoverySettings {
            // A ping interval much larger than the window: without the
            // deadline clamp the final sleep alone would take 5 s.
            ping_interval: Duration::from_secs(5),
            max_wait: Duration::from_millis(100),
            read_timeout: None,
        };
        let started = Instant::now();
        let r = reconnect_loop(
            &env,
            &["127.0.0.1:1".to_string()],
            "u",
            "d",
            Vec::new(),
            &settings,
        );
        assert!(r.is_err());
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "reconnect_loop overshot max_wait: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn reconnect_attempts_match_counter_and_sleeps_stay_clamped() {
        let _g = RECONNECT_LOCK.lock().unwrap();
        let m = core_metrics();
        let env = Environment::new().with_connect_timeout(Duration::from_millis(50));
        let settings = RecoverySettings {
            // A ping interval far beyond the window: every sleep must be
            // clamped to the remaining budget or the loop blows way past
            // max_wait.
            ping_interval: Duration::from_secs(30),
            max_wait: Duration::from_millis(120),
            read_timeout: None,
        };
        let attempts_before = m.reconnect_attempts.get();
        let sleeps_before = m.backoff_sleeps.get();
        let started = Instant::now();
        // Nothing listens on this port: every attempt fails fast.
        let r = reconnect_loop(
            &env,
            &["127.0.0.1:1".to_string()],
            "u",
            "d",
            Vec::new(),
            &settings,
        );
        assert!(r.is_err());
        let elapsed = started.elapsed();
        assert!(
            elapsed >= settings.max_wait,
            "gave up before max_wait: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "a sleep escaped the clamp: {elapsed:?}"
        );

        let attempts = m.reconnect_attempts.get() - attempts_before;
        let sleeps = m.backoff_sleeps.get() - sleeps_before;
        // Fast connection-refused + clamped sleeps: the window fits at
        // least an initial attempt and a post-sleep final attempt.
        assert!(attempts >= 2, "expected ≥ 2 attempts, got {attempts}");
        // Every attempt but the last (which hits the deadline and returns)
        // is followed by exactly one clamped sleep.
        assert_eq!(sleeps, attempts - 1);
    }

    #[test]
    fn reconnect_rotates_to_second_address_when_first_refuses() {
        let _g = RECONNECT_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join(format!(
            "phoenix-core-rotate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let h = phoenix_server::ServerHarness::start(&dir, phoenix_engine::EngineConfig::default())
            .unwrap();
        let env = Environment::new().with_connect_timeout(Duration::from_millis(100));
        let settings = RecoverySettings {
            ping_interval: Duration::from_millis(5),
            max_wait: Duration::from_secs(5),
            read_timeout: None,
        };
        // First address refuses (nothing listens there); second is live.
        // The failover shape: the primary's machine is gone, the standby
        // is next in the server list.
        let addrs = ["127.0.0.1:1".to_string(), h.addr()];
        let (mut conn, attempts) =
            reconnect_loop(&env, &addrs, "u", "d", Vec::new(), &settings).unwrap();
        assert_eq!(
            attempts, 2,
            "attempt 1 must eat the refusal and attempt 2 must rotate to the live server"
        );
        conn.execute("SELECT 1").unwrap();
        drop(conn);
        drop(h);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_respects_deadline() {
        let settings = RecoverySettings {
            ping_interval: Duration::from_millis(5),
            max_wait: Duration::from_millis(50),
            read_timeout: None,
        };
        let t0 = Instant::now();
        assert!(backoff(&settings, t0).is_some());
        std::thread::sleep(Duration::from_millis(60));
        assert!(backoff(&settings, t0).is_none());
    }
}
