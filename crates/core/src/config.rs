//! Phoenix configuration: capture/reposition strategies and recovery tuning.

use std::time::Duration;

/// How result sets are materialized into the persistent table (paper §3,
/// "Default Result Set").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureStrategy {
    /// The paper's strategy: create a stored procedure
    /// `CREATE PROCEDURE p AS INSERT INTO t <select>` and EXEC it — "all
    /// data is moved locally at the server, not sent first to the client",
    /// one round trip, atomic.
    ServerProc,
    /// Direct `INSERT INTO t <select>` — still server-side and atomic, one
    /// fewer object to manage; ablation A2 variant.
    ServerInsert,
    /// Anti-pattern baseline for ablation A2: run the SELECT, pull every row
    /// to the client, and push them back with batched INSERTs. Demonstrates
    /// why the paper insists on server-side capture.
    ClientRoundTrip,
}

/// How delivery is re-positioned after recovery (paper §4, Figure 2 uses a
/// server-side stored-procedure advance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepositionStrategy {
    /// Re-open delivery with a server-side skip (`… OFFSET <delivered>`):
    /// no tuples are shipped while repositioning. Matches the paper's
    /// "advancing through the result set on the server without passing
    /// tuples to the client".
    ServerSide,
    /// Re-open from the start and fetch-and-discard up to the remembered
    /// position. Ablation A1 baseline; cost grows with position.
    ClientScan,
}

/// Recovery behaviour.
#[derive(Debug, Clone)]
pub struct RecoverySettings {
    /// Interval between reconnect attempts while the server is down.
    pub ping_interval: Duration,
    /// Give up after this long and surface the communication error to the
    /// application (the paper: "if after a period of time Phoenix/ODBC is
    /// unable to connect … it passes the communication error on").
    pub max_wait: Duration,
    /// Read timeout applied to Phoenix's connections; a request exceeding it
    /// triggers failure detection.
    pub read_timeout: Option<Duration>,
}

impl Default for RecoverySettings {
    fn default() -> Self {
        RecoverySettings {
            ping_interval: Duration::from_millis(50),
            max_wait: Duration::from_secs(30),
            read_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// Full Phoenix configuration.
#[derive(Debug, Clone)]
pub struct PhoenixConfig {
    /// How result sets are captured into persistent tables.
    pub capture: CaptureStrategy,
    /// How interrupted delivery is re-positioned after recovery.
    pub reposition: RepositionStrategy,
    /// Failure-detection and reconnect tuning.
    pub recovery: RecoverySettings,
    /// Rows per block when Phoenix delivers result sets from its persistent
    /// tables.
    pub fetch_block: usize,
    /// Disable persistence entirely (pass-through mode). Used by benchmarks
    /// to measure the native baseline through identical code paths.
    pub passthrough: bool,
    /// Drop a statement's persistent result/key tables as soon as the
    /// result is consumed (or the statement is re-executed/closed), instead
    /// of only at session termination as the paper does. Bounds server-side
    /// growth for long sessions; an extension beyond the paper, off by
    /// default for fidelity.
    pub eager_cleanup: bool,
}

impl Default for PhoenixConfig {
    fn default() -> Self {
        PhoenixConfig {
            capture: CaptureStrategy::ServerProc,
            reposition: RepositionStrategy::ServerSide,
            recovery: RecoverySettings::default(),
            fetch_block: 64,
            passthrough: false,
            eager_cleanup: false,
        }
    }
}

impl PhoenixConfig {
    /// Builder: capture strategy.
    pub fn with_capture(mut self, c: CaptureStrategy) -> Self {
        self.capture = c;
        self
    }

    /// Builder: reposition strategy.
    pub fn with_reposition(mut self, r: RepositionStrategy) -> Self {
        self.reposition = r;
        self
    }

    /// Builder: delivery block size (min 1).
    pub fn with_fetch_block(mut self, n: usize) -> Self {
        self.fetch_block = n.max(1);
        self
    }

    /// Builder: eager cleanup of consumed result-set objects.
    pub fn with_eager_cleanup(mut self, on: bool) -> Self {
        self.eager_cleanup = on;
        self
    }

    /// A configuration with all persistence disabled (native behaviour
    /// through identical code paths — benchmark baseline).
    pub fn passthrough() -> Self {
        PhoenixConfig {
            passthrough: true,
            ..PhoenixConfig::default()
        }
    }
}
