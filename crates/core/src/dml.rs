//! Data-modification wrapping and the status table (paper §3, "Data
//! Modification Statements Results" and "Message Results").
//!
//! A data modification has no result set but it *does* have state: the
//! number of tuples affected, and the fact of its completion. Phoenix makes
//! that state **testable** by wrapping each DML statement in a transaction
//! that also inserts an outcome record into `phoenix.status`:
//!
//! ```text
//! BEGIN;
//! <dml>;                                   -- reply carries rows-affected n
//! INSERT INTO phoenix.status VALUES (session, tag, n, messages);
//! COMMIT;
//! ```
//!
//! The table is keyed `(session, tag)`: the process-unique session tag plus
//! a per-session request counter — the same `tag` that travels in protocol
//! v2 tagged frames, so with pipelining a whole in-flight *window* of
//! requests is individually probe-able after a crash. Probing answers the
//! only question that matters: *did request `tag` complete?* Found → return
//! the logged outcome (the preserved reply buffer); absent → the transaction
//! aborted with the crash and the original request is resubmitted — exactly
//! once-semantics for the application.
//!
//! For pipelined submission the whole wrapper travels as **one**
//! `ExecBatch` frame, with `@@ROWCOUNT` standing in for the rows-affected
//! literal (the client has not seen the DML reply yet when it composes the
//! status insert):
//!
//! ```text
//! [BEGIN; <dml>; INSERT INTO phoenix.status VALUES (session, tag,
//!  @@ROWCOUNT, ''); COMMIT]
//! ```
//!
//! The same record doubles as the paper's *reply buffer* persistence: the
//! messages column carries the server messages that would otherwise be lost
//! when a crash lands between commit and reply.

use phoenix_driver::{error::codes, Connection, DriverError};

use crate::naming::STATUS_TABLE;
use crate::Result;

/// A recovered or fresh DML outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DmlOutcome {
    /// Rows affected by the statement.
    pub affected: u64,
    /// Server messages delivered (or preserved) with the reply.
    pub messages: Vec<String>,
}

/// Create the status table if this is the first Phoenix session against the
/// database. Racing sessions are fine: "already exists" is success.
pub fn ensure_status_table(conn: &mut Connection) -> Result<()> {
    let sql = format!(
        "CREATE TABLE {STATUS_TABLE} (session TEXT NOT NULL, tag INT NOT NULL, \
         affected INT, messages TEXT, PRIMARY KEY (session, tag))"
    );
    match conn.execute(&sql) {
        Ok(_) => Ok(()),
        Err(DriverError::Sql { code, .. }) if code == codes::ALREADY_EXISTS => Ok(()),
        Err(e) => Err(e),
    }
}

/// Escape a string for a SQL literal.
fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// The INSERT that records an outcome; issued *inside* the wrapping (or the
/// application's) transaction, so it commits atomically with the work.
pub fn status_insert_sql(session: &str, tag: u64, affected: u64, messages: &[String]) -> String {
    format!(
        "INSERT INTO {STATUS_TABLE} VALUES ({}, {tag}, {affected}, {})",
        quote(session),
        quote(&messages.join("\u{1f}"))
    )
}

/// The pipelined wrapper: one `ExecBatch` payload executing the DML and its
/// status record in a single round trip. `@@ROWCOUNT` is substituted by the
/// server *after* the DML runs, so the record carries the true count even
/// though the client composed the batch before seeing any reply. Messages
/// are not capturable server-side this way; the batch reply carries them
/// live, and a replay after a crash returns none (documented trade-off).
pub fn pipelined_batch(session: &str, tag: u64, dml_sql: &str) -> Vec<String> {
    vec![
        "BEGIN".to_string(),
        dml_sql.to_string(),
        format!(
            "INSERT INTO {STATUS_TABLE} VALUES ({}, {tag}, @@ROWCOUNT, '')",
            quote(session)
        ),
        "COMMIT".to_string(),
    ]
}

/// Wrap one DML statement in a transaction with a status record.
///
/// Errors reported by the server roll the transaction back and surface to
/// the caller; communication failures bubble up for the recovery machinery
/// (which will [`probe_status`] before deciding to resubmit).
pub fn wrap_and_execute(
    conn: &mut Connection,
    session: &str,
    tag: u64,
    dml_sql: &str,
) -> Result<DmlOutcome> {
    conn.execute("BEGIN")?;
    let result = match conn.execute(dml_sql) {
        Ok(r) => r,
        Err(e) => {
            // Server-side statement failure: roll back the wrapper. A comm
            // failure here leaves the transaction to die with the session.
            if !e.is_comm() {
                let _ = conn.execute("ROLLBACK");
            }
            return Err(e);
        }
    };
    let affected = match result.outcome {
        phoenix_wire::message::Outcome::RowsAffected(n) => n,
        _ => 0,
    };
    conn.execute(&status_insert_sql(session, tag, affected, &result.messages))?;
    conn.execute("COMMIT")?;
    Ok(DmlOutcome {
        affected,
        messages: result.messages,
    })
}

/// Probe the status table for a request. `Ok(Some(_))` means the wrapped
/// transaction committed before the crash; the logged outcome is the reply.
pub fn probe_status(conn: &mut Connection, session: &str, tag: u64) -> Result<Option<DmlOutcome>> {
    let sql = format!(
        "SELECT affected, messages FROM {STATUS_TABLE} WHERE session = {} AND tag = {tag}",
        quote(session)
    );
    let result = conn.execute(&sql)?;
    let rows = result.rows();
    if rows.is_empty() {
        return Ok(None);
    }
    let affected = rows[0][0].as_i64().unwrap_or(0) as u64;
    let messages = match rows[0][1].as_str() {
        Some("") | None => Vec::new(),
        Some(s) => s.split('\u{1f}').map(str::to_string).collect(),
    };
    Ok(Some(DmlOutcome { affected, messages }))
}

/// Delete this session's status records (clean termination).
pub fn clear_status(conn: &mut Connection, session: &str) -> Result<()> {
    let sql = format!(
        "DELETE FROM {STATUS_TABLE} WHERE session = {}",
        quote(session)
    );
    conn.execute(&sql)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_insert_sql_parses_and_escapes() {
        let sql = status_insert_sql(
            "12_3",
            7,
            42,
            &["it's done".to_string(), "msg2".to_string()],
        );
        phoenix_sql::parse_statement(&sql).unwrap();
        assert!(sql.contains("''"), "{sql}");
    }

    #[test]
    fn pipelined_batch_statements_parse() {
        let batch = pipelined_batch("12_3", 9, "UPDATE t SET v = 1 WHERE id = 2");
        assert_eq!(batch.len(), 4);
        for sql in &batch {
            phoenix_sql::parse_statement(sql).unwrap();
        }
        assert!(batch[2].contains("@@ROWCOUNT"), "{}", batch[2]);
    }
}
