//! A tiny deterministic PRNG for seed-driven schedule selection.
//!
//! Fault schedules must be reproducible from a `u64` seed alone — no
//! wall-clock, no OS entropy — so the subsystem carries its own generator
//! instead of depending on an external crate. xorshift64* is more than
//! enough: we only ever use it to *pick* crash points, never for anything
//! statistical.

/// xorshift64* generator. Identical sequences for identical seeds, on every
/// platform.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator. A zero seed is mapped to a fixed non-zero value
    /// (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..bound` (`bound == 0` returns 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "sequences should diverge, {same}/64 collisions");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
        assert_eq!(r.next_below(0), 0);
    }
}
