#![warn(missing_docs)]

//! # phoenix-chaos
//!
//! Deterministic fault injection for the Phoenix database stack.
//!
//! The paper's headline guarantee is that a client session survives a server
//! crash at **any** instant. Hand-written crash tests only exercise the
//! instants someone thought of; this crate makes the instants enumerable.
//! Named *fault points* are compiled into the stack's hot paths (WAL append,
//! fsync, checkpoint write, snapshot publish, wire frame read/write, server
//! reply send). Each point costs **one relaxed atomic load** when the
//! subsystem is disarmed — cheap enough to ship in release builds and keep
//! under the benchmarks — and, when armed, consults a deterministic
//! [`Schedule`] that can fire [`FaultSpec::CrashNow`],
//! [`FaultSpec::TornWrite`], [`FaultSpec::IoError`] or [`FaultSpec::Delay`]
//! at the k-th visit to a point.
//!
//! ## Determinism contract
//!
//! * No wall-clock anywhere: rules are keyed by *visit counts*, and
//!   seed-driven selection uses the crate's own [`rng::XorShift64`].
//! * With a single sequential client, the global visit order is a pure
//!   function of the workload: instrumentation sites fire *after* blocking
//!   reads complete and *before* writes start, so there is no
//!   read-side/write-side race on the ordering.
//! * A schedule plus a workload therefore reproduces the same fault at the
//!   same instant, every run — violation reports print the `(seed, point,
//!   nth)` triple and that triple *is* the reproducer.
//!
//! ## Crash semantics
//!
//! A fatal spec ([`FaultSpec::is_fatal`]) simulates process death, not a
//! transient error, so firing one flips a sticky **halted** flag:
//!
//! * every durable-write point ([`durable_fault`]) fails from then on — a
//!   dead process writes no more bytes to disk;
//! * the server refuses to send replies ([`halted`] is checked before every
//!   reply) — a dead process emits no more frames;
//! * [`crash_requested`] turns true so a supervisor (e.g. the explorer's
//!   harness thread) can sever sockets, drop the engine, and restart it,
//!   then call [`acknowledge_crash`] to lift the halt for the next
//!   incarnation.
//!
//! ## Usage
//!
//! ```
//! use phoenix_chaos as chaos;
//!
//! // Arm a schedule: crash at the 2nd WAL append.
//! let _guard = chaos::arm(chaos::Schedule::new().crash_at("wal.append", 2));
//! // ... run the workload; the fault fires deterministically ...
//! assert!(!chaos::crash_requested()); // (nothing visited in this doctest)
//! // Dropping the guard disarms and resets all chaos state.
//! ```
//!
//! Arming is process-global and serialized: [`arm`] blocks until any other
//! armed session's guard drops, so concurrent `#[test]`s cannot interleave
//! schedules.

pub mod rng;
pub mod schedule;

pub use schedule::{FaultAction, FaultSpec, Fired, Rule, Schedule, Target, Visit};

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use phoenix_obs::{journal, registry, EventKind};

/// Fast-path switch: a single relaxed load of this is the entire cost of a
/// fault point while disarmed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Sticky "the process died" flag; see the crate docs for its semantics.
static HALTED: AtomicBool = AtomicBool::new(false);
/// Set together with `HALTED`; cleared by [`acknowledge_crash`]. The
/// supervisor polls this to know it must sever/restart the server.
static CRASH_REQUESTED: AtomicBool = AtomicBool::new(false);

struct Inner {
    schedule: Schedule,
    per_point: HashMap<&'static str, u64>,
    global: u64,
    trace: Option<Vec<Visit>>,
    fired: Vec<Fired>,
}

impl Inner {
    fn reset(&mut self) {
        self.schedule = Schedule::new();
        self.per_point.clear();
        self.global = 0;
        self.trace = None;
        self.fired.clear();
    }
}

fn inner() -> &'static Mutex<Inner> {
    static INNER: OnceLock<Mutex<Inner>> = OnceLock::new();
    INNER.get_or_init(|| {
        Mutex::new(Inner {
            schedule: Schedule::new(),
            per_point: HashMap::new(),
            global: 0,
            trace: None,
            fired: Vec::new(),
        })
    })
}

fn lock_inner() -> MutexGuard<'static, Inner> {
    inner().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Serializes chaos sessions: held (inside the [`ChaosGuard`]) from [`arm`]
/// until the guard drops.
fn session_mutex() -> &'static Mutex<()> {
    static SESSION: OnceLock<Mutex<()>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(()))
}

/// Holds the armed chaos session. Dropping it disarms the subsystem and
/// resets every counter, flag and recorded trace, then releases the global
/// session lock so another test can arm.
pub struct ChaosGuard {
    _session: MutexGuard<'static, ()>,
}

impl ChaosGuard {
    /// The visits recorded so far (empty unless armed with
    /// [`arm_traced`]).
    pub fn trace(&self) -> Vec<Visit> {
        lock_inner().trace.clone().unwrap_or_default()
    }

    /// The faults fired so far in this session.
    pub fn fired(&self) -> Vec<Fired> {
        lock_inner().fired.clone()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        HALTED.store(false, Ordering::SeqCst);
        CRASH_REQUESTED.store(false, Ordering::SeqCst);
        lock_inner().reset();
    }
}

fn arm_with(schedule: Schedule, traced: bool) -> ChaosGuard {
    let session = session_mutex()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    {
        let mut inner = lock_inner();
        inner.reset();
        inner.schedule = schedule;
        if traced {
            inner.trace = Some(Vec::new());
        }
    }
    HALTED.store(false, Ordering::SeqCst);
    CRASH_REQUESTED.store(false, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    ChaosGuard { _session: session }
}

/// Arm the subsystem with `schedule`. Blocks until no other chaos session is
/// active (sessions are process-global). Disarm by dropping the returned
/// guard.
pub fn arm(schedule: Schedule) -> ChaosGuard {
    arm_with(schedule, false)
}

/// Arm with `schedule` *and* record every fault-point visit; read the trace
/// from [`ChaosGuard::trace`]. Arming with [`Schedule::new`] gives the pure
/// observation mode the explorer uses for its clean run.
pub fn arm_traced(schedule: Schedule) -> ChaosGuard {
    arm_with(schedule, true)
}

/// Is a chaos session currently armed?
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Has a fatal fault fired, simulating process death? While true, durable
/// points fail and the server must not let any reply escape.
pub fn halted() -> bool {
    ARMED.load(Ordering::Relaxed) && HALTED.load(Ordering::Relaxed)
}

/// Has a fatal fault fired that a supervisor has not yet acknowledged?
pub fn crash_requested() -> bool {
    ARMED.load(Ordering::Relaxed) && CRASH_REQUESTED.load(Ordering::Relaxed)
}

/// Supervisor acknowledgement: the crashed server incarnation has been torn
/// down, lift the halt so the *next* incarnation can write and reply again.
pub fn acknowledge_crash() {
    HALTED.store(false, Ordering::SeqCst);
    CRASH_REQUESTED.store(false, Ordering::SeqCst);
}

/// The `io::Error` every injected failure surfaces as. The message carries
/// the point name so test failures and logs are self-explanatory.
pub fn injected_error(point: &str) -> io::Error {
    io::Error::other(format!("phoenix-chaos: injected fault at {point}"))
}

/// Visit the fault point `point` and return the action the site must carry
/// out. Disarmed cost: one relaxed atomic load.
///
/// Sites that perform writes must call this *before* writing; sites that
/// perform blocking reads must call it *after* the read completes (see the
/// crate docs' determinism contract).
pub fn fault(point: &'static str) -> FaultAction {
    if !ARMED.load(Ordering::Relaxed) {
        return FaultAction::Continue;
    }
    fault_slow(point)
}

/// Like [`fault`], for durable-write points (WAL, checkpoint): once the
/// subsystem is [`halted`], every call fails with [`FaultAction::IoError`] —
/// a dead process writes no more bytes to disk, even from request threads
/// still in flight when the crash fired.
pub fn durable_fault(point: &'static str) -> FaultAction {
    if !ARMED.load(Ordering::Relaxed) {
        return FaultAction::Continue;
    }
    if HALTED.load(Ordering::Relaxed) {
        return FaultAction::IoError;
    }
    fault_slow(point)
}

/// [`durable_fault`] for sites without torn-write support: `Continue`/
/// `Delay` proceed, anything else becomes an `Err` carrying
/// [`injected_error`].
pub fn check_durable(point: &'static str) -> io::Result<()> {
    match durable_fault(point) {
        FaultAction::Continue => Ok(()),
        FaultAction::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
        FaultAction::Crash | FaultAction::Torn(_) | FaultAction::IoError => {
            Err(injected_error(point))
        }
    }
}

#[cold]
fn fault_slow(point: &'static str) -> FaultAction {
    let spec = {
        let mut inner = lock_inner();
        inner.global += 1;
        let global = inner.global;
        let nth = {
            let c = inner.per_point.entry(point).or_insert(0);
            *c += 1;
            *c
        };
        if let Some(trace) = inner.trace.as_mut() {
            trace.push(Visit { point, nth, global });
        }
        match inner.schedule.take_match(point, nth, global) {
            Some(spec) => {
                inner.fired.push(Fired {
                    point,
                    nth,
                    global,
                    spec,
                });
                spec
            }
            None => return FaultAction::Continue,
        }
    };
    // Emission happens outside the inner lock: the journal and registry
    // take their own locks and firings are rare.
    faults_injected(point).inc();
    journal().record(
        "chaos",
        EventKind::FaultInjected,
        format!("{} at {point}", spec.as_str()),
    );
    if spec.is_fatal() {
        HALTED.store(true, Ordering::SeqCst);
        CRASH_REQUESTED.store(true, Ordering::SeqCst);
    }
    spec.into()
}

/// The `phoenix_faults_injected_total{point=...}` counter for one point.
fn faults_injected(point: &'static str) -> std::sync::Arc<phoenix_obs::Counter> {
    registry().counter_with(
        "phoenix_faults_injected_total",
        "Faults fired by phoenix-chaos, by fault point",
        &[("point", point)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_points_do_nothing() {
        // No guard held: every call is the fast path.
        assert_eq!(fault("wal.append"), FaultAction::Continue);
        assert_eq!(durable_fault("wal.append"), FaultAction::Continue);
        assert!(check_durable("wal.fsync").is_ok());
        assert!(!armed());
        assert!(!halted());
        assert!(!crash_requested());
    }

    #[test]
    fn per_point_counting_and_firing() {
        let guard = arm(Schedule::new().crash_at("p.a", 2).io_error_at("p.b", 1));
        assert_eq!(fault("p.a"), FaultAction::Continue); // visit 1
        assert_eq!(fault("p.b"), FaultAction::IoError); // fires
        assert!(!halted(), "IoError is transient, not fatal");
        assert_eq!(fault("p.a"), FaultAction::Crash); // visit 2 fires
        assert!(halted());
        assert!(crash_requested());
        let fired = guard.fired();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[1].point, "p.a");
        assert_eq!(fired[1].nth, 2);
        assert_eq!(fired[1].global, 3);
        drop(guard);
        assert!(!armed());
        assert!(!crash_requested());
    }

    #[test]
    fn halt_blocks_durable_points_until_acknowledged() {
        let _guard = arm(Schedule::new().crash_at("w", 1));
        assert_eq!(fault("w"), FaultAction::Crash);
        // Every durable point now fails, without consuming schedule state.
        assert_eq!(durable_fault("x"), FaultAction::IoError);
        assert!(check_durable("y").is_err());
        // Non-durable points keep counting normally.
        assert_eq!(fault("z"), FaultAction::Continue);
        acknowledge_crash();
        assert!(!halted());
        assert_eq!(durable_fault("x"), FaultAction::Continue);
    }

    #[test]
    fn trace_records_every_visit_in_order() {
        let guard = arm_traced(Schedule::new());
        fault("a");
        fault("b");
        fault("a");
        durable_fault("c");
        let trace = guard.trace();
        assert_eq!(
            trace,
            vec![
                Visit {
                    point: "a",
                    nth: 1,
                    global: 1
                },
                Visit {
                    point: "b",
                    nth: 1,
                    global: 2
                },
                Visit {
                    point: "a",
                    nth: 2,
                    global: 3
                },
                Visit {
                    point: "c",
                    nth: 1,
                    global: 4
                },
            ]
        );
    }

    #[test]
    fn torn_write_action_carries_byte_count() {
        let _guard = arm(Schedule::new().torn_at("t", 1, 5));
        assert_eq!(fault("t"), FaultAction::Torn(5));
        assert!(halted(), "a torn write is process death");
    }

    #[test]
    fn delay_action_sleeps_and_continues() {
        let _guard = arm(Schedule::new().delay_at("d", 1, 1));
        let start = std::time::Instant::now();
        assert!(check_durable("d").is_ok());
        assert!(start.elapsed() >= std::time::Duration::from_millis(1));
    }

    #[test]
    fn global_visit_rules_fire_across_points() {
        let guard = arm(Schedule::new().crash_at_global(3));
        assert_eq!(fault("a"), FaultAction::Continue);
        assert_eq!(fault("b"), FaultAction::Continue);
        assert_eq!(fault("c"), FaultAction::Crash);
        assert_eq!(guard.fired()[0].global, 3);
    }

    #[test]
    fn guard_drop_resets_counters() {
        {
            let _g = arm(Schedule::new());
            fault("reset.me");
            fault("reset.me");
        }
        let guard = arm_traced(Schedule::new());
        fault("reset.me");
        assert_eq!(guard.trace()[0].nth, 1, "counters reset between sessions");
    }

    #[test]
    fn fired_faults_emit_journal_and_metrics() {
        let before = journal().events_of(EventKind::FaultInjected).len();
        let counter = faults_injected("emit.test");
        let count_before = counter.get();
        {
            let _g = arm(Schedule::new().io_error_at("emit.test", 1));
            assert_eq!(fault("emit.test"), FaultAction::IoError);
        }
        assert_eq!(counter.get(), count_before + 1);
        let events = journal().events_of(EventKind::FaultInjected);
        assert_eq!(events.len(), before + 1);
        assert!(events.last().unwrap().detail.contains("emit.test"));
    }

    #[test]
    fn injected_error_names_the_point() {
        let e = injected_error("wal.append");
        assert!(e.to_string().contains("wal.append"));
        assert!(e.to_string().contains("phoenix-chaos"));
    }
}
