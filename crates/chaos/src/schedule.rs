//! Fault schedules: *what* to inject, *where*, and at *which visit*.
//!
//! A [`Schedule`] is a list of one-shot [`Rule`]s. Each rule targets either
//! the `nth` visit to a named fault point (counted per point, starting at 1)
//! or the `nth` visit globally across every point, and carries the
//! [`FaultSpec`] to fire there. Rules are consumed when they fire, so a
//! schedule describes a finite, fully deterministic failure plan — the
//! crash-schedule explorer builds one rule per run.

use std::time::Duration;

use crate::rng::XorShift64;

/// What to inject when a rule matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Simulate process death at this point: the site fails as if the
    /// process had been killed, and the whole subsystem *halts* (every
    /// subsequent durable-write point fails, no reply escapes) until the
    /// supervisor acknowledges the crash. Nothing after this point may
    /// reach disk or the wire.
    CrashNow,
    /// Like [`FaultSpec::CrashNow`], but the site first writes the leading
    /// `n_bytes` of whatever it was about to write — a torn write, the
    /// signature of power loss mid-`write(2)`.
    TornWrite {
        /// How many leading bytes reach the medium before death. Clamped by
        /// the site to strictly less than the full write, so the write is
        /// always genuinely torn.
        n_bytes: usize,
    },
    /// The operation fails with an injected `io::Error`; the process keeps
    /// running (transient-fault path, not a crash).
    IoError,
    /// The site sleeps before proceeding normally (races / timeout paths).
    Delay {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
}

impl FaultSpec {
    /// Does this spec simulate process death (and therefore halt the
    /// subsystem once fired)?
    pub fn is_fatal(self) -> bool {
        matches!(self, FaultSpec::CrashNow | FaultSpec::TornWrite { .. })
    }

    /// Short stable name for journal events and violation reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSpec::CrashNow => "crash",
            FaultSpec::TornWrite { .. } => "torn_write",
            FaultSpec::IoError => "io_error",
            FaultSpec::Delay { .. } => "delay",
        }
    }
}

/// What a rule matches against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// The `nth` (1-based) visit to the named point.
    Point {
        /// Fault-point name, e.g. `"wal.append"`.
        point: &'static str,
        /// Which visit to that point fires the rule (1-based).
        nth: u64,
    },
    /// The `nth` (1-based) visit counted across *all* points.
    GlobalVisit(u64),
}

/// One one-shot injection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Where and when to fire.
    pub target: Target,
    /// What to inject.
    pub spec: FaultSpec,
}

/// A deterministic, finite plan of fault injections.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    pub(crate) rules: Vec<Rule>,
}

impl Schedule {
    /// An empty schedule (useful with trace recording: observe, inject
    /// nothing).
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Add an arbitrary rule.
    pub fn rule(mut self, target: Target, spec: FaultSpec) -> Schedule {
        self.rules.push(Rule { target, spec });
        self
    }

    /// Crash at the `nth` (1-based) visit to `point`.
    pub fn crash_at(self, point: &'static str, nth: u64) -> Schedule {
        self.rule(Target::Point { point, nth }, FaultSpec::CrashNow)
    }

    /// Tear the write at the `nth` visit to `point`, persisting `n_bytes`
    /// leading bytes, then crash.
    pub fn torn_at(self, point: &'static str, nth: u64, n_bytes: usize) -> Schedule {
        self.rule(
            Target::Point { point, nth },
            FaultSpec::TornWrite { n_bytes },
        )
    }

    /// Inject a transient `io::Error` at the `nth` visit to `point`.
    pub fn io_error_at(self, point: &'static str, nth: u64) -> Schedule {
        self.rule(Target::Point { point, nth }, FaultSpec::IoError)
    }

    /// Sleep `ms` milliseconds at the `nth` visit to `point`.
    pub fn delay_at(self, point: &'static str, nth: u64, ms: u64) -> Schedule {
        self.rule(Target::Point { point, nth }, FaultSpec::Delay { ms })
    }

    /// Crash at the `nth` (1-based) visit counted globally across every
    /// point.
    pub fn crash_at_global(self, nth: u64) -> Schedule {
        self.rule(Target::GlobalVisit(nth), FaultSpec::CrashNow)
    }

    /// Seed-derived crash somewhere in a visit space of `visit_space` total
    /// visits (as enumerated by a clean traced run). Identical `(seed,
    /// visit_space)` always picks the same visit — this is the reproducer
    /// contract printed by violation reports.
    pub fn seeded_crash(seed: u64, visit_space: u64) -> Schedule {
        let mut rng = XorShift64::new(seed);
        let nth = rng.next_below(visit_space.max(1)) + 1;
        Schedule::new().crash_at_global(nth)
    }

    /// Number of rules still pending.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the schedule has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Find (and consume) the first rule matching this visit.
    pub(crate) fn take_match(
        &mut self,
        point: &'static str,
        nth: u64,
        global: u64,
    ) -> Option<FaultSpec> {
        let idx = self.rules.iter().position(|r| match &r.target {
            Target::Point { point: p, nth: n } => *p == point && *n == nth,
            Target::GlobalVisit(n) => *n == global,
        })?;
        Some(self.rules.remove(idx).spec)
    }
}

/// One recorded visit to a fault point (trace mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Visit {
    /// Fault-point name.
    pub point: &'static str,
    /// 1-based visit count *to this point* at the time of the visit.
    pub nth: u64,
    /// 1-based visit count across all points.
    pub global: u64,
}

/// One fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired {
    /// Where it fired.
    pub point: &'static str,
    /// Per-point visit number at which it fired.
    pub nth: u64,
    /// Global visit number at which it fired.
    pub global: u64,
    /// What was injected.
    pub spec: FaultSpec,
}

/// The action a fault point must carry out, as returned by
/// [`crate::fault`]. This is the site-facing view of a [`FaultSpec`] (plus
/// the no-op case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: proceed normally. The only value ever returned while the
    /// subsystem is disarmed.
    Continue,
    /// Fail the operation with [`crate::injected_error`]; the bytes of this
    /// operation must NOT reach their destination.
    Crash,
    /// Write only the leading `usize` bytes (clamped below the full write by
    /// the site), then fail as for [`FaultAction::Crash`].
    Torn(usize),
    /// Fail the operation with an injected transient error.
    IoError,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
}

impl From<FaultSpec> for FaultAction {
    fn from(spec: FaultSpec) -> FaultAction {
        match spec {
            FaultSpec::CrashNow => FaultAction::Crash,
            FaultSpec::TornWrite { n_bytes } => FaultAction::Torn(n_bytes),
            FaultSpec::IoError => FaultAction::IoError,
            FaultSpec::Delay { ms } => FaultAction::Delay(Duration::from_millis(ms)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_match_consumes_rules() {
        let mut s = Schedule::new()
            .crash_at("wal.append", 2)
            .io_error_at("wal.fsync", 1);
        assert_eq!(s.take_match("wal.append", 1, 1), None);
        assert_eq!(s.take_match("wal.append", 2, 2), Some(FaultSpec::CrashNow));
        // consumed: the same visit never matches twice
        assert_eq!(s.take_match("wal.append", 2, 2), None);
        assert_eq!(s.take_match("wal.fsync", 1, 3), Some(FaultSpec::IoError));
        assert!(s.is_empty());
    }

    #[test]
    fn global_visit_matches_any_point() {
        let mut s = Schedule::new().crash_at_global(3);
        assert_eq!(s.take_match("a", 1, 1), None);
        assert_eq!(s.take_match("b", 1, 2), None);
        assert_eq!(s.take_match("c", 1, 3), Some(FaultSpec::CrashNow));
    }

    #[test]
    fn seeded_crash_is_reproducible() {
        let a = Schedule::seeded_crash(99, 500);
        let b = Schedule::seeded_crash(99, 500);
        assert_eq!(a.rules, b.rules);
        let c = Schedule::seeded_crash(100, 500);
        // Not guaranteed distinct in principle, but for these constants it is.
        assert_ne!(a.rules, c.rules);
    }

    #[test]
    fn fatal_specs() {
        assert!(FaultSpec::CrashNow.is_fatal());
        assert!(FaultSpec::TornWrite { n_bytes: 3 }.is_fatal());
        assert!(!FaultSpec::IoError.is_fatal());
        assert!(!FaultSpec::Delay { ms: 1 }.is_fatal());
    }
}
