//! Smoke test for the `phoenix-cli` binary: drive it through stdin against a
//! crash-injectable server, in both native and `--phoenix` modes.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-clismoke-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn cli_executes_statements_and_renders_results() {
    let dir = temp_dir();
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_phoenix-cli"))
        .args(["--addr", &h.addr(), "--user", "smoke"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        stdin
            .write_all(
                b"CREATE TABLE t (id INT PRIMARY KEY, name TEXT)\n\
                  INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')\n\
                  SELECT id, name FROM t ORDER BY id\n\
                  PRINT 'all done'\n\
                  \\q\n",
            )
            .unwrap();
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "{stdout}");
    assert!(stdout.contains("(2 rows affected)"), "{stdout}");
    assert!(stdout.contains("alpha"), "{stdout}");
    assert!(stdout.contains("beta"), "{stdout}");
    assert!(stdout.contains("(2 rows)"), "{stdout}");
    assert!(stdout.contains("-- all done"), "{stdout}");

    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_phoenix_mode_survives_a_crash_native_mode_dies() {
    let dir = temp_dir();
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = h.addr();

    // Seed.
    {
        let mut conn = phoenix_driver::Environment::new()
            .connect(&addr, "seed", "d")
            .unwrap();
        conn.execute("CREATE TABLE t (v INT)").unwrap();
        conn.execute("INSERT INTO t VALUES (42)").unwrap();
        conn.close();
    }

    // Phoenix mode: a crash between two statements is masked.
    let mut child = Command::new(env!("CARGO_BIN_EXE_phoenix-cli"))
        .args(["--addr", &addr, "--user", "smoke", "--phoenix"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        stdin.write_all(b"SELECT v FROM t\n").unwrap();
        stdin.flush().unwrap();
        // Give the CLI a moment to execute, then crash + restart the server.
        std::thread::sleep(Duration::from_millis(400));
        h.crash().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        h.restart().unwrap();
        stdin.write_all(b"SELECT v + 1 FROM t\n\\q\n").unwrap();
    }
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("42"), "{stdout}");
    assert!(
        stdout.contains("43"),
        "pre/post-crash statements must both succeed: {stdout}"
    );
    assert!(!stdout.contains("error:"), "{stdout}");

    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}
