//! Criterion bench behind Figure 2: full session-recovery latency (crash →
//! restart → next fetch answered) at a fixed result size.
//!
//! Each iteration pays a real crash + WAL recovery + Phoenix reinstall, so
//! samples are few and seconds-scale; Criterion still gives a distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};

use phoenix_bench::{load_figure2_table, BenchEnv};

fn bench_session_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_recovery");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));

    group.bench_function("crash_restart_resume_2500_rows_at_2300", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let mut env = BenchEnv::empty();
                {
                    let mut loader = env.native();
                    load_figure2_table(&mut loader, "f2", 2500);
                    loader.close();
                }
                let mut pc = env.phoenix(BenchEnv::bench_phoenix_config());
                let mut stmt = pc.statement();
                // Block size divides the fetch count exactly, so the read-
                // ahead buffer is empty at the crash point and the timed
                // fetch must reach the server.
                stmt.set_fetch_block(50);
                stmt.execute("SELECT id, payload FROM f2").unwrap();
                for _ in 0..2300 {
                    stmt.fetch().unwrap().unwrap();
                }
                env.harness.crash().unwrap();
                env.harness.restart().unwrap();

                // Timed region: the fetch that triggers detection, virtual-
                // session recovery, repositioning, and returns the next row.
                let t0 = Instant::now();
                let row = stmt.fetch().unwrap().unwrap();
                total += t0.elapsed();

                assert_eq!(row[0], phoenix_storage::types::Value::Int(2300));
                pc.close();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session_recovery);
criterion_main!(benches);
