//! Multi-client throughput bench: aggregate statements/second as the number
//! of concurrent client connections grows.
//!
//! Before the concurrency rework the server executed every request under one
//! global engine lock, so adding clients added no throughput; with
//! per-session execution and group commit, the `clients_4` / `clients_8`
//! numbers should pull clearly ahead of `clients_1` on a multicore box.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phoenix_bench::BenchEnv;

/// Statements each client issues per timed iteration (4 inserts + 1 scan).
const OPS_PER_CLIENT: usize = 50;

fn run_clients(env: &Arc<BenchEnv>, clients: usize) -> Duration {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let env = Arc::clone(env);
            std::thread::spawn(move || {
                let mut conn = env.native();
                for i in 0..OPS_PER_CLIENT {
                    if i % 5 == 4 {
                        conn.execute("SELECT COUNT(*) FROM ops").unwrap();
                    } else {
                        conn.execute(&format!("INSERT INTO ops VALUES ({c})"))
                            .unwrap();
                    }
                }
                conn.close();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    start.elapsed()
}

fn bench_multi_client(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_client_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));

    for clients in [1usize, 2, 4, 8] {
        let env = Arc::new(BenchEnv::empty());
        {
            let mut admin = env.native();
            admin.execute("CREATE TABLE ops (v INT)").unwrap();
            admin.close();
        }
        group.bench_function(format!("clients_{clients}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_clients(&env, clients);
                }
                total
            })
        });
        // Report the aggregate rate once per client count so scaling is
        // visible without post-processing Criterion's per-iteration times.
        let elapsed = run_clients(&env, clients);
        let ops = (clients * OPS_PER_CLIENT) as f64;
        eprintln!(
            "multi_client: {clients} client(s) -> {:.0} stmts/s aggregate",
            ops / elapsed.as_secs_f64()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multi_client);
criterion_main!(benches);
