//! Ablation A1: repositioning strategies after recovery.
//!
//! The paper re-positions the interrupted result set *on the server* —
//! "advancing through the result set on the server without passing tuples
//! to the client" — and shows recovery in a fraction of recompute time.
//! This bench compares that against the naive client-side scan-and-discard
//! re-open, isolating just the re-open + reposition + first-row cost (no
//! crash in the loop; the delivery cursor is dropped and re-opened at a
//! deep position each iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use phoenix_bench::{load_figure2_table, BenchEnv};
use phoenix_core::{PhoenixCursorKind, RepositionStrategy};

fn bench_reposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("reposition");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));

    const ROWS: u64 = 5000;
    const POSITION: u64 = 4700;

    for (label, strategy) in [
        ("server_side_offset", RepositionStrategy::ServerSide),
        ("client_scan_discard", RepositionStrategy::ClientScan),
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", label),
            &strategy,
            |b, &strategy| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let mut env = BenchEnv::empty();
                        {
                            let mut loader = env.native();
                            load_figure2_table(&mut loader, "f2", ROWS);
                            loader.close();
                        }
                        let mut pc =
                            env.phoenix(BenchEnv::bench_phoenix_config().with_reposition(strategy));
                        let mut stmt = pc.statement();
                        stmt.set_cursor_type(PhoenixCursorKind::ForwardOnly);
                        // Block divides POSITION exactly: the buffer is
                        // empty at the crash, so the timed fetch performs
                        // the full reposition.
                        stmt.set_fetch_block(50);
                        stmt.execute("SELECT id, payload FROM f2").unwrap();
                        for _ in 0..POSITION {
                            stmt.fetch().unwrap().unwrap();
                        }
                        // Force the reposition path with a real crash.
                        env.harness.crash().unwrap();
                        env.harness.restart().unwrap();
                        let t0 = Instant::now();
                        let row = stmt.fetch().unwrap().unwrap();
                        total += t0.elapsed();
                        assert_eq!(row[0], phoenix_storage::types::Value::Int(POSITION as i64));
                        pc.close();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reposition);
criterion_main!(benches);
