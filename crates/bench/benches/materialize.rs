//! Ablation A2: result-set capture strategies.
//!
//! The paper's design moves the result into the persistent table *at the
//! server* via a generated stored procedure ("all data is moved locally at
//! the server, not sent first to the client … a single round-trip message").
//! This bench quantifies that choice against (a) a direct server-side
//! `INSERT INTO … SELECT` and (b) the anti-pattern of round-tripping every
//! row through the client.
//!
//! Each strategy gets a fresh environment, and Phoenix sessions are closed
//! (dropping their materialized tables) every iteration, so accumulated
//! state never skews the comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};

use phoenix_bench::BenchEnv;
use phoenix_core::CaptureStrategy;
use phoenix_tpch::power::SqlExecutor;

fn bench_capture_strategies(c: &mut Criterion) {
    // A query with a result set big enough for transfer costs to matter
    // (thousands of rows).
    let sql = "SELECT l_orderkey, l_linenumber, l_extendedprice FROM lineitem WHERE l_extendedprice > 1000.0";

    let mut group = c.benchmark_group("materialize");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(15));

    for (label, strategy) in [
        ("server_proc", CaptureStrategy::ServerProc),
        ("server_insert", CaptureStrategy::ServerInsert),
        ("client_round_trip", CaptureStrategy::ClientRoundTrip),
    ] {
        let env = BenchEnv::tpch(0.5);
        group.bench_with_input(
            BenchmarkId::new("capture", label),
            &strategy,
            |b, &strategy| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let mut pc =
                            env.phoenix(BenchEnv::bench_phoenix_config().with_capture(strategy));
                        let t0 = Instant::now();
                        pc.exec_sql(sql).unwrap();
                        total += t0.elapsed();
                        // Close between iterations: drops the materialized
                        // tables so the durable image stays constant-size.
                        pc.close();
                    }
                    total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_capture_strategies);
criterion_main!(benches);
