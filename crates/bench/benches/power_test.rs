//! Criterion bench behind Table 1: individual power-test items, native vs
//! Phoenix, so per-query overhead distributions are visible (the printed
//! table only shows means).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use phoenix_bench::BenchEnv;
use phoenix_tpch::power::SqlExecutor;
use phoenix_tpch::queries::by_name;

fn bench_power_items(c: &mut Criterion) {
    let env = BenchEnv::tpch(0.5);
    let mut native = env.native();
    let mut phoenix = env.phoenix(BenchEnv::bench_phoenix_config());

    let mut group = c.benchmark_group("power_test");
    group.sample_size(20);

    for name in ["Q1", "Q6", "Q11"] {
        let sql = by_name(name).unwrap().sql;
        group.bench_with_input(BenchmarkId::new("native", name), &sql, |b, sql| {
            b.iter(|| native.exec_sql(sql).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("phoenix", name), &sql, |b, sql| {
            b.iter(|| phoenix.exec_sql(sql).unwrap())
        });
    }

    // One representative update item (paper: negligible overhead).
    let (lo, hi) = env.workload.refresh_key_range();
    let rf1 = phoenix_tpch::refresh::rf1(lo, hi);
    let rf2 = phoenix_tpch::refresh::rf2(lo, hi);
    group.bench_function("native/RF1+RF2", |b| {
        b.iter(|| {
            for sql in rf1.iter().chain(rf2.iter()) {
                native.exec_sql(sql).unwrap();
            }
        })
    });
    group.bench_function("phoenix/RF1+RF2", |b| {
        b.iter(|| {
            for sql in rf1.iter().chain(rf2.iter()) {
                phoenix.exec_sql(sql).unwrap();
            }
        })
    });
    group.finish();

    phoenix.close();
}

criterion_group!(benches, bench_power_items);
criterion_main!(benches);
