//! Ablation A3: the `WHERE 0=1` metadata probe.
//!
//! The paper: "we want to acquire this metadata with a single round trip to
//! the server with minimum data transfer and with minimum server impact …
//! This Phoenix/ODBC trick guarantees that the query will not be executed
//! and that no result data will actually be returned."
//!
//! This bench shows the probe is O(1) — constant regardless of how much data
//! the full query would touch — by comparing probe latency against full
//! execution over growing tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use phoenix_bench::{figure2_query, load_figure2_table, BenchEnv};
use phoenix_sql::rewrite::metadata_probe;
use phoenix_sql::{parse_statement, Statement};

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("metadata_probe");
    group.sample_size(20);

    for &rows in &[500u64, 5000, 20000] {
        let env = BenchEnv::empty();
        {
            let mut loader = env.native();
            load_figure2_table(&mut loader, "f2", rows);
            loader.close();
        }
        let query = figure2_query("f2");
        let probe_sql = {
            let select = match parse_statement(&query).unwrap() {
                Statement::Select(s) => s,
                _ => unreachable!(),
            };
            phoenix_sql::display::render_statement(&Statement::Select(metadata_probe(&select)))
        };

        let mut conn = env.native();
        group.bench_with_input(BenchmarkId::new("probe", rows), &probe_sql, |b, sql| {
            b.iter(|| {
                let r = conn.execute(sql).unwrap();
                assert!(r.rows().is_empty(), "probe must return no rows");
            })
        });
        group.bench_with_input(BenchmarkId::new("full_query", rows), &query, |b, sql| {
            b.iter(|| conn.execute(sql).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
