//! Pipelined-throughput runner: aggregate statements/second for 1/2/4/8
//! concurrent clients issuing a light OLTP blend — point reads and
//! single-row inserts — in three submission modes over the same statement
//! stream:
//!
//! * **sequential** — one request, one reply, one round trip each (the v1
//!   discipline);
//! * **pipelined** — protocol v2 tagged frames with the negotiated window
//!   in flight ([`phoenix_driver::Pipeline`]);
//! * **batched** — rounds travel as one `ExecBatch` frame each
//!   ([`phoenix_driver::Connection::execute_batch`]), pipelined.
//!
//! Emits `BENCH_pipeline_mix.json`. The interesting number is the 8-client
//! pipelined rate versus the sequential rate over identical statements —
//! the per-round-trip overhead the v2 protocol deletes.

use std::sync::Arc;
use std::time::Instant;

use phoenix_bench::BenchEnv;

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Statements per pipelined round (also the batch size in batched mode);
/// comfortably inside the default negotiated window of 32.
const ROUND: usize = 8;

struct Params {
    /// Rows in the lookup table point reads hit.
    doc_rows: u64,
    /// Statements issued per client per timed run.
    ops_per_client: usize,
    /// Timed repetitions per client count (best rate wins, to shed noise).
    reps: usize,
}

impl Params {
    fn quick() -> Params {
        Params {
            doc_rows: 2_000,
            ops_per_client: 480,
            reps: 2,
        }
    }

    fn full() -> Params {
        Params {
            doc_rows: 8_000,
            ops_per_client: 1_600,
            reps: 3,
        }
    }
}

fn setup(env: &BenchEnv, p: &Params) {
    let mut admin = env.native();
    admin
        .execute("CREATE TABLE pldocs (id INT NOT NULL, grp INT, note TEXT, PRIMARY KEY (id))")
        .unwrap();
    admin
        .execute("CREATE TABLE plops (client INT, seq INT, note TEXT)")
        .unwrap();
    let mut batch = Vec::with_capacity(100);
    for i in 0..p.doc_rows {
        batch.push(format!("({i}, {}, 'doc-{i}')", i % 16));
        if batch.len() == 100 || i + 1 == p.doc_rows {
            admin
                .execute(&format!("INSERT INTO pldocs VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
    admin.close();
}

/// Statement `i` of client `client`: per 8-statement round, six point reads
/// and two single-row inserts — cheap statements, so the round trip is the
/// cost pipelining exists to hide.
fn stmt(client: usize, i: usize, doc_rows: u64) -> String {
    match i % ROUND {
        3 | 7 => format!("INSERT INTO plops VALUES ({client}, {i}, 'op-{client}-{i}')"),
        _ => {
            let k = ((client * 977 + i * 61) as u64) % doc_rows;
            format!("SELECT grp FROM pldocs WHERE id = {k}")
        }
    }
}

fn run_client(env: &BenchEnv, client: usize, p: &Params, mode: &str) {
    let mut conn = env.native();
    assert_eq!(
        conn.protocol(),
        phoenix_wire::message::PROTOCOL_V2,
        "bench server must negotiate v2"
    );
    match mode {
        "sequential" => {
            for i in 0..p.ops_per_client {
                conn.execute(&stmt(client, i, p.doc_rows)).unwrap();
            }
        }
        "pipelined" => {
            // Sliding window: keep the negotiated window full, always
            // retiring the oldest tag — never burst-and-drain.
            let mut pipe = conn.pipeline();
            let window = pipe.window() as usize;
            let mut tags = std::collections::VecDeque::with_capacity(window);
            for i in 0..p.ops_per_client {
                tags.push_back(pipe.submit(&stmt(client, i, p.doc_rows)).unwrap());
                if tags.len() >= window {
                    pipe.wait(tags.pop_front().unwrap()).unwrap();
                }
            }
            while let Some(tag) = tags.pop_front() {
                pipe.wait(tag).unwrap();
            }
        }
        "batched" => {
            let mut round = Vec::with_capacity(ROUND);
            for i in 0..p.ops_per_client {
                round.push(stmt(client, i, p.doc_rows));
                if round.len() == ROUND || i + 1 == p.ops_per_client {
                    let items = conn.execute_batch(&round).unwrap();
                    assert_eq!(items.len(), round.len());
                    round.clear();
                }
            }
        }
        other => panic!("unknown mode {other}"),
    }
    conn.close();
}

fn run_once(env: &Arc<BenchEnv>, clients: usize, p: &Arc<Params>, mode: &'static str) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let env = Arc::clone(env);
            let p = Arc::clone(p);
            std::thread::spawn(move || run_client(&env, c, &p, mode))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (clients * p.ops_per_client) as f64 / start.elapsed().as_secs_f64()
}

fn measure(p: Params, mode: &'static str) -> Vec<(usize, f64)> {
    let p = Arc::new(p);
    CLIENT_COUNTS
        .iter()
        .map(|&clients| {
            let env = Arc::new(BenchEnv::empty());
            setup(&env, &p);
            let best = (0..p.reps)
                .map(|_| run_once(&env, clients, &p, mode))
                .fold(0.0f64, f64::max);
            eprintln!("pipeline_mix[{mode}]: {clients} client(s) -> {best:.0} stmts/s aggregate");
            (clients, best)
        })
        .collect()
}

fn json_rates(rates: &[(usize, f64)], indent: &str) -> String {
    rates
        .iter()
        .map(|(c, r)| format!("{indent}\"{c}\": {r:.1}"))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_pipeline_mix.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown flag {other} (expected --quick/--out)"),
        }
    }

    let mode = if quick { "quick" } else { "full" };
    let params = || {
        if quick {
            Params::quick()
        } else {
            Params::full()
        }
    };
    let sequential = measure(params(), "sequential");
    let pipelined = measure(params(), "pipelined");
    let batched = measure(params(), "batched");

    let at = |rates: &[(usize, f64)], n: usize| {
        rates
            .iter()
            .find(|(c, _)| *c == n)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    };
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    let speedup1 = ratio(at(&pipelined, 1), at(&sequential, 1));
    let speedup8 = ratio(at(&pipelined, 8), at(&sequential, 8));

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"pipeline_mix\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    body.push_str("  \"unit\": \"stmts_per_sec\",\n");
    body.push_str(&format!(
        "  \"workload\": \"per {ROUND} stmts: 6 point reads, 2 single-row inserts; \
         window {}\",\n",
        phoenix_wire::message::DEFAULT_WINDOW
    ));
    body.push_str("  \"sequential\": {\n");
    body.push_str(&json_rates(&sequential, "    "));
    body.push_str("\n  },\n");
    body.push_str("  \"current\": {\n");
    body.push_str(&json_rates(&pipelined, "    "));
    body.push_str("\n  },\n");
    body.push_str("  \"batched\": {\n");
    body.push_str(&json_rates(&batched, "    "));
    body.push_str("\n  },\n");
    body.push_str(&format!(
        "  \"pipelined_over_sequential_1_client\": {speedup1:.2},\n"
    ));
    body.push_str(&format!(
        "  \"pipelined_over_sequential_8_clients\": {speedup8:.2}\n"
    ));
    body.push_str("}\n");

    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{body}");
    eprintln!("wrote {out}");
}
