//! Interactive SQL client for a Phoenix database server.
//!
//! ```text
//! phoenix-cli [--addr host:port] [--user name] [--phoenix]
//! ```
//!
//! Reads statements from stdin (one per line; `\q` quits) and prints
//! results. With `--phoenix` the session is wrapped by the Phoenix layer and
//! survives server crashes; without it, the native driver is used and a
//! crash kills the session — try both against a server you restart.

use std::io::{BufRead, Write};

use phoenix_driver::Environment;
use phoenix_storage::types::Schema;
use phoenix_wire::message::Outcome;

enum Session {
    Native(phoenix_driver::Connection),
    Phoenix(Box<phoenix_core::PhoenixConnection>),
}

impl Session {
    fn execute(
        &mut self,
        sql: &str,
    ) -> Result<phoenix_driver::QueryResult, phoenix_driver::DriverError> {
        match self {
            Session::Native(c) => c.execute(sql),
            Session::Phoenix(p) => p.execute(sql),
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:54321".to_string();
    let mut user = whoami();
    let mut use_phoenix = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs host:port"),
            "--user" => user = args.next().expect("--user needs a name"),
            "--phoenix" => use_phoenix = true,
            "--help" | "-h" => {
                eprintln!("usage: phoenix-cli [--addr host:port] [--user name] [--phoenix]");
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let env = Environment::new();
    let mut session = if use_phoenix {
        match phoenix_core::PhoenixConnection::connect(
            &env,
            &addr,
            &user,
            "default",
            phoenix_core::PhoenixConfig::default(),
        ) {
            Ok(c) => {
                eprintln!("connected to {addr} with a PERSISTENT (Phoenix) session");
                Session::Phoenix(Box::new(c))
            }
            Err(e) => {
                eprintln!("cannot connect: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match env.connect(&addr, &user, "default") {
            Ok(c) => {
                eprintln!("connected to {addr} with a native session");
                Session::Native(c)
            }
            Err(e) => {
                eprintln!("cannot connect: {e}");
                std::process::exit(1);
            }
        }
    };

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("sql> ");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql == "\\q" || sql.eq_ignore_ascii_case("quit") || sql.eq_ignore_ascii_case("exit") {
            break;
        }
        match session.execute(sql) {
            Ok(result) => {
                for m in &result.messages {
                    let _ = writeln!(out, "-- {m}");
                }
                match &result.outcome {
                    Outcome::ResultSet { schema, rows } => {
                        print_table(&mut out, schema, rows);
                        let _ = writeln!(out, "({} row{})", rows.len(), plural(rows.len()));
                    }
                    Outcome::RowsAffected(n) => {
                        let _ = writeln!(out, "({n} row{} affected)", plural(*n as usize));
                    }
                    Outcome::Done => {
                        let _ = writeln!(out, "OK");
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                if e.is_comm() && !use_phoenix {
                    let _ = writeln!(
                        out,
                        "(native session lost — restart phoenix-cli, or use --phoenix)"
                    );
                    break;
                }
            }
        }
    }

    if let Session::Phoenix(p) = session {
        p.close();
    }
    eprintln!("bye");
}

fn print_table(out: &mut impl Write, schema: &Schema, rows: &[phoenix_storage::types::Row]) {
    // Column widths: header vs. rendered values.
    let mut widths: Vec<usize> = schema.columns.iter().map(|c| c.name.len()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|v| v.to_string()).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header: Vec<String> = schema
        .columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{:w$}", c.name, w = w))
        .collect();
    let _ = writeln!(out, "{}", header.join(" | "));
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let _ = writeln!(out, "{}", rule.join("-+-"));
    for row in &rendered {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:w$}", w = w))
            .collect();
        let _ = writeln!(out, "{}", cells.join(" | "));
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn whoami() -> String {
    std::env::var("USER").unwrap_or_else(|_| "sql".to_string())
}
