//! Recovery-at-scale runner: load N tables × M records of WAL, crash, and
//! measure what recovery costs — WAL replay time (sequential vs
//! partitioned), time-to-first-reply through a full server restart, and
//! the checkpoint writer-lock pause (full vs incremental).
//!
//! Emits `BENCH_recovery.json`:
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin recovery_storm -- --quick
//! cargo run --release -p phoenix-bench --bin recovery_storm -- \
//!     --out BENCH_recovery.json
//! ```
//!
//! `--check` additionally asserts the recovered images are correct (row
//! counts, and partitioned replay bit-identical to sequential), which is
//! what the CI job runs.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::db::{Durability, Durable, RecoveryOptions};
use phoenix_storage::types::{Column, DataType, Row, Schema, TableDef, Value};

/// One log size to storm: `tables` session tables, `records` total rows.
struct SizeSpec {
    name: &'static str,
    tables: usize,
    records: u64,
}

const QUICK: &[SizeSpec] = &[
    SizeSpec {
        name: "small",
        tables: 4,
        records: 5_000,
    },
    SizeSpec {
        name: "medium",
        tables: 8,
        records: 20_000,
    },
];

const FULL: &[SizeSpec] = &[
    SizeSpec {
        name: "small",
        tables: 4,
        records: 5_000,
    },
    SizeSpec {
        name: "medium",
        tables: 8,
        records: 20_000,
    },
    SizeSpec {
        name: "large",
        tables: 8,
        records: 100_000,
    },
];

struct SizeResult {
    name: &'static str,
    tables: usize,
    records: u64,
    wal_frames: usize,
    threads_parallel: usize,
    replay_serial_us: u64,
    replay_parallel_us: u64,
    ttfr_us: u64,
    ckpt_full_pause_us: u64,
    ckpt_full_total_us: u64,
    ckpt_full_segments: usize,
    ckpt_incr_pause_us: u64,
    ckpt_incr_total_us: u64,
    ckpt_incr_segments: usize,
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "phoenix-recovery-storm-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn table_name(i: usize) -> String {
    format!("dbo.sess{i:02}")
}

fn def(name: &str) -> TableDef {
    TableDef::new(
        name,
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("seq", DataType::Int),
            Column::new("note", DataType::Text),
        ]),
    )
    .with_primary_key(vec![0])
}

/// Load the storm: every "session" table gets its share of `records` rows,
/// committed in batches, interleaved across tables the way concurrent
/// sessions would interleave in the log. Buffered durability keeps the
/// load phase out of the measurement; the WAL bytes are identical.
fn load(dir: &Path, spec: &SizeSpec) {
    let db = Durable::open(dir, Durability::Buffered).unwrap();
    let t = db.begin().unwrap();
    for i in 0..spec.tables {
        db.create_table(t, def(&table_name(i))).unwrap();
    }
    db.commit(t).unwrap();

    const BATCH: u64 = 50;
    let mut written = 0u64;
    let mut round = 0u64;
    while written < spec.records {
        for i in 0..spec.tables {
            if written >= spec.records {
                break;
            }
            let name = table_name(i);
            let t = db.begin().unwrap();
            let n = BATCH.min(spec.records - written);
            for k in 0..n {
                let id = (round * BATCH + k) as i64;
                db.insert(
                    t,
                    &name,
                    vec![
                        Value::Int(id),
                        Value::Int((written + k) as i64),
                        Value::Text(format!("storm-{i}-{id}")),
                    ],
                )
                .unwrap();
            }
            db.commit(t).unwrap();
            written += n;
        }
        round += 1;
    }
    // Crash: drop without checkpoint — the whole load is WAL to replay.
}

/// Flat copy of the data directory (the WAL plus any snapshot files), so a
/// measurement that mutates the directory — the server harness checkpoints
/// on shutdown — runs against a throwaway clone of the crashed state.
fn clone_dir(src: &Path, tag: &str) -> PathBuf {
    let dst = temp_dir(tag);
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }
    dst
}

fn open_with(dir: &Path, threads: usize) -> Durable {
    Durable::open_opts(
        dir,
        Durability::Fsync,
        &RecoveryOptions {
            replay_threads: Some(threads),
            ..RecoveryOptions::default()
        },
    )
    .unwrap()
}

/// Best-of-`reps` replay time at a given thread count. Recovery never
/// mutates the log, so reopening the same directory is repeatable.
fn measure_replay(dir: &Path, threads: usize, reps: usize) -> (u64, usize) {
    let mut best = u64::MAX;
    let mut frames = 0;
    for _ in 0..reps {
        let db = open_with(dir, threads);
        let rep = db.recovery_report();
        best = best.min(rep.replay_us);
        frames = rep.wal_frames;
    }
    (best, frames)
}

/// Full server restart on the crashed directory: process start → engine
/// recovery → TCP accept → first statement answered.
fn measure_ttfr(dir: &Path) -> u64 {
    let config = EngineConfig {
        // Keep the directory pristine: no auto-checkpoint after recovery.
        checkpoint_every: None,
        ..EngineConfig::default()
    };
    let start = Instant::now();
    let mut h = ServerHarness::start(dir, config).unwrap();
    let mut conn = Environment::new()
        .with_read_timeout(Some(Duration::from_secs(30)))
        .connect(&h.addr(), "storm", "bench")
        .unwrap();
    conn.execute("SELECT COUNT(*) FROM dbo.sess00").unwrap();
    let ttfr = start.elapsed().as_micros() as u64;
    conn.close();
    h.shutdown();
    ttfr
}

fn snapshot_rows(db: &Durable, tables: usize) -> Vec<(u64, Vec<(u64, Row)>)> {
    let snap = db.snapshot();
    (0..tables)
        .map(|i| {
            let t = snap
                .table(&table_name(i))
                .unwrap_or_else(|_| panic!("missing {}", table_name(i)));
            let mut rows: Vec<_> = t.rows.iter().map(|(id, r)| (*id, r.clone())).collect();
            rows.sort_by_key(|(id, _)| *id);
            (t.next_row_id, rows)
        })
        .collect()
}

fn run_size(spec: &SizeSpec, reps: usize, check: bool) -> SizeResult {
    let dir = temp_dir(spec.name);
    eprintln!(
        "recovery_storm[{}]: loading {} records across {} tables…",
        spec.name, spec.records, spec.tables
    );
    load(&dir, spec);

    let parallel = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    let (replay_serial_us, wal_frames) = measure_replay(&dir, 1, reps);
    let (replay_parallel_us, _) = measure_replay(&dir, parallel, reps);
    eprintln!(
        "recovery_storm[{}]: replay {} frames — serial {} us, {} threads {} us",
        spec.name, wal_frames, replay_serial_us, parallel, replay_parallel_us
    );

    if check {
        let seq = snapshot_rows(&open_with(&dir, 1), spec.tables);
        let par = snapshot_rows(&open_with(&dir, parallel), spec.tables);
        assert_eq!(seq, par, "partitioned replay diverged from sequential");
        let total: usize = seq.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total as u64, spec.records, "row count after recovery");
        eprintln!(
            "recovery_storm[{}]: check ok ({} rows, serial == parallel)",
            spec.name, total
        );
    }

    // The harness checkpoints the directory on shutdown, so time-to-first-
    // reply runs on a throwaway clone of the crashed state.
    let ttfr_dir = clone_dir(&dir, "ttfr");
    let ttfr_us = measure_ttfr(&ttfr_dir);
    let _ = std::fs::remove_dir_all(&ttfr_dir);
    eprintln!(
        "recovery_storm[{}]: time-to-first-reply {} us",
        spec.name, ttfr_us
    );

    // Checkpoint pause, full vs incremental: the first checkpoint
    // serializes every table; after touching one table, the second
    // serializes exactly that one. `pause_us` is the writer-lock hold.
    let db = open_with(&dir, parallel);
    db.checkpoint().unwrap();
    let full = db.checkpoint_stats();
    let t = db.begin().unwrap();
    db.insert(
        t,
        &table_name(0),
        vec![Value::Int(-1), Value::Int(-1), Value::Text("touch".into())],
    )
    .unwrap();
    db.commit(t).unwrap();
    db.checkpoint().unwrap();
    let incr = db.checkpoint_stats();
    drop(db);
    eprintln!(
        "recovery_storm[{}]: checkpoint pause full {} us ({} segs) vs incremental {} us ({} segs)",
        spec.name, full.pause_us, full.segments_written, incr.pause_us, incr.segments_written
    );
    if check {
        assert_eq!(
            incr.segments_written, 1,
            "incremental checkpoint rewrote {incr:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
    SizeResult {
        name: spec.name,
        tables: spec.tables,
        records: spec.records,
        wal_frames,
        threads_parallel: parallel,
        replay_serial_us,
        replay_parallel_us,
        ttfr_us,
        ckpt_full_pause_us: full.pause_us,
        ckpt_full_total_us: full.total_us,
        ckpt_full_segments: full.segments_written,
        ckpt_incr_pause_us: incr.pause_us,
        ckpt_incr_total_us: incr.total_us,
        ckpt_incr_segments: incr.segments_written,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check = false;
    let mut out = String::from("BENCH_recovery.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown flag {other} (expected --quick/--check/--out)"),
        }
    }

    let (mode, sizes, reps) = if quick {
        ("quick", QUICK, 2)
    } else {
        ("full", FULL, 3)
    };
    let results: Vec<SizeResult> = sizes.iter().map(|s| run_size(s, reps, check)).collect();

    let body = results
        .iter()
        .map(|r| {
            let speedup = r.replay_serial_us as f64 / r.replay_parallel_us.max(1) as f64;
            format!(
                "    {{\n      \"size\": \"{}\",\n      \"tables\": {},\n      \"records\": {},\n      \"wal_frames\": {},\n      \"replay_serial_us\": {},\n      \"replay_parallel_us\": {},\n      \"replay_threads\": {},\n      \"replay_speedup\": {:.2},\n      \"time_to_first_reply_us\": {},\n      \"checkpoint\": {{\n        \"full_pause_us\": {},\n        \"full_total_us\": {},\n        \"full_segments_written\": {},\n        \"incremental_pause_us\": {},\n        \"incremental_total_us\": {},\n        \"incremental_segments_written\": {}\n      }}\n    }}",
                r.name,
                r.tables,
                r.records,
                r.wal_frames,
                r.replay_serial_us,
                r.replay_parallel_us,
                r.threads_parallel,
                speedup,
                r.ttfr_us,
                r.ckpt_full_pause_us,
                r.ckpt_full_total_us,
                r.ckpt_full_segments,
                r.ckpt_incr_pause_us,
                r.ckpt_incr_total_us,
                r.ckpt_incr_segments,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    // Speedups below 1.0 are expected when `replay_threads` exceeds this:
    // the parallel path is still exercised (and checked for equivalence),
    // but a single hardware thread can't run the workers concurrently.
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"recovery_storm\",\n  \"mode\": \"{mode}\",\n  \"host_parallelism\": {host},\n  \"sizes\": [\n{body}\n  ]\n}}\n"
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("recovery_storm: wrote {out}");
    print!("{json}");
}
