//! Mixed reader/writer throughput runner: aggregate statements/second for
//! 1/2/4/8 concurrent clients issuing a fixed blend of point reads,
//! Q13/Q16-style LIKE scans over comment text, multi-row inserts, and
//! `INSERT … SELECT` materializations — the statement mix where a coarse
//! store lock convoys every reader behind one queued writer.
//!
//! Emits `BENCH_rw_mix.json`. Run it once on the old tree, then re-run on
//! the new tree with `--baseline <old.json>` to record both numbers side by
//! side:
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin rw_mix -- --quick --out pre.json
//! cargo run --release -p phoenix-bench --bin rw_mix -- --quick \
//!     --baseline pre.json --out BENCH_rw_mix.json
//! ```

use std::sync::Arc;
use std::time::Instant;

use phoenix_bench::BenchEnv;

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Workload knobs; `quick` keeps the whole run in the tens of seconds so it
/// can gate a PR, the full run is for real trend tracking.
struct Params {
    /// Rows in the document table every analytic reader statement scans.
    doc_rows: u64,
    /// Statements issued per client per timed run.
    ops_per_client: usize,
    /// Timed repetitions per client count (best rate wins, to shed noise).
    reps: usize,
}

impl Params {
    fn quick() -> Params {
        Params {
            doc_rows: 1_500,
            ops_per_client: 96,
            reps: 2,
        }
    }

    fn full() -> Params {
        Params {
            doc_rows: 6_000,
            ops_per_client: 320,
            reps: 3,
        }
    }
}

/// TPC-H-comment-style text (~500 chars). A minority of rows carry the
/// "special … requests … packages" sequence the Q13-shaped predicate looks
/// for; others carry near-miss prefixes so the matcher pays real
/// backtracking cost on every row.
fn payload(i: u64) -> String {
    let w = [
        "furious", "ironic", "pending", "express", "regular", "unusual", "bold",
    ];
    let marker = match i % 7 {
        3 => "special requests: packages",
        5 => "special deposits detect",
        _ => "quiet accounts integrate",
    };
    let mut s = format!("c{i:06} ");
    for k in 0..4 {
        s.push_str(&format!(
            "{} deposits wake above the {} ideas; {} cajole slyly among the {} pearls; \
             instructions nag {}. ",
            w[((i + k) % 7) as usize],
            w[((i / 7 + k) % 7) as usize],
            if k == 2 {
                marker
            } else {
                "quiet accounts integrate"
            },
            w[((i / 49 + k) % 7) as usize],
            (i * 31 + k) % 997
        ));
    }
    s
}

/// Build the document table once per environment.
fn setup(env: &BenchEnv, p: &Params) {
    let mut admin = env.native();
    admin
        .execute("CREATE TABLE rwdocs (id INT NOT NULL, grp INT, payload TEXT, PRIMARY KEY (id))")
        .unwrap();
    admin
        .execute("CREATE TABLE rwops (client INT, seq INT, note TEXT)")
        .unwrap();
    admin
        .execute("CREATE TABLE rwagg (id INT, grp INT)")
        .unwrap();
    let mut batch = Vec::with_capacity(100);
    for i in 0..p.doc_rows {
        batch.push(format!("({i}, {}, '{}')", i % 16, payload(i)));
        if batch.len() == 100 || i + 1 == p.doc_rows {
            admin
                .execute(&format!("INSERT INTO rwdocs VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
    admin.close();
}

/// One client's statement stream, in 8-statement rounds: four point reads,
/// a Q13-shaped LIKE scan, a Q16-shaped NOT LIKE group scan, one 16-row
/// insert, and one ~200-row `INSERT … SELECT` materialization.
fn run_client(env: &BenchEnv, client: usize, p: &Params) {
    let mut conn = env.native();
    for i in 0..p.ops_per_client {
        match i % 8 {
            2 => {
                conn.execute(
                    "SELECT COUNT(*) FROM rwdocs \
                     WHERE payload LIKE '%special%requests%packages%'",
                )
                .unwrap();
            }
            5 => {
                conn.execute(
                    "SELECT grp, COUNT(*) FROM rwdocs \
                     WHERE payload NOT LIKE '%unusual%deposits%' GROUP BY grp",
                )
                .unwrap();
            }
            6 => {
                let mut vals = Vec::with_capacity(16);
                for j in 0..16 {
                    vals.push(format!("({client}, {i}, 'note-{client}-{i}-{j}')"));
                }
                conn.execute(&format!("INSERT INTO rwops VALUES {}", vals.join(", ")))
                    .unwrap();
            }
            7 => {
                let lo = ((client * 131 + i * 37) as u64) % (p.doc_rows - 200);
                conn.execute(&format!(
                    "INSERT INTO rwagg SELECT id, grp FROM rwdocs \
                     WHERE id >= {lo} AND id < {}",
                    lo + 200
                ))
                .unwrap();
            }
            _ => {
                let k = ((client * 977 + i * 61) as u64) % p.doc_rows;
                conn.execute(&format!("SELECT grp FROM rwdocs WHERE id = {k}"))
                    .unwrap();
            }
        }
    }
    conn.close();
}

fn run_once(env: &Arc<BenchEnv>, clients: usize, p: &Arc<Params>) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let env = Arc::clone(env);
            let p = Arc::clone(p);
            std::thread::spawn(move || run_client(&env, c, &p))
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (clients * p.ops_per_client) as f64 / start.elapsed().as_secs_f64()
}

fn measure(p: Params, partitions: Option<usize>) -> Vec<(usize, f64)> {
    let p = Arc::new(p);
    let config = phoenix_engine::EngineConfig {
        partitions,
        ..phoenix_engine::EngineConfig::default()
    };
    CLIENT_COUNTS
        .iter()
        .map(|&clients| {
            // Fresh database per client count so accumulated writes from one
            // run never slow the next.
            let env = Arc::new(BenchEnv::empty_with(config.clone()));
            setup(&env, &p);
            let best = (0..p.reps)
                .map(|_| run_once(&env, clients, &p))
                .fold(0.0f64, f64::max);
            eprintln!("rw_mix: {clients} client(s) -> {best:.0} stmts/s aggregate");
            (clients, best)
        })
        .collect()
}

/// Pull `"N": rate` pairs out of the `"current"` object of a previous run's
/// JSON output. Minimal by design: it only reads files this tool wrote.
fn parse_baseline(text: &str) -> Vec<(usize, f64)> {
    let obj = text
        .split("\"current\"")
        .nth(1)
        .and_then(|rest| rest.split('{').nth(1))
        .and_then(|rest| rest.split('}').next())
        .unwrap_or_else(|| panic!("baseline file has no \"current\" object"));
    obj.split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            let clients = k.trim().trim_matches('"').parse().ok()?;
            let rate = v.trim().parse().ok()?;
            Some((clients, rate))
        })
        .collect()
}

fn json_rates(rates: &[(usize, f64)], indent: &str) -> String {
    rates
        .iter()
        .map(|(c, r)| format!("{indent}\"{c}\": {r:.1}"))
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = String::from("BENCH_rw_mix.json");
    let mut baseline_path: Option<String> = None;
    let mut check = false;
    let mut partitions: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a path").clone())
            }
            "--partitions" => {
                partitions = Some(
                    it.next()
                        .expect("--partitions needs a number")
                        .parse()
                        .expect("bad partition count"),
                )
            }
            other => panic!(
                "unknown flag {other} (expected --quick/--check/--out/--baseline/--partitions)"
            ),
        }
    }

    let baseline = baseline_path.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        parse_baseline(&text)
    });

    let mode = if quick { "quick" } else { "full" };
    let rates = measure(
        if quick {
            Params::quick()
        } else {
            Params::full()
        },
        partitions,
    );

    // The servers run in-process, so the storage layer's counters land in
    // this process's global registry: a free cross-check that throughput
    // numbers came with the expected durability work (group commit batching,
    // snapshot publishing) rather than from skipped fsyncs.
    let stats = phoenix_obs::StatsSnapshot::capture();
    let fsyncs = stats.counter("phoenix_wal_fsyncs_total").unwrap_or(0);
    let gc_records = stats
        .counter("phoenix_group_commit_records_total")
        .unwrap_or(0);
    let gc_syncs = stats
        .counter("phoenix_group_commit_syncs_total")
        .unwrap_or(0);
    let publishes = stats
        .counter("phoenix_snapshot_publishes_total")
        .unwrap_or(0);
    let coalesced = stats
        .counter("phoenix_snapshot_publishes_coalesced")
        .unwrap_or(0);
    let mean_batch = if gc_syncs > 0 {
        gc_records as f64 / gc_syncs as f64
    } else {
        0.0
    };
    eprintln!(
        "rw_mix: {fsyncs} wal fsyncs, mean group-commit batch {mean_batch:.2}, \
         {publishes} snapshot publishes"
    );

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"rw_mix\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    body.push_str(&format!(
        "  \"partitions\": \"{}\",\n",
        partitions.map_or("default (min(8, cores))".into(), |n| n.to_string())
    ));
    body.push_str("  \"unit\": \"stmts_per_sec\",\n");
    body.push_str(
        "  \"workload\": \"per 8 stmts: 4 point reads, 1 LIKE scan, 1 NOT-LIKE group scan, \
         1 16-row insert, 1 200-row insert-select\",\n",
    );
    body.push_str("  \"current\": {\n");
    body.push_str(&json_rates(&rates, "    "));
    body.push_str("\n  },\n");
    body.push_str("  \"storage_metrics\": {\n");
    body.push_str(&format!("    \"wal_fsyncs\": {fsyncs},\n"));
    body.push_str(&format!(
        "    \"mean_group_commit_batch\": {mean_batch:.2},\n"
    ));
    body.push_str(&format!("    \"snapshot_publishes\": {publishes},\n"));
    body.push_str(&format!(
        "    \"snapshot_publishes_coalesced\": {coalesced}\n"
    ));
    body.push_str("  }");
    if let Some(base) = &baseline {
        body.push_str(",\n  \"pre_change\": {\n");
        body.push_str(&json_rates(base, "    "));
        body.push_str("\n  }");
        let cur8 = rates.iter().find(|(c, _)| *c == 8).map(|(_, r)| *r);
        let pre8 = base.iter().find(|(c, _)| *c == 8).map(|(_, r)| *r);
        if let (Some(cur), Some(pre)) = (cur8, pre8) {
            body.push_str(&format!(",\n  \"speedup_8_clients\": {:.2}", cur / pre));
        }
    }
    body.push_str("\n}\n");

    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{body}");
    eprintln!("wrote {out}");

    // Smoke gate (CI): concurrency must help, not hurt — 8 clients pushing
    // less aggregate throughput than 1 is the signature of commit-path
    // contention regressing. Measured as its own interleaved head-to-head
    // (1, 8, 1, 8, …, best of each) rather than from the sweep above: the
    // sweep measures client counts minutes apart, so a host whose CPU
    // budget drifts over time (CI runners, throttled containers) would
    // flap the comparison on noise that has nothing to do with Phoenix.
    // On a host with a single hardware thread the comparison is degenerate:
    // 8 client threads time-slicing one core pay context-switch and cache
    // overhead with no parallelism to win back, so 8 < 1 there indicts the
    // OS scheduler, not the commit path. Gate only where >= 2 cores exist.
    if check && host_parallelism < 2 {
        eprintln!(
            "rw_mix --check skipped: host_parallelism is 1, so the 8-vs-1 comparison \
             would measure scheduler overhead rather than commit-path contention; \
             run on a host with >= 2 cores to gate"
        );
        return;
    }
    if check {
        let p = Arc::new(if quick {
            Params::quick()
        } else {
            Params::full()
        });
        let config = phoenix_engine::EngineConfig {
            partitions,
            ..phoenix_engine::EngineConfig::default()
        };
        let (mut r1, mut r8) = (0.0f64, 0.0f64);
        for _ in 0..3 {
            for (clients, best) in [(1, &mut r1), (8, &mut r8)] {
                let env = Arc::new(BenchEnv::empty_with(config.clone()));
                setup(&env, &p);
                *best = best.max(run_once(&env, clients, &p));
            }
        }
        if r8 < r1 {
            eprintln!(
                "rw_mix --check FAILED: 8-client aggregate {r8:.0} stmts/s is below the \
                 1-client rate {r1:.0} stmts/s"
            );
            std::process::exit(1);
        }
        eprintln!("rw_mix --check ok: 8 clients {r8:.0} >= 1 client {r1:.0} stmts/s");
    }
}
