//! Regenerates **Figure 2** of the paper: elapsed time for session recovery
//! over varying result-set sizes, decomposed into the *Virtual Session*
//! component (re-establishing connections and session context — constant;
//! the paper measured 0.37 s) and the *SQL State* component (re-opening and
//! re-positioning the interrupted result delivery — grows mildly with
//! position when done server-side).
//!
//! Also prints the §4 claim check: total recovery time vs. the cost of
//! simply re-computing the query and re-delivering its rows (the paper:
//! "less than a tenth of the time required to simply recompute Q11").
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin figure2 [sizes,comma,separated]
//! ```

use std::time::Instant;

use phoenix_bench::{figure2_query, load_figure2_table, BenchEnv};
use phoenix_core::PhoenixCursorKind;

fn main() {
    let sizes: Vec<u64> = std::env::args()
        .nth(1)
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![500, 1000, 2500, 5000, 10000]);

    println!("Figure 2. Elapsed time for session recovery over varying result sizes.");
    println!("(fetch to 200 rows before the end, crash the server, restart, measure)");
    println!();
    println!(
        "{:>9} {:>17} {:>13} {:>13} {:>14} {:>8}",
        "rows", "virtual sess. ms", "SQL state ms", "recovery ms", "recompute ms", "ratio"
    );
    println!("{}", "-".repeat(76));

    for &n in &sizes {
        let (virtual_s, sql_state_s, recompute_s) = measure(n);
        let total = virtual_s + sql_state_s;
        println!(
            "{:>9} {:>17.3} {:>13.3} {:>13.3} {:>14.3} {:>8.3}",
            n,
            virtual_s * 1e3,
            sql_state_s * 1e3,
            total * 1e3,
            recompute_s * 1e3,
            total / recompute_s
        );
    }
    println!("{}", "-".repeat(76));
    println!(
        "paper shape check: virtual-session time constant across sizes (paper: 0.37 s on 1999"
    );
    println!(
        "hardware); SQL-state time small and growing mildly; recovery ≪ recompute (paper: <0.1x)."
    );
}

/// Run one recovery experiment at result size `n`. Returns
/// `(virtual_session_seconds, sql_state_seconds, recompute_seconds)`.
fn measure(n: u64) -> (f64, f64, f64) {
    let mut env = BenchEnv::empty();
    {
        let mut loader = env.native();
        load_figure2_table(&mut loader, "f2", n);
        loader.close();
    }

    // Baseline: recompute the (Q11-shaped, compute-heavy) query natively
    // and deliver every row.
    let query = figure2_query("f2");
    let recompute_s = {
        let mut conn = env.native();
        let t0 = Instant::now();
        let r = conn.execute(&query).unwrap();
        assert_eq!(r.rows().len() as u64, n);
        let s = t0.elapsed().as_secs_f64();
        conn.close();
        s
    };

    // Phoenix session: materialize, fetch to near the end, crash, restart,
    // and measure the recovery that the next fetch triggers.
    let mut pc = env.phoenix(BenchEnv::bench_phoenix_config());
    let mut stmt = pc.statement();
    stmt.set_cursor_type(PhoenixCursorKind::ForwardOnly);
    stmt.set_fetch_block(64);
    stmt.execute(&query).unwrap();
    // Leave more unread rows than the client read-ahead block buffers, so
    // the crash interrupts genuine server-side delivery.
    let to_fetch = n.saturating_sub(200);
    for _ in 0..to_fetch {
        stmt.fetch().unwrap().unwrap();
    }

    env.harness.crash().unwrap();
    env.harness.restart().unwrap();

    // The next fetch detects the failure, recovers the virtual session and
    // re-positions delivery; the instrumented stats decompose the cost.
    let row = stmt.fetch().unwrap().expect("rows remain");
    assert_eq!(
        row[0],
        phoenix_storage::types::Value::Int(to_fetch as i64),
        "seamless delivery broken"
    );
    // Drain the rest to prove the tail arrives intact.
    let rest = stmt.fetch_all().unwrap();
    assert_eq!(rest.len() as u64, n - to_fetch - 1);

    let stats = pc.stats().clone();
    pc.close();

    (
        stats.last_recovery_virtual_us as f64 / 1e6,
        stats.last_reposition_us as f64 / 1e6,
        recompute_s,
    )
}
