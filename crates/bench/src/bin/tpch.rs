//! TPC-H query bench: the cost-aware planner's index wins, measured and
//! proven by access path.
//!
//! Runs Q1/Q6/Q11/Q16 against the same loaded database twice — first with
//! no secondary indexes (every table access is a scan), then after `CREATE
//! INDEX` on the columns the predicates and joins touch — and records the
//! best-of-N latency plus the EXPLAIN access-path summary for each run.
//! Q1's range predicate covers nearly the whole of LINEITEM, so the cost
//! model must keep it on a scan; Q6 (selective date range), Q11 (nation →
//! supplier → partsupp join chain) and Q16 (size IN-list + partsupp probe)
//! must flip to index-backed plans and get faster.
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin tpch -- --quick --check --out BENCH_tpch.json
//! ```
//!
//! `--check` exits non-zero unless the indexed plans for Q6/Q11/Q16 are
//! index-backed, Q1 stays on a scan, row counts agree between runs, and
//! each index-backed query beat its unindexed time.

use std::time::Instant;

use phoenix_bench::BenchEnv;
use phoenix_driver::Connection;
use phoenix_storage::types::Value;
use phoenix_tpch::queries;

/// The queries this bench reports (a subset of the full suite: the paper's
/// Table 1 names plus Q6, the canonical selective-range query).
const BENCH_QUERIES: &[&str] = &["Q1", "Q6", "Q11", "Q16"];

/// Secondary indexes for the second pass: predicate columns (Q6's date
/// range, Q16's size IN-list, Q11's nation filter reached through
/// supplier) and the join columns the planner can turn into index
/// nested-loop probes.
const INDEXES: &[&str] = &[
    "CREATE INDEX ix_l_shipdate ON lineitem(l_shipdate)",
    "CREATE INDEX ix_s_nationkey ON supplier(s_nationkey)",
    "CREATE INDEX ix_ps_suppkey ON partsupp(ps_suppkey)",
    "CREATE INDEX ix_ps_partkey ON partsupp(ps_partkey)",
    "CREATE INDEX ix_p_size ON part(p_size)",
];

struct QueryRun {
    name: &'static str,
    rows: usize,
    best_ms: f64,
    /// EXPLAIN access summary, e.g. `scan+probe(ix_ps_suppkey)`.
    access: String,
}

fn text(v: &Value) -> String {
    match v {
        Value::Text(t) => t.clone(),
        Value::Null => String::new(),
        other => other.to_string(),
    }
}

/// Render the EXPLAIN rows as a compact access-path summary: one entry per
/// plan step (`access` or `access(index)`), `+`-joined, ORDER BY trailer
/// rows dropped.
fn access_summary(conn: &mut Connection, sql: &str) -> String {
    let plan = conn.explain(sql).expect("EXPLAIN");
    plan.rows()
        .iter()
        .filter_map(|r| {
            let access = text(&r[3]);
            if access.starts_with("order-by") {
                return None;
            }
            let index = text(&r[4]);
            Some(if index.is_empty() {
                access
            } else {
                format!("{access}({index})")
            })
        })
        .collect::<Vec<_>>()
        .join("+")
}

fn run_queries(conn: &mut Connection, reps: usize) -> Vec<QueryRun> {
    BENCH_QUERIES
        .iter()
        .map(|name| {
            let q = queries::by_name(name).expect("known query");
            let access = access_summary(conn, q.sql);
            let mut rows = 0;
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = conn.execute(q.sql).expect(name);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                rows = r.rows().len();
                best = best.min(ms);
            }
            eprintln!("tpch: {name} {access} -> {best:.2} ms, {rows} rows");
            QueryRun {
                name,
                rows,
                best_ms: best,
                access,
            }
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check = false;
    let mut out = String::from("BENCH_tpch.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown flag {other} (expected --quick/--check/--out)"),
        }
    }
    let (scale, reps) = if quick { (1.0, 3) } else { (4.0, 5) };

    eprintln!("# loading TPC-H-style database (scale {scale}) …");
    let env = BenchEnv::tpch(scale);
    let mut conn = env.native();

    eprintln!("# pass 1: no secondary indexes");
    let unindexed = run_queries(&mut conn, reps);

    for ddl in INDEXES {
        conn.execute(ddl).expect("CREATE INDEX");
    }
    eprintln!("# pass 2: {} secondary indexes", INDEXES.len());
    let indexed = run_queries(&mut conn, reps);
    conn.close();

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mode = if quick { "quick" } else { "full" };

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"tpch\",\n");
    body.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    body.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    body.push_str(&format!("  \"scale\": {scale},\n"));
    body.push_str(&format!("  \"unit\": \"ms_per_query_best_of_{reps}\",\n"));
    body.push_str("  \"indexes\": [\n");
    body.push_str(
        &INDEXES
            .iter()
            .map(|d| format!("    \"{d}\""))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    body.push_str("\n  ],\n");
    body.push_str("  \"queries\": {\n");
    let entries: Vec<String> = unindexed
        .iter()
        .zip(indexed.iter())
        .map(|(u, i)| {
            format!(
                "    \"{}\": {{\n      \"rows\": {},\n      \"unindexed_ms\": {:.3},\n      \
                 \"indexed_ms\": {:.3},\n      \"speedup\": {:.2},\n      \
                 \"plan_unindexed\": \"{}\",\n      \"plan_indexed\": \"{}\"\n    }}",
                u.name,
                u.rows,
                u.best_ms,
                i.best_ms,
                u.best_ms / i.best_ms,
                u.access,
                i.access
            )
        })
        .collect();
    body.push_str(&entries.join(",\n"));
    body.push_str("\n  }\n}\n");

    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{body}");

    if check {
        let mut failures = Vec::new();
        for (u, i) in unindexed.iter().zip(indexed.iter()) {
            if u.rows != i.rows {
                failures.push(format!(
                    "{}: row count changed with indexes ({} -> {})",
                    u.name, u.rows, i.rows
                ));
            }
            if u.access.contains("ix_") {
                failures.push(format!(
                    "{}: unindexed plan references an index: {}",
                    u.name, u.access
                ));
            }
        }
        for (u, i) in unindexed.iter().zip(indexed.iter()) {
            match i.name {
                // Q1's predicate covers ~98% of LINEITEM: the cost model
                // must keep scanning.
                "Q1" => {
                    if i.access.contains("ix_") {
                        failures.push(format!("Q1 must stay on a scan, got {}", i.access));
                    }
                }
                _ => {
                    if !i.access.contains("ix_") {
                        failures.push(format!("{} must be index-backed, got {}", i.name, i.access));
                    }
                    if i.best_ms >= u.best_ms {
                        failures.push(format!(
                            "{}: indexed plan not faster ({:.3} ms vs {:.3} ms scan)",
                            i.name, i.best_ms, u.best_ms
                        ));
                    }
                }
            }
        }
        if !failures.is_empty() {
            eprintln!("tpch: CHECK FAILED");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("tpch: check passed (Q6/Q11/Q16 index-backed and faster, Q1 stays scan)");
    }
}
