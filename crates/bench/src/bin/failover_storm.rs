//! Failover storm: the phoenix-repl headline numbers. Three phases against
//! a primary/standby pair joined by the WAL-shipping channel:
//!
//! 1. **Lag vs write rate** — burst DML at the primary under async
//!    shipping and sample `last_gsn - applied_gsn` on the standby, then
//!    time the drain to full catch-up. Shows the ship channel keeps up
//!    with the commit path and how far behind async mode is allowed to
//!    fall.
//! 2. **Promotion time** — kill a caught-up semi-sync primary, promote
//!    the standby, and measure wall time from loss to the first query
//!    answered by the survivor (replay-the-tail + listen + login).
//! 3. **Session herd** — a herd of Phoenix sessions opened with
//!    `connect_multi(primary, standby)` churns tagged DML; mid-churn the
//!    primary is killed and the standby promoted. Every session must ride
//!    the loss masked; the phase reports time-to-first-reply percentiles
//!    measured from the instant of server loss.
//!
//! Emits `BENCH_failover.json`:
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin failover_storm -- --quick --check
//! cargo run --release -p phoenix-bench --bin failover_storm -- \
//!     --out BENCH_failover.json
//! ```
//!
//! `--quick` storms 100 sessions (the CI gate); the default storms 1 000.
//! `--check` additionally asserts the exactly-once invariants on the
//! survivor: the herd table holds exactly as many rows as the herd had
//! acknowledged, a per-session sample matches each session's own acked
//! count (a double-apply or a lost write would skew it), and at least one
//! session went through recovery — the loss really interrupted the herd.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::{Connection, Environment};
use phoenix_engine::{CommitMode, EngineConfig};
use phoenix_repl::{Shipper, Standby, StandbyConfig};
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;

/// Client worker threads driving the herd.
const WORKERS: usize = 16;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("phoenix-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn semi_sync() -> EngineConfig {
    EngineConfig {
        commit_mode: CommitMode::SemiSync,
        ..EngineConfig::default()
    }
}

fn count(conn: &mut Connection, sql: &str) -> i64 {
    match conn.execute(sql).unwrap().rows()[0][0] {
        Value::Int(n) => n,
        ref other => panic!("expected integer count, got {other:?}"),
    }
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let t = Instant::now() + deadline;
    while !cond() {
        assert!(Instant::now() < t, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Retry promotion until the standby accepts it; the accept loop needs a
/// beat to drain after the operator decision, same as a real supervisor.
fn promote_retry(standby: &Standby) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match standby.promote(0) {
            Ok(epoch) => return epoch,
            Err(e) if e.to_string().contains("already promoted") => return standby.epoch(),
            Err(e) => {
                assert!(Instant::now() < deadline, "promotion never succeeded: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Phase 1: replication lag vs write rate (async shipping)
// ---------------------------------------------------------------------------

struct LagEntry {
    label: &'static str,
    writes: u64,
    achieved_per_sec: f64,
    max_lag_records: u64,
    drain_ms: u128,
}

fn lag_phase(quick: bool) -> Vec<LagEntry> {
    let pdir = temp_dir("lag-p");
    let sdir = temp_dir("lag-s");
    // Async shipping: commits do not wait for the standby, so lag is real.
    let h = ServerHarness::start(&pdir, EngineConfig::default()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut c = env.connect(&h.addr(), "bench", "lag").unwrap();
    c.execute("CREATE TABLE lag (id INT, v TEXT)").unwrap();

    let bursts: &[(&'static str, u64, Duration)] = if quick {
        &[
            ("throttled_1ms", 200, Duration::from_millis(1)),
            ("unthrottled", 1_000, Duration::ZERO),
        ]
    } else {
        &[
            ("throttled_1ms", 1_000, Duration::from_millis(1)),
            ("unthrottled", 5_000, Duration::ZERO),
            ("unthrottled_x2", 10_000, Duration::ZERO),
        ]
    };

    let mut out = Vec::new();
    let mut next_id = 0u64;
    for &(label, writes, pace) in bursts {
        let t0 = Instant::now();
        let mut max_lag = 0u64;
        for i in 0..writes {
            let id = next_id;
            next_id += 1;
            c.execute(&format!("INSERT INTO lag VALUES ({id}, 'r-{id}')"))
                .unwrap();
            if !pace.is_zero() {
                std::thread::sleep(pace);
            }
            if i % 32 == 0 {
                let last = h.with_engine(|e| e.last_gsn()).unwrap();
                max_lag = max_lag.max(last.saturating_sub(standby.applied_gsn()));
            }
        }
        let burst = t0.elapsed();
        let target = h.with_engine(|e| e.last_gsn()).unwrap();
        let d0 = Instant::now();
        wait_until("standby drain", Duration::from_secs(30), || {
            standby.applied_gsn() >= target
        });
        out.push(LagEntry {
            label,
            writes,
            achieved_per_sec: writes as f64 / burst.as_secs_f64(),
            max_lag_records: max_lag,
            drain_ms: d0.elapsed().as_millis(),
        });
    }

    drop(c);
    shipper.stop();
    drop(standby);
    drop(h);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
    out
}

// ---------------------------------------------------------------------------
// Phase 2: promotion time (loss → first answered query)
// ---------------------------------------------------------------------------

struct PromotionResult {
    seeded_rows: u64,
    promote_ms: u128,
    first_query_ms: u128,
    epoch: u64,
}

fn promotion_phase(quick: bool) -> PromotionResult {
    let pdir = temp_dir("promo-p");
    let sdir = temp_dir("promo-s");
    let mut h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let rows: u64 = if quick { 500 } else { 2_000 };
    let env = Environment::new();
    let mut c = env.connect(&h.addr(), "bench", "promo").unwrap();
    c.execute("CREATE TABLE p (id INT)").unwrap();
    for i in 0..rows {
        c.execute(&format!("INSERT INTO p VALUES ({i})")).unwrap();
    }
    let target = h.with_engine(|e| e.last_gsn()).unwrap();
    wait_until("standby catch-up", Duration::from_secs(30), || {
        standby.applied_gsn() >= target
    });
    drop(c);

    let t_loss = Instant::now();
    h.crash().unwrap();
    shipper.stop();
    let epoch = promote_retry(&standby);
    let promote_ms = t_loss.elapsed().as_millis();

    // First query answered by the survivor, measured from the loss.
    let mut c2 = env.connect(&standby.addr(), "bench", "promo").unwrap();
    let served = count(&mut c2, "SELECT COUNT(*) FROM p");
    let first_query_ms = t_loss.elapsed().as_millis();
    assert_eq!(served as u64, rows, "promotion lost acknowledged rows");

    drop(c2);
    drop(standby);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);
    PromotionResult {
        seeded_rows: rows,
        promote_ms,
        first_query_ms,
        epoch,
    }
}

// ---------------------------------------------------------------------------
// Phase 3: session herd rides the failover
// ---------------------------------------------------------------------------

struct HerdResult {
    sessions: u64,
    acked: u64,
    recoveries: u64,
    ttfr_p50_ms: u128,
    ttfr_p95_ms: u128,
    ttfr_max_ms: u128,
    promote_ms: u128,
    ledger_rows: u64,
}

fn herd_phase(sessions: usize, check: bool) -> HerdResult {
    let pdir = temp_dir("herd-p");
    let sdir = temp_dir("herd-s");
    let mut h = ServerHarness::start(&pdir, semi_sync()).unwrap();
    let standby = Standby::start(&sdir, StandbyConfig::default()).unwrap();
    let shipper = Shipper::start(h.shared_engine().unwrap(), standby.addr());

    let env = Environment::new();
    let mut admin = env.connect(&h.addr(), "bench", "herd").unwrap();
    admin.execute("CREATE TABLE herd (id INT, s INT)").unwrap();
    drop(admin);

    let start = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let ramped = Arc::new(AtomicU64::new(0));
    let replied = Arc::new(AtomicU64::new(0));
    // Microseconds since `start` at which the primary was lost; 0 = alive.
    let crash_us = Arc::new(AtomicU64::new(0));
    let paddr = h.addr();
    let saddr = standby.addr();

    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let (paddr, saddr) = (paddr.clone(), saddr.clone());
        let (stop, ramped, replied, crash_us) = (
            stop.clone(),
            ramped.clone(),
            replied.clone(),
            crash_us.clone(),
        );
        let mine: Vec<usize> = (0..sessions).filter(|s| s % WORKERS == w).collect();
        handles.push(std::thread::spawn(move || {
            let env = Environment::new();
            let mut config = PhoenixConfig::default();
            config.recovery.ping_interval = Duration::from_millis(20);
            config.recovery.max_wait = Duration::from_secs(30);
            let mut conns: Vec<(usize, PhoenixConnection)> = mine
                .iter()
                .map(|&s| {
                    let pc = PhoenixConnection::connect_multi(
                        &env,
                        &[paddr.as_str(), saddr.as_str()],
                        "bench",
                        "herd",
                        config.clone(),
                    )
                    .unwrap_or_else(|e| panic!("session {s} failed to open: {e}"));
                    ramped.fetch_add(1, Ordering::Relaxed);
                    (s, pc)
                })
                .collect();

            let mut acked = vec![0u64; conns.len()];
            let mut ttfr: Vec<Option<Duration>> = vec![None; conns.len()];
            let mut pass = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for (i, (s, pc)) in conns.iter_mut().enumerate() {
                    let id = *s as u64 * 1_000_000 + pass;
                    match pc.execute(&format!("INSERT INTO herd VALUES ({id}, {s})")) {
                        Ok(_) => {
                            acked[i] += 1;
                            let lost = crash_us.load(Ordering::Relaxed);
                            if lost != 0 && ttfr[i].is_none() {
                                let since =
                                    start.elapsed().saturating_sub(Duration::from_micros(lost));
                                ttfr[i] = Some(since);
                                replied.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) => panic!("herd insert on session {s} not masked: {e}"),
                    }
                }
                pass += 1;
            }
            let per_session: Vec<(usize, u64, u128, u64)> = conns
                .iter()
                .enumerate()
                .map(|(i, (s, pc))| {
                    (
                        *s,
                        acked[i],
                        ttfr[i].map(|d| d.as_millis()).unwrap_or(0),
                        pc.stats().recoveries,
                    )
                })
                .collect();
            per_session
        }));
    }

    wait_until("herd ramp", Duration::from_secs(120), || {
        ramped.load(Ordering::Relaxed) == sessions as u64
    });
    // Let the churn settle, then lose the primary mid-flight.
    std::thread::sleep(Duration::from_millis(300));
    crash_us.store(start.elapsed().as_micros() as u64, Ordering::Relaxed);
    let t_loss = Instant::now();
    h.crash().unwrap();
    shipper.stop();
    std::thread::sleep(Duration::from_millis(100));
    promote_retry(&standby);
    let promote_ms = t_loss.elapsed().as_millis();

    wait_until("herd time-to-first-reply", Duration::from_secs(120), || {
        replied.load(Ordering::Relaxed) == sessions as u64
    });
    stop.store(true, Ordering::Relaxed);

    let mut acked_by_session = vec![0u64; sessions];
    let mut ttfr_ms = Vec::with_capacity(sessions);
    let mut recoveries = 0u64;
    for hdl in handles {
        for (s, acked, ttfr, recs) in hdl.join().unwrap() {
            acked_by_session[s] = acked;
            ttfr_ms.push(ttfr);
            recoveries += recs;
        }
    }
    ttfr_ms.sort_unstable();
    let acked: u64 = acked_by_session.iter().sum();

    let mut audit = env.connect(&standby.addr(), "audit", "herd").unwrap();
    let ledger_rows = count(&mut audit, "SELECT COUNT(*) FROM herd") as u64;
    if check {
        assert_eq!(
            ledger_rows, acked,
            "exactly-once violated: survivor row count != acknowledged inserts"
        );
        // A skew hidden by the total (dup + loss cancelling) shows up in the
        // per-session ledger; sample a stride of the herd.
        for s in (0..sessions).step_by((sessions / 37).max(1)) {
            let n = count(
                &mut audit,
                &format!("SELECT COUNT(*) FROM herd WHERE s = {s}"),
            );
            assert_eq!(
                n as u64, acked_by_session[s],
                "session {s}: ledger diverged from its acked count"
            );
        }
        assert!(
            recoveries >= sessions as u64,
            "every session must recover across the loss ({recoveries}/{sessions})"
        );
        eprintln!("failover_storm: check ok");
    }
    drop(audit);
    drop(standby);
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&sdir);

    HerdResult {
        sessions: sessions as u64,
        acked,
        recoveries,
        ttfr_p50_ms: ttfr_ms[sessions / 2],
        ttfr_p95_ms: ttfr_ms[(sessions * 95) / 100],
        ttfr_max_ms: *ttfr_ms.last().unwrap(),
        promote_ms,
        ledger_rows,
    }
}

// ---------------------------------------------------------------------------

fn main() {
    let mut quick = false;
    let mut check = false;
    let mut out = "BENCH_failover.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    let sessions = if quick { 100 } else { 1_000 };
    let mode = if quick { "quick" } else { "full" };

    eprintln!("failover_storm: phase 1 — replication lag vs write rate");
    let lag = lag_phase(quick);
    for e in &lag {
        eprintln!(
            "  {}: {} writes at {:.0}/s, max lag {} records, drained in {} ms",
            e.label, e.writes, e.achieved_per_sec, e.max_lag_records, e.drain_ms
        );
    }

    eprintln!("failover_storm: phase 2 — promotion time");
    let promo = promotion_phase(quick);
    eprintln!(
        "  {} rows preserved; promoted (epoch {}) in {} ms, first query answered {} ms after loss",
        promo.seeded_rows, promo.epoch, promo.promote_ms, promo.first_query_ms
    );

    eprintln!("failover_storm: phase 3 — {sessions}-session herd rides the failover");
    let herd = herd_phase(sessions, check);
    eprintln!(
        "  {} sessions, {} acked inserts, {} rows on survivor; \
         time-to-first-reply p50 {} ms / p95 {} ms / max {} ms",
        herd.sessions,
        herd.acked,
        herd.ledger_rows,
        herd.ttfr_p50_ms,
        herd.ttfr_p95_ms,
        herd.ttfr_max_ms
    );

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // host_parallelism is disclosed because every number here — ship rate,
    // promotion time, herd recovery — is a single-machine measurement; the
    // primary, the standby, and the whole client herd share these cores.
    let lag_json: Vec<String> = lag
        .iter()
        .map(|e| {
            format!(
                "    {{ \"label\": \"{}\", \"writes\": {}, \"achieved_per_sec\": {:.0}, \
                 \"max_lag_records\": {}, \"drain_ms\": {} }}",
                e.label, e.writes, e.achieved_per_sec, e.max_lag_records, e.drain_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"failover_storm\",\n  \"mode\": \"{mode}\",\n  \"host_parallelism\": {host},\n  \"commit_mode\": \"semi_sync\",\n  \"lag_vs_write_rate\": [\n{}\n  ],\n  \"promotion\": {{\n    \"seeded_rows\": {},\n    \"promote_ms\": {},\n    \"first_query_ms\": {},\n    \"epoch\": {}\n  }},\n  \"herd\": {{\n    \"sessions\": {},\n    \"workers\": {WORKERS},\n    \"acked_inserts\": {},\n    \"ledger_rows\": {},\n    \"recoveries\": {},\n    \"promote_ms\": {},\n    \"time_to_first_reply_ms\": {{ \"p50\": {}, \"p95\": {}, \"max\": {} }}\n  }}\n}}\n",
        lag_json.join(",\n"),
        promo.seeded_rows,
        promo.promote_ms,
        promo.first_query_ms,
        promo.epoch,
        herd.sessions,
        herd.acked,
        herd.ledger_rows,
        herd.recoveries,
        herd.promote_ms,
        herd.ttfr_p50_ms,
        herd.ttfr_p95_ms,
        herd.ttfr_max_ms,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("failover_storm: wrote {out}");
    print!("{json}");
}
