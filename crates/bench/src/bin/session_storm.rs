//! Session-storm runner: the sessiond headline workload. Ramp up thousands
//! of *virtual* sessions against the sharded reactor front-end (login +
//! session context + a seed row each), churn tagged DML batches across all
//! of them, force a mid-storm sessiond spill pass, crash the server in the
//! middle of the churn, and let the whole herd recover — every session
//! reconnects, probes its last tags against the durable storm table, and
//! resubmits exactly the work that never committed.
//!
//! Process topology: the bench process hosts the server (so the reactor
//! owns one fd per session) and forks the client herd into
//! `CLIENT_PROCS` child processes of itself (`--worker-child`), each
//! owning one fd per session it drives. A single process would need two
//! fds per session and 10 000 sessions would blow through common
//! `RLIMIT_NOFILE` hard caps; split this way each side stays well under.
//! Children stream `OPS <n>` progress lines over stdout so the parent can
//! place the spill pass and the crash by global op count, and end with a
//! `DONE key=value...` stats line.
//!
//! Emits `BENCH_session_storm.json`:
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin session_storm -- --quick
//! cargo run --release -p phoenix-bench --bin session_storm -- \
//!     --out BENCH_session_storm.json
//! ```
//!
//! `--quick` storms 1 000 sessions (the CI gate); the default storms
//! 10 000. `--check` additionally asserts the exactly-once invariants:
//! the storm table holds exactly `sessions * rounds * batch` rows (the
//! primary key makes any double-apply a duplicate), the roster holds every
//! session's seed row, and every session went through herd recovery.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phoenix_driver::{Connection, Environment};
use phoenix_engine::EngineConfig;
use phoenix_sessiond::{IoModel, LifecycleConfig, ServerConfig, SessiondHarness};
use phoenix_storage::types::Value;

/// Tagged statements per churn batch (each tag is one idempotently
/// probeable row).
const BATCH: u64 = 2;
/// Churn rounds per session; the crash lands mid-schedule, so every
/// session has at least one round left to drive its recovery.
const ROUNDS: u64 = 3;
/// Client worker threads, total across all client processes.
const WORKERS: usize = 16;
/// Client herd processes the storm forks (`--worker-child` re-execs of
/// this binary); each holds `sessions / CLIENT_PROCS` sockets.
const CLIENT_PROCS: usize = 4;

fn key(s: u64, round: u64, b: u64) -> u64 {
    s * 100 + round * BATCH + b
}

fn temp_dir() -> PathBuf {
    let d = std::env::temp_dir().join(format!("phoenix-session-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn env() -> Environment {
    Environment::new().with_read_timeout(Some(Duration::from_secs(60)))
}

fn connect_retry(addr: &str, deadline: Instant) -> Connection {
    loop {
        match env().connect(addr, "storm", "bench") {
            Ok(conn) => return conn,
            Err(e) => {
                assert!(Instant::now() < deadline, "reconnect never succeeded: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[derive(Default)]
struct WorkerStats {
    resubmitted: u64,
    replayed: u64,
    recovered_sessions: u64,
    comm_errors: u64,
}

/// Reconnect session `s` and settle `round`: probe each tag, resubmit the
/// ones that never committed. Returns the fresh connection; counters are
/// committed only for the pass that fully succeeds.
fn recover_session(addr: &str, s: u64, round: u64, stats: &mut WorkerStats) -> Connection {
    let deadline = Instant::now() + Duration::from_secs(120);
    'pass: loop {
        let mut conn = connect_retry(addr, deadline);
        let mut resubmitted = 0u64;
        let mut replayed = 0u64;
        for b in 0..BATCH {
            let k = key(s, round, b);
            let applied = match conn.execute(&format!("SELECT COUNT(*) FROM storm WHERE k = {k}")) {
                Ok(r) => r.rows()[0][0] == Value::Int(1),
                Err(_) => {
                    stats.comm_errors += 1;
                    continue 'pass;
                }
            };
            if applied {
                replayed += 1;
            } else {
                let ins = format!("INSERT INTO storm VALUES ({k}, {s}, {})", round * BATCH + b);
                if conn.execute(&ins).is_err() {
                    stats.comm_errors += 1;
                    continue 'pass;
                }
                resubmitted += 1;
            }
        }
        stats.resubmitted += resubmitted;
        stats.replayed += replayed;
        stats.recovered_sessions += 1;
        return conn;
    }
}

struct WorkerReport {
    stats: WorkerStats,
    ramp_done: Instant,
    churn_done: Instant,
}

fn worker(id: usize, addr: String, sessions: Vec<u64>, ops: Arc<AtomicU64>) -> WorkerReport {
    let mut stats = WorkerStats::default();
    // Ramp: login + session context + seed row per virtual session.
    let ramp_deadline = Instant::now() + Duration::from_secs(300);
    let mut conns: Vec<(u64, Connection)> = sessions
        .iter()
        .map(|&s| {
            // Retry: at full scale a burst of 16 workers ramping at once
            // can transiently outrun the accept loop.
            let mut conn = connect_retry(&addr, ramp_deadline);
            conn.execute(&format!("SET app_name 'w{id}_s{s}'"))
                .expect("ramp SET");
            conn.execute(&format!("INSERT INTO roster VALUES ({s})"))
                .expect("ramp seed");
            (s, conn)
        })
        .collect();
    let ramp_done = Instant::now();

    // Churn: every round sends one tagged batch per session. Any error is
    // the crash (or a connection severed by it): recover that session —
    // reconnect, probe this round's tags, resubmit the missing ones — and
    // move on with the fresh connection.
    for round in 0..ROUNDS {
        for (s, conn) in conns.iter_mut() {
            let stmts: Vec<String> = (0..BATCH)
                .map(|b| {
                    format!(
                        "INSERT INTO storm VALUES ({}, {s}, {})",
                        key(*s, round, b),
                        round * BATCH + b
                    )
                })
                .collect();
            let ok = match conn.execute_batch(&stmts) {
                Ok(items) => {
                    items.len() == stmts.len()
                        && items
                            .iter()
                            .all(|i| matches!(i, phoenix_wire::message::BatchItem::Ok { .. }))
                }
                Err(_) => false,
            };
            if !ok {
                stats.comm_errors += 1;
                *conn = recover_session(&addr, *s, round, &mut stats);
            }
            ops.fetch_add(BATCH, Ordering::Relaxed);
        }
    }
    let churn_done = Instant::now();
    for (_, conn) in conns {
        conn.close();
    }
    WorkerReport {
        stats,
        ramp_done,
        churn_done,
    }
}

/// Client herd child: drive sessions `[lo, hi)` against `addr` with
/// `threads` worker threads, streaming `OPS <n>` progress to stdout and a
/// final `DONE key=value...` stats line. Re-exec'd by the parent so the
/// herd's client sockets live under this process's own fd limit.
fn worker_child(addr: String, lo: u64, hi: u64, threads: usize, base_id: usize) {
    #[cfg(target_os = "linux")]
    {
        let _ = phoenix_sessiond::sys::raise_nofile(hi - lo + 256);
    }
    let t0 = Instant::now();
    let ops = Arc::new(AtomicU64::new(0));
    let finished = Arc::new(AtomicBool::new(false));

    let monitor = {
        let ops = Arc::clone(&ops);
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            while !finished.load(Ordering::Relaxed) {
                // Rust's stdout is line-buffered even into a pipe, so each
                // println reaches the parent's reader promptly.
                println!("OPS {}", ops.load(Ordering::Relaxed));
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let mine: Vec<u64> = (lo..hi).filter(|s| (*s as usize) % threads == t).collect();
            let addr = addr.clone();
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || worker(base_id + t, addr, mine, ops))
        })
        .collect();
    let reports: Vec<WorkerReport> = handles
        .into_iter()
        .map(|t| t.join().expect("worker panicked"))
        .collect();
    finished.store(true, Ordering::Relaxed);
    monitor.join().unwrap();

    let ramp_ms = reports
        .iter()
        .map(|r| (r.ramp_done - t0).as_millis() as u64)
        .max()
        .unwrap_or(0);
    let churn_ms = reports
        .iter()
        .map(|r| (r.churn_done - t0).as_millis() as u64)
        .max()
        .unwrap_or(0)
        .saturating_sub(ramp_ms);
    let resubmitted: u64 = reports.iter().map(|r| r.stats.resubmitted).sum();
    let replayed: u64 = reports.iter().map(|r| r.stats.replayed).sum();
    let recovered: u64 = reports.iter().map(|r| r.stats.recovered_sessions).sum();
    let comm: u64 = reports.iter().map(|r| r.stats.comm_errors).sum();
    println!("OPS {}", ops.load(Ordering::Relaxed));
    println!(
        "DONE ramp_ms={ramp_ms} churn_ms={churn_ms} resubmitted={resubmitted} \
         replayed={replayed} recovered={recovered} comm={comm}"
    );
}

/// Stats a client herd child reports on its `DONE` line.
#[derive(Default)]
struct ChildDone {
    ramp_ms: u64,
    churn_ms: u64,
    resubmitted: u64,
    replayed: u64,
    recovered: u64,
    comm: u64,
}

fn parse_done(rest: &str) -> ChildDone {
    let mut d = ChildDone::default();
    for kv in rest.split_whitespace() {
        let (k, v) = kv.split_once('=').expect("DONE key=value");
        let v: u64 = v.parse().expect("DONE value");
        match k {
            "ramp_ms" => d.ramp_ms = v,
            "churn_ms" => d.churn_ms = v,
            "resubmitted" => d.resubmitted = v,
            "replayed" => d.replayed = v,
            "recovered" => d.recovered = v,
            "comm" => d.comm = v,
            other => panic!("DONE key {other}"),
        }
    }
    d
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker-child") {
        assert_eq!(args.len(), 6, "--worker-child addr lo hi threads base_id");
        worker_child(
            args[1].clone(),
            args[2].parse().unwrap(),
            args[3].parse().unwrap(),
            args[4].parse().unwrap(),
            args[5].parse().unwrap(),
        );
        return;
    }

    let mut quick = false;
    let mut check = false;
    let mut out = String::from("BENCH_session_storm.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check" => check = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown flag {other} (expected --quick/--check/--out)"),
        }
    }
    let mut sessions: u64 = if quick { 1_000 } else { 10_000 };
    let mode = if quick { "quick" } else { "full" };

    // One server-side socket per virtual session lives in this process
    // (the client ends live in the herd children), plus slack for
    // WAL/snapshot/epoll/pipe fds.
    #[cfg(target_os = "linux")]
    {
        let want = sessions + 2_048;
        match phoenix_sessiond::sys::raise_nofile(want) {
            Ok(got) if got < want => {
                let fit = got.saturating_sub(2_048);
                eprintln!(
                    "session_storm: RLIMIT_NOFILE {got} < {want}, clamping to {fit} sessions"
                );
                sessions = fit.max(64);
            }
            Ok(_) => {}
            Err(e) => eprintln!("session_storm: raise_nofile failed ({e}), living dangerously"),
        }
    }

    let dir = temp_dir();
    let config = ServerConfig {
        io: IoModel::Reactor { shards: 4 },
        lifecycle: LifecycleConfig {
            idle_spill_after: Some(Duration::from_millis(50)),
            retention: Some(Duration::from_secs(3600)),
            ..LifecycleConfig::default()
        },
    };
    let mut h = SessiondHarness::start(&dir, EngineConfig::default(), config)
        .expect("start sessiond harness");
    let io_model = h.io_model().unwrap_or("none");
    let shards = h.shards().unwrap_or(0);
    let addr = h.addr();
    eprintln!(
        "session_storm[{mode}]: {sessions} sessions over io_model={io_model} shards={shards}, \
         herd split across {CLIENT_PROCS} client processes"
    );

    {
        let mut setup = env().connect(&addr, "storm", "bench").expect("setup");
        setup
            .execute("CREATE TABLE storm (k INT PRIMARY KEY, s INT, t INT)")
            .unwrap();
        setup
            .execute("CREATE TABLE roster (s INT PRIMARY KEY)")
            .unwrap();
        setup.close();
    }

    let spill_base = phoenix_engine::spill::sessiond_metrics()
        .spilled_total
        .get();
    let restore_base = phoenix_engine::spill::sessiond_metrics()
        .restored_total
        .get();

    let total_ops = sessions * ROUNDS * BATCH;
    let exe = std::env::current_exe().expect("current_exe");
    let threads_per = WORKERS / CLIENT_PROCS;
    let child_ops: Arc<Vec<AtomicU64>> =
        Arc::new((0..CLIENT_PROCS).map(|_| AtomicU64::new(0)).collect());
    let t_start = Instant::now();

    // Fork the herd: child c drives the contiguous session range
    // [c*per .. c*per+per), with the remainder spread over the low ids.
    let mut children = Vec::new();
    let mut lo = 0u64;
    for c in 0..CLIENT_PROCS {
        let per =
            sessions / CLIENT_PROCS as u64 + u64::from((c as u64) < sessions % CLIENT_PROCS as u64);
        let hi = lo + per;
        let mut child = Command::new(&exe)
            .arg("--worker-child")
            .arg(&addr)
            .arg(lo.to_string())
            .arg(hi.to_string())
            .arg(threads_per.to_string())
            .arg((c * threads_per).to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn client herd child");
        lo = hi;
        let stdout = child.stdout.take().expect("child stdout");
        let ops = Arc::clone(&child_ops);
        let reader = std::thread::spawn(move || -> ChildDone {
            let mut done = None;
            for line in BufReader::new(stdout).lines() {
                let line = line.expect("child pipe");
                if let Some(n) = line.strip_prefix("OPS ") {
                    ops[c].store(n.trim().parse().expect("OPS count"), Ordering::Relaxed);
                } else if let Some(rest) = line.strip_prefix("DONE ") {
                    done = Some(parse_done(rest));
                }
            }
            done.expect("child exited without DONE")
        });
        children.push((child, reader));
    }
    let herd_ops = |counters: &[AtomicU64]| -> u64 {
        counters.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    };

    // Mid-storm lifecycle pass: most connections sit idle between their
    // rounds, so this spills a large slice of the herd to the durable
    // table; each spilled session restores transparently on its next
    // batch.
    while herd_ops(&child_ops) < total_ops / 4 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let (spilled_now, _, _) = h.cleanup_now().expect("cleanup pass");
    eprintln!("session_storm: mid-storm spill pass put {spilled_now} sessions on disk");

    // The crash, at roughly half the churn schedule.
    while herd_ops(&child_ops) < total_ops / 2 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let t_crash = Instant::now();
    h.crash().expect("crash");
    h.restart().expect("restart");
    let t_restarted = Instant::now();
    eprintln!(
        "session_storm: crashed + restarted in {} ms; herd recovery running",
        (t_restarted - t_crash).as_millis()
    );

    // Herd drain: every live virtual session hits its dead socket on the
    // next round and runs the reconnect + probe + resubmit path. A child's
    // DONE line is its last breath; then reap the process itself.
    let mut dones = Vec::new();
    for (mut child, reader) in children {
        dones.push(reader.join().expect("child reader panicked"));
        let status = child.wait().expect("wait for herd child");
        assert!(status.success(), "herd child failed: {status}");
    }
    let t_end = Instant::now();
    let herd_recovered: u64 = dones.iter().map(|d| d.recovered).sum();
    let herd_recovery_ms = (t_end - t_restarted).as_millis() as u64;

    let ramp_ms = dones.iter().map(|d| d.ramp_ms).max().unwrap_or(0);
    let churn_ms = dones.iter().map(|d| d.churn_ms).max().unwrap_or(0);
    let resubmitted: u64 = dones.iter().map(|d| d.resubmitted).sum();
    let replayed: u64 = dones.iter().map(|d| d.replayed).sum();
    let comm_errors: u64 = dones.iter().map(|d| d.comm).sum();
    let churn_rate = total_ops as f64 / (churn_ms.max(1) as f64 / 1_000.0);
    let wall_ms = (t_end - t_start).as_millis() as u64;

    let m = phoenix_engine::spill::sessiond_metrics();
    let spilled_total = m.spilled_total.get() - spill_base;
    let restored_total = m.restored_total.get() - restore_base;

    // Final image: the storm table is the exactly-once ledger.
    let (final_rows, roster_rows) = {
        let mut conn = env().connect(&addr, "storm", "bench").expect("verify");
        let rows = match conn.execute("SELECT COUNT(*) FROM storm").unwrap().rows()[0][0] {
            Value::Int(n) => n as u64,
            ref other => panic!("count: {other:?}"),
        };
        let roster = match conn.execute("SELECT COUNT(*) FROM roster").unwrap().rows()[0][0] {
            Value::Int(n) => n as u64,
            ref other => panic!("count: {other:?}"),
        };
        conn.close();
        (rows, roster)
    };
    eprintln!(
        "session_storm: {final_rows}/{total_ops} ledger rows, {herd_recovered} sessions herd-recovered \
         in {herd_recovery_ms} ms ({resubmitted} resubmitted, {replayed} replayed, \
         {spilled_total} spilled / {restored_total} restored mid-storm)"
    );

    if check {
        assert_eq!(
            final_rows, total_ops,
            "exactly-once violated: ledger row count"
        );
        assert_eq!(roster_rows, sessions, "roster lost seed rows");
        assert!(
            herd_recovered > 0 && comm_errors > 0,
            "the crash must actually interrupt the herd"
        );
        if !quick {
            assert!(
                sessions >= 10_000,
                "full storm must reach 10k sessions (fd limit clamped it to {sessions})"
            );
        }
        #[cfg(target_os = "linux")]
        assert_eq!(io_model, "reactor", "storm must run on the reactor path");
        assert!(
            spilled_now > 0 && spilled_total > 0 && restored_total > 0,
            "the mid-storm lifecycle pass must spill and restore sessions"
        );
        eprintln!("session_storm: check ok");
    }

    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // host_parallelism is disclosed because every number here — churn rate,
    // herd recovery — is a single-machine measurement; on a 1-core host the
    // client herd processes, the reactor shards, and the executors all
    // share that core.
    let json = format!(
        "{{\n  \"bench\": \"session_storm\",\n  \"mode\": \"{mode}\",\n  \"host_parallelism\": {host},\n  \"io_model\": \"{io_model}\",\n  \"shards\": {shards},\n  \"client_processes\": {CLIENT_PROCS},\n  \"workers\": {WORKERS},\n  \"sessions\": {sessions},\n  \"rounds\": {ROUNDS},\n  \"batch\": {BATCH},\n  \"total_ops\": {total_ops},\n  \"wall_ms\": {wall_ms},\n  \"ramp_ms\": {ramp_ms},\n  \"churn_ms\": {churn_ms},\n  \"churn_ops_per_sec\": {churn_rate:.0},\n  \"crash_to_listen_ms\": {},\n  \"herd_recovery_ms\": {herd_recovery_ms},\n  \"sessions_herd_recovered\": {herd_recovered},\n  \"resubmitted\": {resubmitted},\n  \"replayed_from_ledger\": {replayed},\n  \"comm_errors\": {comm_errors},\n  \"spilled_mid_storm\": {spilled_total},\n  \"restored_after_spill\": {restored_total},\n  \"ledger_rows\": {final_rows}\n}}\n",
        (t_restarted - t_crash).as_millis(),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    eprintln!("session_storm: wrote {out}");
    print!("{json}");

    drop(h);
    let _ = std::fs::remove_dir_all(&dir);
}
