//! Regenerates **Table 1** of the paper: selected results from the TPC-H
//! power test using the native driver and Phoenix.
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin table1 [scale] [iterations]
//! ```
//!
//! Prints per-query/update rows (result size, native seconds, Phoenix
//! seconds, difference, ratio) plus the Total Query and Total Updates rows —
//! the same columns as the paper's table. Absolute numbers differ from the
//! 1999 testbed; the shape to check is: Phoenix query overhead small
//! (paper: ≈1% total, ~1s per query on their scale), update overhead
//! negligible (paper: <0.5%).

use phoenix_bench::BenchEnv;
use phoenix_tpch::power::{run_power_test, PowerReport};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let iterations: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    eprintln!("# loading TPC-H-style database (scale {scale}) …");
    let env = BenchEnv::tpch(scale);
    eprintln!(
        "# orders={} lineitem≈{} — running power test ×{iterations} (native, then Phoenix)",
        env.workload.orders, env.workload.lineitems_approx
    );

    let native = {
        let mut conn = env.native();
        let r = run_power_test(&mut conn, &env.workload, iterations).expect("native power test");
        conn.close();
        r
    };
    let phoenix = {
        let mut pc = env.phoenix(BenchEnv::bench_phoenix_config());
        let r = run_power_test(&mut pc, &env.workload, iterations).expect("phoenix power test");
        pc.close();
        r
    };

    print_table1(&native, &phoenix, scale, iterations);
}

fn print_table1(native: &PowerReport, phoenix: &PowerReport, scale: f64, iterations: usize) {
    println!(
        "Table 1. Selected results from TPC-H-style power test using native driver and Phoenix."
    );
    println!("(scale factor {scale}, mean of {iterations} runs; times in seconds)");
    println!();
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>12} {:>8}",
        "Query/", "Result Set/", "Native", "Phoenix", "Difference", "Ratio"
    );
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>12} {:>8}",
        "Update", "Updates", "seconds", "seconds", "seconds", ""
    );
    println!("{}", "-".repeat(76));

    for n in &native.rows {
        let p = phoenix.row(&n.name).expect("phoenix row");
        println!(
            "{:<10} {:>12} {:>14.4} {:>14.4} {:>12.4} {:>8.3}",
            n.name,
            n.rows,
            n.seconds_mean,
            p.seconds_mean,
            p.seconds_mean - n.seconds_mean,
            if n.seconds_mean > 0.0 {
                p.seconds_mean / n.seconds_mean
            } else {
                f64::NAN
            }
        );
    }
    println!("{}", "-".repeat(76));
    println!(
        "{:<10} {:>12} {:>14.4} {:>14.4} {:>12.4} {:>8.3}",
        "TotalQry",
        "",
        native.total_query_seconds,
        phoenix.total_query_seconds,
        phoenix.total_query_seconds - native.total_query_seconds,
        phoenix.total_query_seconds / native.total_query_seconds
    );
    println!(
        "{:<10} {:>12} {:>14.4} {:>14.4} {:>12.4} {:>8.3}",
        "TotalUpd",
        "",
        native.total_update_seconds,
        phoenix.total_update_seconds,
        phoenix.total_update_seconds - native.total_update_seconds,
        phoenix.total_update_seconds / native.total_update_seconds
    );
    println!();
    println!(
        "paper shape check: query ratio ≈ 1.0x (paper: ~1.01), update ratio ≈ 1.0x (paper: <1.005)"
    );
}
