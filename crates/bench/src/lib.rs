//! Shared setup for the benchmark harness: build a TPC-H-style database on
//! disk, start the crash-injectable server over it, and hand out native /
//! Phoenix connections.
//!
//! Every table and figure of the paper's evaluation is regenerated from
//! here:
//!
//! * `cargo run --release -p phoenix-bench --bin table1` — Table 1 (power
//!   test, native vs Phoenix).
//! * `cargo run --release -p phoenix-bench --bin figure2` — Figure 2
//!   (session-recovery time vs result size) plus the §4 recovery-vs-
//!   recompute claim.
//! * `cargo bench` — Criterion benches: `power_test`, `session_recovery`,
//!   `materialize` (ablation A2), `reposition` (ablation A1).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::{Connection, Environment};
use phoenix_engine::{Engine, EngineConfig};
use phoenix_server::ServerHarness;
use phoenix_tpch::{Tpch, TpchConfig};

/// A loaded benchmark environment: data directory, running server, and the
/// workload description.
pub struct BenchEnv {
    pub harness: ServerHarness,
    pub dir: PathBuf,
    pub workload: Tpch,
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-bench-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

impl BenchEnv {
    /// Build a TPC-H database at `scale` (loaded directly through the
    /// engine, checkpointed, then served over TCP).
    pub fn tpch(scale: f64) -> BenchEnv {
        let dir = temp_dir("tpch");
        let workload = Tpch::new(TpchConfig::default().with_scale(scale));
        {
            let engine = Engine::open(&dir, EngineConfig::default()).unwrap();
            let sid = engine.create_session("loader");
            for sql in workload.setup_sql() {
                engine
                    .execute(sid, &sql)
                    .unwrap_or_else(|e| panic!("load failed: {e}"));
            }
            engine.close_session(sid).unwrap();
            engine.checkpoint().unwrap();
        }
        let harness = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        BenchEnv {
            harness,
            dir,
            workload,
        }
    }

    /// An empty database (for synthetic experiments like Figure 2).
    pub fn empty() -> BenchEnv {
        Self::empty_with(EngineConfig::default())
    }

    /// An empty database under an explicit engine config (e.g. a pinned
    /// partition count, so the partitioned commit path is exercised even on
    /// hosts whose core count would resolve the default to 1).
    pub fn empty_with(config: EngineConfig) -> BenchEnv {
        let dir = temp_dir("empty");
        let harness = ServerHarness::start(&dir, config).unwrap();
        BenchEnv {
            harness,
            dir,
            workload: Tpch::new(TpchConfig::default()),
        }
    }

    fn environment() -> Environment {
        Environment::new().with_read_timeout(Some(Duration::from_secs(5)))
    }

    /// A native driver connection — the paper's "native ODBC" baseline.
    pub fn native(&self) -> Connection {
        Self::environment()
            .connect(&self.harness.addr(), "bench", "tpch")
            .unwrap()
    }

    /// A Phoenix persistent-session connection.
    pub fn phoenix(&self, config: PhoenixConfig) -> PhoenixConnection {
        PhoenixConnection::connect(
            &Self::environment(),
            &self.harness.addr(),
            "bench",
            "tpch",
            config,
        )
        .unwrap()
    }

    /// Recovery settings tuned for benchmarking (fast ping, generous window).
    pub fn bench_phoenix_config() -> PhoenixConfig {
        let mut c = PhoenixConfig::default();
        c.recovery.read_timeout = Some(Duration::from_secs(2));
        c.recovery.ping_interval = Duration::from_millis(10);
        c.recovery.max_wait = Duration::from_secs(30);
        c
    }
}

impl Drop for BenchEnv {
    fn drop(&mut self) {
        self.harness.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Populate the synthetic Figure 2 table with `n` rows (fixed-size payload
/// plus a numeric weight, primary-keyed, deterministic).
pub fn load_figure2_table(conn: &mut Connection, table: &str, n: u64) {
    conn.execute(&format!(
        "CREATE TABLE {table} (id INT NOT NULL, payload TEXT, weight FLOAT, PRIMARY KEY (id))"
    ))
    .unwrap();
    let mut batch = Vec::with_capacity(200);
    for i in 0..n {
        batch.push(format!(
            "({i}, 'payload-row-{i:08}-abcdefghijklmnop', {}.25)",
            (i * 37) % 1000
        ));
        if batch.len() == 200 || i + 1 == n {
            conn.execute(&format!("INSERT INTO {table} VALUES {}", batch.join(", ")))
                .unwrap();
            batch.clear();
        }
    }
}

/// The Q11-shaped query over the Figure 2 table: a self-join with a SUM
/// product, grouped and ordered — the same operator mix as the paper\'s
/// recovery-experiment query, with an `n`-row result over an `n`-row table.
pub fn figure2_query(table: &str) -> String {
    format!(
        "SELECT a.id, SUM(a.weight * b.weight) AS value, MAX(a.payload) AS payload \
         FROM {table} a, {table} b WHERE a.id = b.id \
         GROUP BY a.id ORDER BY a.id"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_tpch::power::SqlExecutor;

    #[test]
    fn tpch_env_serves_queries() {
        let env = BenchEnv::tpch(0.1);
        let mut conn = env.native();
        let n = conn.exec_sql("SELECT COUNT(*) FROM lineitem").unwrap();
        assert_eq!(n, 1);
        let mut pc = env.phoenix(BenchEnv::bench_phoenix_config());
        let n = pc
            .exec_sql(phoenix_tpch::queries::by_name("Q6").unwrap().sql)
            .unwrap();
        assert_eq!(n, 1);
        pc.close();
    }

    #[test]
    fn figure2_loader_counts() {
        let env = BenchEnv::empty();
        let mut conn = env.native();
        load_figure2_table(&mut conn, "f2", 501);
        let r = conn.execute("SELECT COUNT(*) FROM f2").unwrap();
        assert_eq!(r.rows()[0][0], phoenix_storage::types::Value::Int(501));
    }
}
