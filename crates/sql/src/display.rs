//! Rendering AST nodes back to parseable SQL.
//!
//! Phoenix's rewrites (metadata probe, capture-into-table, temp-object
//! redirection) are implemented as AST surgery followed by re-rendering, so
//! the renderer must produce text the parser accepts and that means the same
//! thing. The property tests in this module's test suite (and proptest in
//! `tests/`) check `parse(render(ast)) == ast` on a normalized AST.
//!
//! Strings are escaped (`'` doubled); identifiers are emitted bare — the
//! dialect's identifiers are taken verbatim from the AST, so callers that
//! invent names must keep them lexable (Phoenix's generated names all are).

use std::fmt::Write;

use crate::ast::*;

/// Render a statement to SQL text.
pub fn render_statement(stmt: &Statement) -> String {
    let mut out = String::new();
    write_statement(&mut out, stmt);
    out
}

/// Render an expression to SQL text.
pub fn render_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr);
    out
}

fn write_statement(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::Select(s) => write_select(out, s),
        Statement::Insert(i) => {
            let _ = write!(out, "INSERT INTO {}", i.table);
            if let Some(cols) = &i.columns {
                let _ = write!(out, " ({})", cols.join(", "));
            }
            match &i.source {
                InsertSource::Values(rows) => {
                    out.push_str(" VALUES ");
                    for (ri, row) in rows.iter().enumerate() {
                        if ri > 0 {
                            out.push_str(", ");
                        }
                        out.push('(');
                        for (ci, e) in row.iter().enumerate() {
                            if ci > 0 {
                                out.push_str(", ");
                            }
                            write_expr(out, e);
                        }
                        out.push(')');
                    }
                }
                InsertSource::Select(sel) => {
                    out.push(' ');
                    write_select(out, sel);
                }
            }
        }
        Statement::Update(u) => {
            let _ = write!(out, "UPDATE {} SET ", u.table);
            for (i, (col, e)) in u.assignments.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{col} = ");
                write_expr(out, e);
            }
            if let Some(w) = &u.where_clause {
                out.push_str(" WHERE ");
                write_expr(out, w);
            }
        }
        Statement::Delete(d) => {
            let _ = write!(out, "DELETE FROM {}", d.table);
            if let Some(w) = &d.where_clause {
                out.push_str(" WHERE ");
                write_expr(out, w);
            }
        }
        Statement::CreateTable(c) => {
            let _ = write!(out, "CREATE TABLE {} (", c.name);
            for (i, col) in c.columns.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{} {}", col.name, col.type_name);
                if col.not_null {
                    out.push_str(" NOT NULL");
                }
            }
            if !c.primary_key.is_empty() {
                let _ = write!(out, ", PRIMARY KEY ({})", c.primary_key.join(", "));
            }
            out.push(')');
        }
        Statement::DropTable { name, if_exists } => {
            let _ = write!(
                out,
                "DROP TABLE {}{}",
                if *if_exists { "IF EXISTS " } else { "" },
                name
            );
        }
        Statement::CreateProc(p) => {
            let _ = write!(out, "CREATE PROCEDURE {}", p.name);
            if !p.params.is_empty() {
                out.push_str(" (");
                for (i, param) in p.params.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "@{} {}", param.name, param.type_name);
                }
                out.push(')');
            }
            out.push_str(" AS ");
            if p.body.len() == 1 && !matches!(p.body[0], Statement::Begin) {
                write_statement(out, &p.body[0]);
            } else {
                out.push_str("BEGIN ");
                for stmt in &p.body {
                    write_statement(out, stmt);
                    out.push_str("; ");
                }
                out.push_str("END");
            }
        }
        Statement::DropProc { name, if_exists } => {
            let _ = write!(
                out,
                "DROP PROCEDURE {}{}",
                if *if_exists { "IF EXISTS " } else { "" },
                name
            );
        }
        Statement::Exec(e) => {
            let _ = write!(out, "EXEC {}", e.name);
            if !e.args.is_empty() {
                out.push_str(" (");
                for (i, a) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_expr(out, a);
                }
                out.push(')');
            }
        }
        Statement::Begin => out.push_str("BEGIN TRANSACTION"),
        Statement::Commit => out.push_str("COMMIT"),
        Statement::Rollback => out.push_str("ROLLBACK"),
        Statement::Set { name, value } => {
            let _ = write!(out, "SET {name} = ");
            write_expr(out, value);
        }
        Statement::Print(e) => {
            out.push_str("PRINT ");
            write_expr(out, e);
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => {
            let _ = write!(out, "CREATE INDEX {name} ON {table} ({column})");
        }
        Statement::DropIndex { name, if_exists } => {
            out.push_str("DROP INDEX ");
            if *if_exists {
                out.push_str("IF EXISTS ");
            }
            out.push_str(name);
        }
        Statement::Explain(inner) => {
            out.push_str("EXPLAIN ");
            write_statement(out, inner);
        }
    }
}

fn write_select(out: &mut String, s: &SelectStmt) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                let _ = write!(out, "{t}.*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" FROM ");
        for (i, f) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", f.table);
            if let Some(a) = &f.alias {
                let _ = write!(out, " AS {a}");
            }
        }
    }
    if let Some(w) = &s.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w);
    }
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        write_expr(out, h);
    }
    if !s.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, o) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &o.expr);
            if o.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(l) = s.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = s.offset {
        let _ = write!(out, " OFFSET {o}");
    }
}

fn write_expr(out: &mut String, expr: &Expr) {
    match expr {
        Expr::Literal(l) => match l {
            Literal::Null => out.push_str("NULL"),
            Literal::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Literal::Float(v) => {
                // Rust's Display is shortest-roundtrip but may print an
                // integer-looking string; mark floatness explicitly so the
                // literal reparses as a float.
                let text = format!("{v}");
                let _ = write!(out, "{text}");
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            }
            Literal::String(s) => {
                let _ = write!(out, "'{}'", s.replace('\'', "''"));
            }
            Literal::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Date(d) => {
                let _ = write!(out, "DATE '{d}'");
            }
        },
        Expr::Column { table, name } => match table {
            Some(t) => {
                let _ = write!(out, "{t}.{name}");
            }
            None => {
                let _ = write!(out, "{name}");
            }
        },
        Expr::Param(p) => {
            let _ = write!(out, "@{p}");
        }
        Expr::SysVar(n) => {
            let _ = write!(out, "@@{n}");
        }
        Expr::Unary { op, expr } => {
            // Wrap the whole unary in parentheses as well as the operand:
            // `NOT` parses at a higher level than predicate operands, so a
            // bare `NOT (x) = y` would re-associate as `NOT ((x) = y)`.
            match op {
                UnaryOp::Not => out.push_str("(NOT ("),
                UnaryOp::Neg => out.push_str("(-("),
            }
            write_expr(out, expr);
            out.push_str("))");
        }
        Expr::Binary { left, op, right } => {
            // Always parenthesize binary expressions; the parser strips
            // `Nested` wrappers via normalization, so round-tripping is exact
            // up to normalization (see `normalize`).
            out.push('(');
            write_expr(out, left);
            let _ = write!(out, " {} ", op.sql());
            write_expr(out, right);
            out.push(')');
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let _ = write!(out, "{name}(");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match a {
                    Expr::Wildcard => out.push('*'),
                    other => write_expr(out, other),
                }
            }
            out.push(')');
        }
        Expr::Wildcard => out.push('*'),
        Expr::Case {
            branches,
            else_expr,
        } => {
            out.push_str("CASE");
            for (cond, val) in branches {
                out.push_str(" WHEN ");
                write_expr(out, cond);
                out.push_str(" THEN ");
                write_expr(out, val);
            }
            if let Some(e) = else_expr {
                out.push_str(" ELSE ");
                write_expr(out, e);
            }
            out.push_str(" END");
        }
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated {
                " NOT BETWEEN "
            } else {
                " BETWEEN "
            });
            write_expr(out, low);
            out.push_str(" AND ");
            write_expr(out, high);
            out.push(')');
        }
        Expr::InList {
            expr,
            negated,
            list,
        } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, e) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, e);
            }
            out.push_str("))");
        }
        Expr::Like {
            expr,
            negated,
            pattern,
        } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            write_expr(out, pattern);
            out.push(')');
        }
        Expr::IsNull { expr, negated } => {
            out.push('(');
            write_expr(out, expr);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            out.push(')');
        }
        Expr::Nested(inner) => {
            out.push('(');
            write_expr(out, inner);
            out.push(')');
        }
    }
}

/// Strip `Nested` wrappers throughout an expression, producing the canonical
/// form used to compare round-tripped ASTs. The renderer inserts parentheses
/// for correctness; the parser records them as `Nested`; normalization makes
/// the two sides comparable.
pub fn normalize_expr(expr: &Expr) -> Expr {
    match expr {
        Expr::Nested(inner) => normalize_expr(inner),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(normalize_expr(expr)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(normalize_expr(left)),
            op: *op,
            right: Box::new(normalize_expr(right)),
        },
        Expr::Function {
            name,
            args,
            distinct,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(normalize_expr).collect(),
            distinct: *distinct,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (normalize_expr(c), normalize_expr(v)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(normalize_expr(e))),
        },
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => Expr::Between {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
            low: Box::new(normalize_expr(low)),
            high: Box::new(normalize_expr(high)),
        },
        Expr::InList {
            expr,
            negated,
            list,
        } => Expr::InList {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
            list: list.iter().map(normalize_expr).collect(),
        },
        Expr::Like {
            expr,
            negated,
            pattern,
        } => Expr::Like {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
            pattern: Box::new(normalize_expr(pattern)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Normalize every expression inside a statement (see [`normalize_expr`]).
pub fn normalize_statement(stmt: &Statement) -> Statement {
    fn norm_select(s: &SelectStmt) -> SelectStmt {
        SelectStmt {
            distinct: s.distinct,
            projections: s
                .projections
                .iter()
                .map(|p| match p {
                    SelectItem::Expr { expr, alias } => SelectItem::Expr {
                        expr: normalize_expr(expr),
                        alias: alias.clone(),
                    },
                    other => other.clone(),
                })
                .collect(),
            from: s.from.clone(),
            where_clause: s.where_clause.as_ref().map(normalize_expr),
            group_by: s.group_by.iter().map(normalize_expr).collect(),
            having: s.having.as_ref().map(normalize_expr),
            order_by: s
                .order_by
                .iter()
                .map(|o| OrderByItem {
                    expr: normalize_expr(&o.expr),
                    desc: o.desc,
                })
                .collect(),
            limit: s.limit,
            offset: s.offset,
        }
    }

    match stmt {
        Statement::Select(s) => Statement::Select(norm_select(s)),
        Statement::Insert(i) => Statement::Insert(InsertStmt {
            table: i.table.clone(),
            columns: i.columns.clone(),
            source: match &i.source {
                InsertSource::Values(rows) => InsertSource::Values(
                    rows.iter()
                        .map(|r| r.iter().map(normalize_expr).collect())
                        .collect(),
                ),
                InsertSource::Select(s) => InsertSource::Select(Box::new(norm_select(s))),
            },
        }),
        Statement::Update(u) => Statement::Update(UpdateStmt {
            table: u.table.clone(),
            assignments: u
                .assignments
                .iter()
                .map(|(c, e)| (c.clone(), normalize_expr(e)))
                .collect(),
            where_clause: u.where_clause.as_ref().map(normalize_expr),
        }),
        Statement::Delete(d) => Statement::Delete(DeleteStmt {
            table: d.table.clone(),
            where_clause: d.where_clause.as_ref().map(normalize_expr),
        }),
        Statement::CreateProc(p) => Statement::CreateProc(CreateProcStmt {
            name: p.name.clone(),
            params: p.params.clone(),
            body: p.body.iter().map(normalize_statement).collect(),
        }),
        Statement::Exec(e) => Statement::Exec(ExecStmt {
            name: e.name.clone(),
            args: e.args.iter().map(normalize_expr).collect(),
        }),
        Statement::Set { name, value } => Statement::Set {
            name: name.clone(),
            value: normalize_expr(value),
        },
        Statement::Print(e) => Statement::Print(normalize_expr(e)),
        Statement::Explain(inner) => Statement::Explain(Box::new(normalize_statement(inner))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    /// parse → render → parse must be a fixed point (after normalization).
    fn roundtrip(sql: &str) {
        let ast1 = normalize_statement(&parse_statement(sql).unwrap());
        let rendered = render_statement(&ast1);
        let ast2 = normalize_statement(
            &parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of {rendered:?} failed: {e}")),
        );
        assert_eq!(ast1, ast2, "roundtrip mismatch for {sql:?} → {rendered:?}");
    }

    #[test]
    fn select_roundtrips() {
        roundtrip("SELECT 1");
        roundtrip("SELECT * FROM t");
        roundtrip("SELECT a, b AS bee, t.c FROM dbo.t AS t WHERE a = 1 AND b <> 'x''y'");
        roundtrip("SELECT COUNT(*), SUM(x + 1) FROM t GROUP BY g HAVING COUNT(*) > 2 ORDER BY g DESC LIMIT 3 OFFSET 4");
        roundtrip("SELECT CASE WHEN a LIKE 'P%' THEN b ELSE 0 END FROM t");
        roundtrip("SELECT * FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1995-01-01'");
        roundtrip("SELECT * FROM a, b WHERE a.x = b.x AND a.y IN (1, 2, 3)");
        roundtrip("SELECT COUNT(DISTINCT s) FROM ps WHERE k IS NOT NULL");
        roundtrip("SELECT -x, NOT (a = 1) FROM t");
    }

    #[test]
    fn dml_and_ddl_roundtrip() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)");
        roundtrip("INSERT INTO phoenix.rs_1 SELECT * FROM c WHERE name = 'Smith'");
        roundtrip("UPDATE t SET a = a + 1 WHERE b = TRUE");
        roundtrip("DELETE FROM t WHERE a % 2 = 0");
        roundtrip("CREATE TABLE t (id INT NOT NULL, v TEXT, PRIMARY KEY (id))");
        roundtrip("DROP TABLE IF EXISTS phoenix.rs_1");
        roundtrip("CREATE PROCEDURE p (@a INT, @b TEXT) AS SELECT * FROM t WHERE x = @a");
        roundtrip("CREATE PROC p AS BEGIN INSERT INTO t VALUES (1); SELECT * FROM t END");
        roundtrip("DROP PROCEDURE IF EXISTS p");
        roundtrip("CREATE INDEX ix_bal ON acct (bal)");
        roundtrip("DROP INDEX ix_bal");
        roundtrip("DROP INDEX IF EXISTS ix_bal");
        roundtrip("EXPLAIN SELECT a FROM t WHERE b > 3 ORDER BY a");
        roundtrip("EXEC p (1, 'x')");
        roundtrip("EXEC p");
        roundtrip("BEGIN TRANSACTION");
        roundtrip("COMMIT");
        roundtrip("ROLLBACK");
        roundtrip("SET autocommit = TRUE");
        roundtrip("PRINT 'committed batch 7'");
    }

    #[test]
    fn join_renders_as_where_conjunct() {
        // Explicit JOIN folds into WHERE at parse time; the rendered form
        // must therefore round-trip to itself.
        roundtrip("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1");
    }

    #[test]
    fn string_escaping() {
        let sql = "SELECT 'it''s'";
        let ast = parse_statement(sql).unwrap();
        assert_eq!(render_statement(&ast), "SELECT 'it''s'");
    }

    #[test]
    fn temp_names_render_with_sigil() {
        let ast = parse_statement("CREATE TABLE #tmp (v INT)").unwrap();
        assert!(render_statement(&ast).contains("#tmp"));
    }
}
