//! SQL tokenizer.
//!
//! Notable dialect points, all needed by the Phoenix layers above:
//!
//! * `#name` — session temporary object (T-SQL style); lexed as a single
//!   identifier token including the `#`, since Phoenix must recognize and
//!   redirect temp-object references.
//! * `@name` — procedure parameter.
//! * `"quoted id"` / `[bracketed id]` — delimited identifiers.
//! * `'string'` with `''` escaping.
//! * `--` line comments and `/* */` block comments.

use std::fmt;

/// A lexical token with its source position (byte offset), kept for error
/// reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source text.
    pub offset: usize,
}

/// The lexical token classes.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or plain identifier; `text` preserves the original spelling,
    /// `upper` is the normalized form used for keyword matching.
    Word {
        /// Original spelling.
        text: String,
        /// Uppercased spelling for keyword matching.
        upper: String,
    },
    /// Delimited identifier — never treated as a keyword.
    QuotedIdent(String),
    /// `#temp` or `@param` style identifier (sigil retained in `text`).
    SigilIdent(String),
    /// Numeric literal, kept as source text until the parser types it.
    Number(String),
    /// String literal with quote-escaping already resolved.
    StringLit(String),
    /// Punctuation / operators.
    Symbol(Symbol),
    /// End of input (always the final token).
    Eof,
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are their own documentation
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symbol::LParen => "(",
            Symbol::RParen => ")",
            Symbol::Comma => ",",
            Symbol::Dot => ".",
            Symbol::Semicolon => ";",
            Symbol::Plus => "+",
            Symbol::Minus => "-",
            Symbol::Star => "*",
            Symbol::Slash => "/",
            Symbol::Percent => "%",
            Symbol::Eq => "=",
            Symbol::NotEq => "<>",
            Symbol::Lt => "<",
            Symbol::LtEq => "<=",
            Symbol::Gt => ">",
            Symbol::GtEq => ">=",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word { text, .. } => write!(f, "{text}"),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::SigilIdent(s) => write!(f, "{s}"),
            TokenKind::Number(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::Symbol(s) => write!(f, "{s}"),
            TokenKind::Eof => write!(f, "<end of input>"),
        }
    }
}

/// Lexing error: unexpected character or unterminated literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `input` into a vector ending with an `Eof` token.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let c = bytes[i] as char;

        // Whitespace
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Line comment
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }

        // Block comment
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated block comment".into(),
                        offset: start,
                    });
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }

        let offset = i;

        // String literal
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        offset,
                    });
                }
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        s.push('\'');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                // Multi-byte UTF-8 safe: walk char boundaries.
                let ch_len = utf8_len(bytes[i]);
                s.push_str(&input[i..i + ch_len]);
                i += ch_len;
            }
            tokens.push(Token {
                kind: TokenKind::StringLit(s),
                offset,
            });
            continue;
        }

        // Quoted identifier: "name"
        if c == '"' {
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i] != b'"' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(LexError {
                    message: "unterminated quoted identifier".into(),
                    offset,
                });
            }
            tokens.push(Token {
                kind: TokenKind::QuotedIdent(input[start..i].to_string()),
                offset,
            });
            i += 1;
            continue;
        }

        // Bracketed identifier: [name]
        if c == '[' {
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i] != b']' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(LexError {
                    message: "unterminated bracketed identifier".into(),
                    offset,
                });
            }
            tokens.push(Token {
                kind: TokenKind::QuotedIdent(input[start..i].to_string()),
                offset,
            });
            i += 1;
            continue;
        }

        // Sigil identifier: #temp, @param, or @@sysvar
        if c == '#' || c == '@' {
            let start = i;
            i += 1;
            if c == '@' && bytes.get(i) == Some(&b'@') {
                i += 1; // system-variable sigil `@@`
            }
            let sigil_end = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            if i == sigil_end {
                return Err(LexError {
                    message: format!("bare '{}' is not a token", &input[start..sigil_end]),
                    offset,
                });
            }
            tokens.push(Token {
                kind: TokenKind::SigilIdent(input[start..i].to_string()),
                offset,
            });
            continue;
        }

        // Number: digits, optional fraction, optional exponent.
        if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number(input[start..i].to_string()),
                offset,
            });
            continue;
        }

        // Word (keyword or identifier)
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let text = input[start..i].to_string();
            let upper = text.to_ascii_uppercase();
            tokens.push(Token {
                kind: TokenKind::Word { text, upper },
                offset,
            });
            continue;
        }

        // Symbols
        let sym = match c {
            '(' => Some(Symbol::LParen),
            ')' => Some(Symbol::RParen),
            ',' => Some(Symbol::Comma),
            '.' => Some(Symbol::Dot),
            ';' => Some(Symbol::Semicolon),
            '+' => Some(Symbol::Plus),
            '-' => Some(Symbol::Minus),
            '*' => Some(Symbol::Star),
            '/' => Some(Symbol::Slash),
            '%' => Some(Symbol::Percent),
            '=' => Some(Symbol::Eq),
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    Some(Symbol::LtEq)
                } else if bytes.get(i + 1) == Some(&b'>') {
                    i += 1;
                    Some(Symbol::NotEq)
                } else {
                    Some(Symbol::Lt)
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    Some(Symbol::GtEq)
                } else {
                    Some(Symbol::Gt)
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 1;
                    Some(Symbol::NotEq)
                } else {
                    None
                }
            }
            _ => None,
        };
        match sym {
            Some(s) => {
                tokens.push(Token {
                    kind: TokenKind::Symbol(s),
                    offset,
                });
                i += 1;
            }
            None => {
                return Err(LexError {
                    message: format!("unexpected character '{c}'"),
                    offset,
                })
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_and_symbols() {
        let ts = kinds("SELECT a, b FROM t WHERE a >= 10;");
        assert!(matches!(&ts[0], TokenKind::Word { upper, .. } if upper == "SELECT"));
        assert!(matches!(&ts[1], TokenKind::Word { text, .. } if text == "a"));
        assert_eq!(ts[2], TokenKind::Symbol(Symbol::Comma));
        assert!(ts.contains(&TokenKind::Symbol(Symbol::GtEq)));
        assert!(ts.contains(&TokenKind::Symbol(Symbol::Semicolon)));
        assert_eq!(*ts.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_with_escaped_quote() {
        let ts = kinds("'it''s'");
        assert_eq!(ts[0], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn unicode_string() {
        let ts = kinds("'héllo wörld'");
        assert_eq!(ts[0], TokenKind::StringLit("héllo wörld".into()));
    }

    #[test]
    fn temp_and_param_identifiers() {
        let ts = kinds("#phx_alive @customer_id");
        assert_eq!(ts[0], TokenKind::SigilIdent("#phx_alive".into()));
        assert_eq!(ts[1], TokenKind::SigilIdent("@customer_id".into()));
    }

    #[test]
    fn quoted_and_bracketed_identifiers() {
        let ts = kinds("\"Order Details\" [Weird Name]");
        assert_eq!(ts[0], TokenKind::QuotedIdent("Order Details".into()));
        assert_eq!(ts[1], TokenKind::QuotedIdent("Weird Name".into()));
    }

    #[test]
    fn numbers() {
        let ts = kinds("1 2.5 .75 1e6 3.14e-2");
        assert_eq!(ts[0], TokenKind::Number("1".into()));
        assert_eq!(ts[1], TokenKind::Number("2.5".into()));
        assert_eq!(ts[2], TokenKind::Number(".75".into()));
        assert_eq!(ts[3], TokenKind::Number("1e6".into()));
        assert_eq!(ts[4], TokenKind::Number("3.14e-2".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = kinds("SELECT -- line comment\n 1 /* block\ncomment */ + 2");
        assert_eq!(ts.len(), 5); // SELECT 1 + 2 EOF
    }

    #[test]
    fn neq_spellings() {
        assert!(kinds("a <> b").contains(&TokenKind::Symbol(Symbol::NotEq)));
        assert!(kinds("a != b").contains(&TokenKind::Symbol(Symbol::NotEq)));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
        assert!(tokenize("a ^ b").is_err());
        assert!(tokenize("# alone").is_err());
    }

    #[test]
    fn offsets_point_at_token_start() {
        let ts = tokenize("SELECT  x").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 8);
    }
}
