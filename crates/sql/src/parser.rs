//! Recursive-descent parser with precedence climbing for expressions.
//!
//! The grammar is the pragmatic subset described in the crate docs. Errors
//! carry the byte offset of the offending token, which the server surfaces
//! back to the client verbatim.

use std::fmt;

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Symbol, Token, TokenKind};

/// Parse error with source offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the offending token.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse exactly one statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated batch of statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let mut p = Parser::new(sql)?;
    let mut stmts = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            break;
        }
        stmts.push(p.parse_statement()?);
        if !p.at_eof() && !p.check_symbol(Symbol::Semicolon) {
            return Err(p.unexpected("';' between statements"));
        }
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    // -- token helpers ------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> ParseError {
        ParseError {
            message: format!("expected {wanted}, found {}", self.peek()),
            offset: self.offset(),
        }
    }

    /// Is the current token the given keyword?
    fn check_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Word { upper, .. } if upper == kw)
    }

    fn check_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), TokenKind::Word { upper, .. } if upper == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{kw}'")))
        }
    }

    fn check_symbol(&self, s: Symbol) -> bool {
        matches!(self.peek(), TokenKind::Symbol(x) if *x == s)
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.check_symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<(), ParseError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{s}'")))
        }
    }

    /// Parse a plain identifier (word or quoted), rejecting keywords is NOT
    /// attempted — SQL identifiers may shadow non-reserved words.
    fn parse_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Word { text, .. } => {
                self.advance();
                Ok(text)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    /// Parse an object name: `ident`, `ns.ident`, or `#temp`.
    fn parse_object_name(&mut self) -> Result<ObjectName, ParseError> {
        if let TokenKind::SigilIdent(s) = self.peek().clone() {
            if s.starts_with('#') {
                self.advance();
                return Ok(ObjectName::bare(s));
            }
            return Err(self.unexpected("object name"));
        }
        let first = self.parse_ident()?;
        if self.eat_symbol(Symbol::Dot) {
            let second = self.parse_ident()?;
            Ok(ObjectName::qualified(first, second))
        } else {
            Ok(ObjectName::bare(first))
        }
    }

    fn parse_u64(&mut self) -> Result<u64, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                let v = n.parse::<u64>().map_err(|_| ParseError {
                    message: format!("expected integer, found '{n}'"),
                    offset: self.offset(),
                })?;
                self.advance();
                Ok(v)
            }
            _ => Err(self.unexpected("integer")),
        }
    }

    // -- statements ---------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.check_kw("SELECT") {
            return Ok(Statement::Select(self.parse_select()?));
        }
        if self.check_kw("INSERT") {
            return self.parse_insert();
        }
        if self.check_kw("UPDATE") {
            return self.parse_update();
        }
        if self.check_kw("DELETE") {
            return self.parse_delete();
        }
        if self.check_kw("CREATE") {
            return self.parse_create();
        }
        if self.check_kw("DROP") {
            return self.parse_drop();
        }
        if self.check_kw("EXEC") || self.check_kw("EXECUTE") {
            return self.parse_exec();
        }
        if self.eat_kw("BEGIN") {
            // Top level: BEGIN [TRAN | TRANSACTION]
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("SET") {
            let name = self.parse_ident()?;
            let _ = self.eat_symbol(Symbol::Eq);
            let value = self.parse_expr()?;
            return Ok(Statement::Set { name, value });
        }
        if self.eat_kw("PRINT") {
            return Ok(Statement::Print(self.parse_expr()?));
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(Box::new(self.parse_statement()?)));
        }
        Err(self.unexpected("statement"))
    }

    fn parse_select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("SELECT")?;

        let distinct = self.eat_kw("DISTINCT");
        let mut limit = None;
        if self.eat_kw("TOP") {
            limit = Some(self.parse_u64()?);
        }

        let mut projections = Vec::new();
        loop {
            projections.push(self.parse_select_item()?);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        let mut join_preds: Vec<Expr> = Vec::new();
        if self.eat_kw("FROM") {
            from.push(self.parse_from_item()?);
            loop {
                if self.eat_symbol(Symbol::Comma) {
                    from.push(self.parse_from_item()?);
                } else if self.check_kw("JOIN")
                    || (self.check_kw("INNER") && self.check_kw_at(1, "JOIN"))
                {
                    let _ = self.eat_kw("INNER");
                    self.expect_kw("JOIN")?;
                    from.push(self.parse_from_item()?);
                    self.expect_kw("ON")?;
                    join_preds.push(self.parse_expr()?);
                } else {
                    break;
                }
            }
        }

        let mut where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        // Fold JOIN ... ON predicates into the WHERE conjunction; the
        // engine's planner recovers the join structure from conjuncts.
        for pred in join_preds {
            where_clause = Some(match where_clause {
                Some(w) => Expr::and(w, pred),
                None => pred,
            });
        }

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }

        if self.eat_kw("LIMIT") {
            limit = Some(self.parse_u64()?);
        }
        let offset = if self.eat_kw("OFFSET") {
            Some(self.parse_u64()?)
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let TokenKind::Word { text, .. } = self.peek().clone() {
            if matches!(self.peek_at(1), TokenKind::Symbol(Symbol::Dot))
                && matches!(self.peek_at(2), TokenKind::Symbol(Symbol::Star))
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(text));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.parse_ident()?)
        } else {
            match self.peek().clone() {
                // Bare alias (`SELECT a b`): only accept a word that isn't a
                // clause keyword.
                TokenKind::Word { text, upper } if !is_clause_keyword(&upper) => {
                    self.advance();
                    Some(text)
                }
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem, ParseError> {
        let table = self.parse_object_name()?;
        let alias = if self.eat_kw("AS") {
            Some(self.parse_ident()?)
        } else {
            match self.peek().clone() {
                TokenKind::Word { text, upper }
                    if !is_clause_keyword(&upper)
                        && upper != "JOIN"
                        && upper != "INNER"
                        && upper != "ON" =>
                {
                    self.advance();
                    Some(text)
                }
                _ => None,
            }
        };
        Ok(FromItem { table, alias })
    }

    fn parse_insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INSERT")?;
        let _ = self.eat_kw("INTO");
        let table = self.parse_object_name()?;

        // Optional column list: `(a, b, c)` — distinguished from a VALUES
        // tuple by the keyword that follows.
        let mut columns = None;
        if self.check_symbol(Symbol::LParen) {
            // Lookahead: `( ident , ... )` followed by VALUES or SELECT.
            let save = self.pos;
            self.advance();
            let mut cols = Vec::new();
            let ok = loop {
                match self.parse_ident() {
                    Ok(c) => cols.push(c),
                    Err(_) => break false,
                }
                if self.eat_symbol(Symbol::Comma) {
                    continue;
                }
                break self.eat_symbol(Symbol::RParen);
            };
            if ok && (self.check_kw("VALUES") || self.check_kw("SELECT")) {
                columns = Some(cols);
            } else {
                self.pos = save;
            }
        }

        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Symbol::LParen)?;
                let mut row = Vec::new();
                if !self.check_symbol(Symbol::RParen) {
                    loop {
                        row.push(self.parse_expr()?);
                        if !self.eat_symbol(Symbol::Comma) {
                            break;
                        }
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
                rows.push(row);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.check_kw("SELECT") {
            InsertSource::Select(Box::new(self.parse_select()?))
        } else {
            return Err(self.unexpected("VALUES or SELECT"));
        };

        Ok(Statement::Insert(InsertStmt {
            table,
            columns,
            source,
        }))
    }

    fn parse_update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("UPDATE")?;
        let table = self.parse_object_name()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.parse_ident()?;
            self.expect_symbol(Symbol::Eq)?;
            let value = self.parse_expr()?;
            assignments.push((col, value));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStmt {
            table,
            assignments,
            where_clause,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DELETE")?;
        let _ = self.eat_kw("FROM");
        let table = self.parse_object_name()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStmt {
            table,
            where_clause,
        }))
    }

    fn parse_create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            return self.parse_create_table();
        }
        if self.eat_kw("PROCEDURE") || self.eat_kw("PROC") {
            return self.parse_create_proc();
        }
        if self.eat_kw("INDEX") {
            let name = self.parse_ident()?;
            self.expect_kw("ON")?;
            let table = self.parse_object_name()?;
            self.expect_symbol(Symbol::LParen)?;
            let column = self.parse_ident()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
            });
        }
        Err(self.unexpected("TABLE, PROCEDURE or INDEX after CREATE"))
    }

    fn parse_create_table(&mut self) -> Result<Statement, ParseError> {
        let name = self.parse_object_name()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.check_kw("PRIMARY") {
                self.advance();
                self.expect_kw("KEY")?;
                self.expect_symbol(Symbol::LParen)?;
                loop {
                    primary_key.push(self.parse_ident()?);
                    if !self.eat_symbol(Symbol::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
            } else {
                let col_name = self.parse_ident()?;
                let type_name = self.parse_type_name()?;
                let mut not_null = false;
                loop {
                    if self.check_kw("NOT") && self.check_kw_at(1, "NULL") {
                        self.advance();
                        self.advance();
                        not_null = true;
                    } else if self.eat_kw("NULL") {
                        // explicit nullable — the default
                    } else if self.check_kw("PRIMARY") {
                        self.advance();
                        self.expect_kw("KEY")?;
                        primary_key.push(col_name.clone());
                        not_null = true;
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef {
                    name: col_name,
                    type_name,
                    not_null,
                });
            }
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Statement::CreateTable(CreateTableStmt {
            name,
            columns,
            primary_key,
        }))
    }

    /// Parse a type name, swallowing an optional precision like
    /// `DECIMAL(12,2)` or `VARCHAR(25)` (precision is advisory).
    fn parse_type_name(&mut self) -> Result<String, ParseError> {
        let base = self.parse_ident()?;
        if self.eat_symbol(Symbol::LParen) {
            let _ = self.parse_u64()?;
            if self.eat_symbol(Symbol::Comma) {
                let _ = self.parse_u64()?;
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        Ok(base)
    }

    fn parse_create_proc(&mut self) -> Result<Statement, ParseError> {
        let name = self.parse_object_name()?;
        let mut params = Vec::new();
        // Parameters: parenthesized or bare T-SQL style list of `@p TYPE`.
        let parenthesized = self.eat_symbol(Symbol::LParen);
        if parenthesized || matches!(self.peek(), TokenKind::SigilIdent(s) if s.starts_with('@')) {
            loop {
                match self.peek().clone() {
                    TokenKind::SigilIdent(s) if s.starts_with('@') => {
                        self.advance();
                        let type_name = self.parse_type_name()?;
                        params.push(ProcParam {
                            name: s[1..].to_string(),
                            type_name,
                        });
                    }
                    _ => {
                        if parenthesized && self.check_symbol(Symbol::RParen) {
                            break;
                        }
                        return Err(self.unexpected("@parameter"));
                    }
                }
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            if parenthesized {
                self.expect_symbol(Symbol::RParen)?;
            }
        }
        self.expect_kw("AS")?;

        let mut body = Vec::new();
        // `AS BEGIN stmt; stmt; … END` — but `BEGIN TRAN…` is a transaction
        // statement inside a single-statement body.
        let block = self.check_kw("BEGIN")
            && !self.check_kw_at(1, "TRAN")
            && !self.check_kw_at(1, "TRANSACTION")
            && !matches!(
                self.peek_at(1),
                TokenKind::Symbol(Symbol::Semicolon) | TokenKind::Eof
            );
        if block {
            self.expect_kw("BEGIN")?;
            loop {
                while self.eat_symbol(Symbol::Semicolon) {}
                if self.eat_kw("END") {
                    break;
                }
                body.push(self.parse_statement()?);
            }
        } else {
            body.push(self.parse_statement()?);
        }
        Ok(Statement::CreateProc(CreateProcStmt { name, params, body }))
    }

    fn parse_drop(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DROP")?;
        if self.eat_kw("INDEX") {
            let if_exists = if self.check_kw("IF") && self.check_kw_at(1, "EXISTS") {
                self.advance();
                self.advance();
                true
            } else {
                false
            };
            let name = self.parse_ident()?;
            return Ok(Statement::DropIndex { name, if_exists });
        }
        let is_table = if self.eat_kw("TABLE") {
            true
        } else if self.eat_kw("PROCEDURE") || self.eat_kw("PROC") {
            false
        } else {
            return Err(self.unexpected("TABLE, PROCEDURE or INDEX after DROP"));
        };
        let if_exists = if self.check_kw("IF") && self.check_kw_at(1, "EXISTS") {
            self.advance();
            self.advance();
            true
        } else {
            false
        };
        let name = self.parse_object_name()?;
        Ok(if is_table {
            Statement::DropTable { name, if_exists }
        } else {
            Statement::DropProc { name, if_exists }
        })
    }

    fn parse_exec(&mut self) -> Result<Statement, ParseError> {
        let _ = self.eat_kw("EXEC") || self.eat_kw("EXECUTE");
        let name = self.parse_object_name()?;
        let mut args = Vec::new();
        if self.eat_symbol(Symbol::LParen) {
            if !self.check_symbol(Symbol::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_symbol(Symbol::Comma) {
                        break;
                    }
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        } else if !self.at_eof() && !self.check_symbol(Symbol::Semicolon) {
            // Bare T-SQL argument list: EXEC p 1, 'x'
            loop {
                args.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        Ok(Statement::Exec(ExecStmt { name, args }))
    }

    // -- expressions ---------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr, ParseError> {
        let expr = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(expr),
                negated,
            });
        }

        // [NOT] BETWEEN / IN / LIKE
        let negated = if self.check_kw("NOT")
            && (self.check_kw_at(1, "BETWEEN")
                || self.check_kw_at(1, "IN")
                || self.check_kw_at(1, "LIKE"))
        {
            self.advance();
            true
        } else {
            false
        };

        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(expr),
                negated,
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_kw("IN") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(expr),
                negated,
                list,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(expr),
                negated,
                pattern: Box::new(pattern),
            });
        }
        if negated {
            return Err(self.unexpected("BETWEEN, IN or LIKE after NOT"));
        }

        // Comparison
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(BinaryOp::Eq),
            TokenKind::Symbol(Symbol::NotEq) => Some(BinaryOp::NotEq),
            TokenKind::Symbol(Symbol::Lt) => Some(BinaryOp::Lt),
            TokenKind::Symbol(Symbol::LtEq) => Some(BinaryOp::LtEq),
            TokenKind::Symbol(Symbol::Gt) => Some(BinaryOp::Gt),
            TokenKind::Symbol(Symbol::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(expr, op, right));
        }
        Ok(expr)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_term()?;
        loop {
            let op = if self.eat_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.eat_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.parse_term()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_factor()?;
        loop {
            let op = if self.eat_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.eat_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else if self.eat_symbol(Symbol::Percent) {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.parse_factor()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol(Symbol::Minus) {
            // Fold `-<number>` into a negative literal (this is also the
            // only way to spell i64::MIN, whose magnitude overflows i64).
            if let TokenKind::Number(n) = self.peek().clone() {
                self.advance();
                let text = format!("-{n}");
                if !n.contains('.') && !n.contains('e') && !n.contains('E') {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Expr::Literal(Literal::Int(v)));
                    }
                }
                let v = text.parse::<f64>().map_err(|_| ParseError {
                    message: format!("bad number '{text}'"),
                    offset: self.offset(),
                })?;
                return Ok(Expr::Literal(Literal::Float(v)));
            }
            let inner = self.parse_factor()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.parse_factor();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let v = n.parse::<f64>().map_err(|_| ParseError {
                        message: format!("bad number '{n}'"),
                        offset: self.offset(),
                    })?;
                    Ok(Expr::Literal(Literal::Float(v)))
                } else {
                    match n.parse::<i64>() {
                        Ok(v) => Ok(Expr::Literal(Literal::Int(v))),
                        Err(_) => {
                            let v = n.parse::<f64>().map_err(|_| ParseError {
                                message: format!("bad number '{n}'"),
                                offset: self.offset(),
                            })?;
                            Ok(Expr::Literal(Literal::Float(v)))
                        }
                    }
                }
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::SigilIdent(s) if s.starts_with("@@") => {
                self.advance();
                Ok(Expr::SysVar(s[2..].to_uppercase()))
            }
            TokenKind::SigilIdent(s) if s.starts_with('@') => {
                self.advance();
                Ok(Expr::Param(s[1..].to_string()))
            }
            // `#temp.col` — temp-table-qualified column reference.
            TokenKind::SigilIdent(s) if s.starts_with('#') => {
                self.advance();
                self.expect_symbol(Symbol::Dot)?;
                let name = self.parse_ident()?;
                Ok(Expr::Column {
                    table: Some(s),
                    name,
                })
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.advance();
                let inner = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(Expr::Nested(Box::new(inner)))
            }
            TokenKind::Word { text, upper } => {
                match upper.as_str() {
                    "NULL" => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Null))
                    }
                    "TRUE" => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Bool(true)))
                    }
                    "FALSE" => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Bool(false)))
                    }
                    "DATE" if matches!(self.peek_at(1), TokenKind::StringLit(_)) => {
                        self.advance();
                        if let TokenKind::StringLit(s) = self.advance() {
                            Ok(Expr::Literal(Literal::Date(s)))
                        } else {
                            unreachable!("peeked string literal")
                        }
                    }
                    "CASE" => self.parse_case(),
                    _ if is_clause_keyword(&upper) || is_statement_keyword(&upper) => {
                        Err(self.unexpected("expression"))
                    }
                    _ => {
                        // Function call?
                        if matches!(self.peek_at(1), TokenKind::Symbol(Symbol::LParen)) {
                            self.advance(); // name
                            self.advance(); // (
                            let distinct = self.eat_kw("DISTINCT");
                            let mut args = Vec::new();
                            if !self.check_symbol(Symbol::RParen) {
                                loop {
                                    if self.eat_symbol(Symbol::Star) {
                                        args.push(Expr::Wildcard);
                                    } else {
                                        args.push(self.parse_expr()?);
                                    }
                                    if !self.eat_symbol(Symbol::Comma) {
                                        break;
                                    }
                                }
                            }
                            self.expect_symbol(Symbol::RParen)?;
                            return Ok(Expr::Function {
                                name: upper,
                                args,
                                distinct,
                            });
                        }
                        // Column reference, possibly qualified.
                        self.advance();
                        if self.check_symbol(Symbol::Dot)
                            && !matches!(self.peek_at(1), TokenKind::Symbol(Symbol::Star))
                        {
                            self.advance();
                            let name = self.parse_ident()?;
                            Ok(Expr::Column {
                                table: Some(text),
                                name,
                            })
                        } else {
                            Ok(Expr::Column {
                                table: None,
                                name: text,
                            })
                        }
                    }
                }
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                if self.eat_symbol(Symbol::Dot) {
                    let name = self.parse_ident()?;
                    Ok(Expr::Column {
                        table: Some(s),
                        name,
                    })
                } else {
                    Ok(Expr::Column {
                        table: None,
                        name: s,
                    })
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr, ParseError> {
        self.expect_kw("CASE")?;
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_expr = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }
}

/// Keywords that begin a statement and therefore can never be a bare column
/// reference in expression position.
fn is_statement_keyword(upper: &str) -> bool {
    matches!(
        upper,
        "SELECT"
            | "INSERT"
            | "UPDATE"
            | "DELETE"
            | "CREATE"
            | "DROP"
            | "EXEC"
            | "EXECUTE"
            | "BEGIN"
            | "COMMIT"
            | "ROLLBACK"
            | "PRINT"
            | "EXPLAIN"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "JOIN"
            | "INNER"
            | "TOP"
            | "PRIMARY"
    )
}

/// Keywords that terminate a projection/alias position.
fn is_clause_keyword(upper: &str) -> bool {
    matches!(
        upper,
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "OFFSET"
            | "UNION"
            | "AND"
            | "OR"
            | "NOT"
            | "AS"
            | "ON"
            | "SET"
            | "VALUES"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "ASC"
            | "DESC"
            | "BETWEEN"
            | "IN"
            | "LIKE"
            | "IS"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = sel("SELECT 1");
        assert!(s.from.is_empty());
        assert_eq!(s.projections.len(), 1);
    }

    #[test]
    fn sysvar_parses_renders_and_substitutes() {
        let stmt = parse_statement("INSERT INTO t VALUES ('a', @@rowcount)").unwrap();
        let rendered = crate::display::render_statement(&stmt);
        assert!(rendered.contains("@@ROWCOUNT"), "{rendered}");
        assert_eq!(parse_statement(&rendered).unwrap(), stmt);
        let sub =
            crate::rewrite::substitute_sysvar(&stmt, "ROWCOUNT", &crate::ast::Literal::Int(42))
                .expect("statement mentions @@ROWCOUNT");
        assert!(crate::display::render_statement(&sub).contains("42"));
        // No mention → no clone.
        let plain = parse_statement("INSERT INTO t VALUES (1)").unwrap();
        assert!(crate::rewrite::substitute_sysvar(
            &plain,
            "ROWCOUNT",
            &crate::ast::Literal::Int(1)
        )
        .is_none());
        // A bare `@@` still fails to lex.
        assert!(parse_statement("SELECT @@").is_err());
    }

    #[test]
    fn select_star_from() {
        let s = sel("SELECT * FROM customer");
        assert_eq!(s.projections, vec![SelectItem::Wildcard]);
        assert_eq!(s.from[0].table, ObjectName::bare("customer"));
    }

    #[test]
    fn qualified_names_and_aliases() {
        let s = sel("SELECT c.name AS n, o.total FROM dbo.customer c, dbo.orders AS o WHERE c.id = o.cust_id");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].alias.as_deref(), Some("c"));
        assert_eq!(s.from[1].alias.as_deref(), Some("o"));
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn explicit_join_folds_into_where() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1");
        assert_eq!(s.from.len(), 2);
        // WHERE y>1 AND a.x=b.x
        match s.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn inner_join_keyword() {
        let s = sel("SELECT * FROM a INNER JOIN b ON a.x = b.x");
        assert_eq!(s.from.len(), 2);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn group_by_having_order_limit_offset() {
        let s = sel("SELECT status, COUNT(*), SUM(total) FROM orders \
             GROUP BY status HAVING COUNT(*) > 5 ORDER BY status DESC LIMIT 10 OFFSET 20");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(s.order_by[0].desc);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(20));
    }

    #[test]
    fn top_n() {
        let s = sel("SELECT TOP 5 * FROM t");
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn expressions_precedence() {
        let s = sel("SELECT 1 + 2 * 3");
        match &s.projections[0] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Binary {
                    op: BinaryOp::Add,
                    right,
                    ..
                } => {
                    assert!(matches!(
                        **right,
                        Expr::Binary {
                            op: BinaryOp::Mul,
                            ..
                        }
                    ));
                }
                other => panic!("bad tree {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicates() {
        sel("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (1,2,3) AND c LIKE 'Sm%' AND d IS NOT NULL");
        sel("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
    }

    #[test]
    fn count_star_and_distinct() {
        let s = sel("SELECT COUNT(*), COUNT(DISTINCT supplier) FROM partsupp");
        match &s.projections[0] {
            SelectItem::Expr {
                expr:
                    Expr::Function {
                        name,
                        args,
                        distinct,
                    },
                ..
            } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args[0], Expr::Wildcard);
                assert!(!distinct);
            }
            other => panic!("{other:?}"),
        }
        match &s.projections[1] {
            SelectItem::Expr {
                expr: Expr::Function { distinct, .. },
                ..
            } => assert!(distinct),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn case_expression() {
        sel("SELECT CASE WHEN type LIKE 'PROMO%' THEN price ELSE 0 END FROM lineitem");
    }

    #[test]
    fn date_literal() {
        let s = sel("SELECT * FROM o WHERE odate >= DATE '1994-01-01'");
        let w = s.where_clause.unwrap();
        match w {
            Expr::Binary { right, .. } => {
                assert_eq!(*right, Expr::Literal(Literal::Date("1994-01-01".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_values() {
        let st = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match st {
            Statement::Insert(i) => {
                assert_eq!(
                    i.columns.as_deref(),
                    Some(&["a".to_string(), "b".to_string()][..])
                );
                match i.source {
                    InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_select() {
        let st =
            parse_statement("INSERT INTO phoenix.rs_1 SELECT * FROM customer WHERE name = 'Smith'")
                .unwrap();
        match st {
            Statement::Insert(i) => {
                assert_eq!(i.table, ObjectName::qualified("phoenix", "rs_1"));
                assert!(matches!(i.source, InsertSource::Select(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        parse_statement("UPDATE invoices SET total = total + 10, touched = TRUE WHERE cust = 5")
            .unwrap();
        parse_statement("DELETE FROM orders WHERE okey BETWEEN 100 AND 200").unwrap();
        parse_statement("DELETE orders WHERE okey = 1").unwrap();
    }

    #[test]
    fn create_table_with_pk() {
        let st = parse_statement(
            "CREATE TABLE dbo.customer (id INT NOT NULL, name VARCHAR(25), balance DECIMAL(12,2), PRIMARY KEY (id))",
        )
        .unwrap();
        match st {
            Statement::CreateTable(c) => {
                assert_eq!(c.columns.len(), 3);
                assert!(c.columns[0].not_null);
                assert_eq!(c.primary_key, vec!["id"]);
                assert_eq!(c.columns[1].type_name, "VARCHAR");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn inline_primary_key() {
        let st = parse_statement("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        match st {
            Statement::CreateTable(c) => {
                assert_eq!(c.primary_key, vec!["id"]);
                assert!(c.columns[0].not_null);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn temp_table() {
        let st = parse_statement("CREATE TABLE #work (v INT)").unwrap();
        match st {
            Statement::CreateTable(c) => assert!(c.name.is_temp()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn drop_variants() {
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS phoenix.rs_1").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("DROP PROCEDURE p").unwrap(),
            Statement::DropProc {
                if_exists: false,
                ..
            }
        ));
    }

    #[test]
    fn create_proc_single_statement() {
        let st = parse_statement(
            "CREATE PROCEDURE phoenix.p1 (@t TEXT) AS INSERT INTO dest SELECT * FROM src WHERE name = @t",
        )
        .unwrap();
        match st {
            Statement::CreateProc(p) => {
                assert_eq!(p.params.len(), 1);
                assert_eq!(p.params[0].name, "t");
                assert_eq!(p.body.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_proc_block_body() {
        let st =
            parse_statement("CREATE PROC p AS BEGIN INSERT INTO t VALUES (1); SELECT * FROM t END")
                .unwrap();
        match st {
            Statement::CreateProc(p) => assert_eq!(p.body.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn proc_body_with_transaction() {
        let st = parse_statement(
            "CREATE PROC p AS BEGIN BEGIN TRAN; INSERT INTO t VALUES (1); COMMIT END",
        )
        .unwrap();
        match st {
            Statement::CreateProc(p) => {
                assert_eq!(p.body.len(), 3);
                assert_eq!(p.body[0], Statement::Begin);
                assert_eq!(p.body[2], Statement::Commit);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exec_variants() {
        match parse_statement("EXEC phoenix.advance(5, 'rs_1')").unwrap() {
            Statement::Exec(e) => assert_eq!(e.args.len(), 2),
            other => panic!("{other:?}"),
        }
        match parse_statement("EXECUTE p 1, 2").unwrap() {
            Statement::Exec(e) => assert_eq!(e.args.len(), 2),
            other => panic!("{other:?}"),
        }
        match parse_statement("EXEC p").unwrap() {
            Statement::Exec(e) => assert!(e.args.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn txn_statements() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin
        );
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(
            parse_statement("ROLLBACK TRAN").unwrap(),
            Statement::Rollback
        );
    }

    #[test]
    fn set_and_print() {
        match parse_statement("SET lock_timeout 5000").unwrap() {
            Statement::Set { name, .. } => assert_eq!(name, "lock_timeout"),
            other => panic!("{other:?}"),
        }
        match parse_statement("SET autocommit = TRUE").unwrap() {
            Statement::Set { name, .. } => assert_eq!(name, "autocommit"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("PRINT 'hello'").unwrap(),
            Statement::Print(_)
        ));
    }

    #[test]
    fn index_ddl_and_explain() {
        match parse_statement("CREATE INDEX ix_bal ON acct (bal)").unwrap() {
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                assert_eq!(name, "ix_bal");
                assert_eq!(table.canonical(), "dbo.acct");
                assert_eq!(column, "bal");
            }
            other => panic!("{other:?}"),
        }
        match parse_statement("DROP INDEX IF EXISTS ix_bal").unwrap() {
            Statement::DropIndex { name, if_exists } => {
                assert_eq!(name, "ix_bal");
                assert!(if_exists);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DROP INDEX ix_bal").unwrap(),
            Statement::DropIndex {
                if_exists: false,
                ..
            }
        ));
        match parse_statement("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap() {
            Statement::Explain(inner) => assert!(matches!(*inner, Statement::Select(_))),
            other => panic!("{other:?}"),
        }
        // EXPLAIN covers DML too.
        assert!(matches!(
            parse_statement("EXPLAIN UPDATE t SET a = 1").unwrap(),
            Statement::Explain(_)
        ));
        assert!(parse_statement("CREATE INDEX ON t (a)").is_err());
    }

    #[test]
    fn batch_parsing() {
        let stmts = parse_statements("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
        let empty = parse_statements("  ;; ").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn params_in_where() {
        let s = sel("SELECT * FROM orders WHERE cust_id = @cid");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => assert_eq!(*right, Expr::Param("cid".into())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("SELECT o.* FROM orders o");
        assert_eq!(s.projections[0], SelectItem::QualifiedWildcard("o".into()));
    }

    #[test]
    fn negative_numbers_and_unary() {
        sel("SELECT -5, -x, +3.5 FROM t WHERE a = -1");
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_statement("SELECT FROM").unwrap_err();
        assert!(e.message.contains("expected"));
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT 1 2 3 FROM").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("CREATE VIEW v AS SELECT 1").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT 1; SELECT 2").is_err());
    }
}
