//! The rewrite toolkit Phoenix applies to intercepted requests.
//!
//! Each rewrite is a pure AST → AST function; Phoenix renders the result back
//! to SQL with [`crate::display::render_statement`] and forwards it to the
//! native driver. The rewrites implemented here are exactly those §3 of the
//! paper describes:
//!
//! * [`metadata_probe`] — append `WHERE 0=1` so the server compiles the query
//!   and returns only result-set metadata (one round trip, no data).
//! * [`capture_into`] — wrap a SELECT as `INSERT INTO <phoenix table> SELECT …`
//!   so the result set is materialized *server-side*, without the rows ever
//!   crossing the network.
//! * [`capture_proc`] — the stored-procedure flavor the paper uses
//!   (`CREATE PROCEDURE P AS INSERT INTO T <select>`), kept as a separate
//!   strategy so the two can be ablated against each other.
//! * [`with_projections`] — replace the projection list (Phoenix materializes
//!   *only the keys* for keyset/dynamic cursors).
//! * [`rename_table_refs`] — redirect references from a temporary object to
//!   the persistent object Phoenix created in its place.
//! * [`and_where`] — conjoin a predicate (used for key-range fetches of
//!   dynamic cursors and for server-side repositioning).

use crate::ast::*;

/// Conjoin `pred` onto the SELECT's WHERE clause.
pub fn and_where(mut select: SelectStmt, pred: Expr) -> SelectStmt {
    select.where_clause = Some(match select.where_clause.take() {
        Some(w) => Expr::and(Expr::Nested(Box::new(w)), pred),
        None => pred,
    });
    select
}

/// The paper's `WHERE 0=1` trick: the returned statement compiles on the
/// server and yields the result-set metadata with zero data rows.
pub fn metadata_probe(select: &SelectStmt) -> SelectStmt {
    let mut probe = and_where(select.clone(), Expr::eq(Expr::lit_int(0), Expr::lit_int(1)));
    // The probe never returns rows, so ordering/limit work is pointless;
    // stripping them also sidesteps ORDER BY on columns the projection drops.
    probe.order_by.clear();
    probe.limit = None;
    probe.offset = None;
    probe
}

/// `INSERT INTO <table> <select>` — materialize the result set server-side.
pub fn capture_into(table: ObjectName, select: SelectStmt) -> InsertStmt {
    InsertStmt {
        table,
        columns: None,
        source: InsertSource::Select(Box::new(select)),
    }
}

/// The stored-procedure capture strategy from the paper:
/// `CREATE PROCEDURE <proc> AS INSERT INTO <table> <select>`.
///
/// Executing the procedure moves all data locally at the server in a single
/// client round trip, and the action is an atomic statement.
pub fn capture_proc(proc: ObjectName, table: ObjectName, select: SelectStmt) -> CreateProcStmt {
    CreateProcStmt {
        name: proc,
        params: Vec::new(),
        body: vec![Statement::Insert(capture_into(table, select))],
    }
}

/// Replace the projection list with bare column references to `columns`
/// (used to materialize only the key columns of a cursor's result).
pub fn with_projections(mut select: SelectStmt, columns: &[String]) -> SelectStmt {
    select.projections = columns
        .iter()
        .map(|c| SelectItem::Expr {
            expr: Expr::col(c.clone()),
            alias: None,
        })
        .collect();
    select
}

/// Strip the leading sigil from a temp-object name (`#work` → `work`).
fn strip_sigil(name: &str) -> String {
    name.trim_start_matches(['#', '@']).to_string()
}

/// Does the column qualifier `q` refer to the table named `obj` (directly,
/// not via an alias)?
fn qualifier_matches(q: &str, obj: &ObjectName) -> bool {
    q.eq_ignore_ascii_case(&obj.name) || q.eq_ignore_ascii_case(&strip_sigil(&obj.name))
}

/// Rewrite every reference to table `old` into `new`, throughout the
/// statement (FROM clauses, DML targets, DDL names, EXEC targets, nested
/// SELECTs and procedure bodies).
///
/// FROM entries that referenced `old` *without an alias* are given the old
/// bare name (sigil stripped) as an alias so that qualified column
/// references keep resolving; column qualifiers naming `old` directly are
/// rewritten to that alias.
pub fn rename_table_refs(stmt: &Statement, old: &ObjectName, new: &ObjectName) -> Statement {
    let r = Renamer { old, new };
    r.statement(stmt)
}

struct Renamer<'a> {
    old: &'a ObjectName,
    new: &'a ObjectName,
}

impl Renamer<'_> {
    fn name(&self, n: &ObjectName) -> ObjectName {
        if n.same_as(self.old) {
            self.new.clone()
        } else {
            n.clone()
        }
    }

    fn statement(&self, stmt: &Statement) -> Statement {
        match stmt {
            Statement::Select(s) => Statement::Select(self.select(s)),
            Statement::Insert(i) => Statement::Insert(InsertStmt {
                table: self.name(&i.table),
                columns: i.columns.clone(),
                source: match &i.source {
                    InsertSource::Values(rows) => InsertSource::Values(
                        rows.iter()
                            .map(|r| r.iter().map(|e| self.expr(e)).collect())
                            .collect(),
                    ),
                    InsertSource::Select(s) => InsertSource::Select(Box::new(self.select(s))),
                },
            }),
            Statement::Update(u) => Statement::Update(UpdateStmt {
                table: self.name(&u.table),
                assignments: u
                    .assignments
                    .iter()
                    .map(|(c, e)| (c.clone(), self.expr(e)))
                    .collect(),
                where_clause: u.where_clause.as_ref().map(|e| self.expr(e)),
            }),
            Statement::Delete(d) => Statement::Delete(DeleteStmt {
                table: self.name(&d.table),
                where_clause: d.where_clause.as_ref().map(|e| self.expr(e)),
            }),
            Statement::CreateTable(c) => Statement::CreateTable(CreateTableStmt {
                name: self.name(&c.name),
                columns: c.columns.clone(),
                primary_key: c.primary_key.clone(),
            }),
            Statement::DropTable { name, if_exists } => Statement::DropTable {
                name: self.name(name),
                if_exists: *if_exists,
            },
            Statement::CreateProc(p) => Statement::CreateProc(CreateProcStmt {
                name: self.name(&p.name),
                params: p.params.clone(),
                body: p.body.iter().map(|s| self.statement(s)).collect(),
            }),
            Statement::DropProc { name, if_exists } => Statement::DropProc {
                name: self.name(name),
                if_exists: *if_exists,
            },
            Statement::Exec(e) => Statement::Exec(ExecStmt {
                name: self.name(&e.name),
                args: e.args.iter().map(|a| self.expr(a)).collect(),
            }),
            Statement::Set { name, value } => Statement::Set {
                name: name.clone(),
                value: self.expr(value),
            },
            Statement::Print(e) => Statement::Print(self.expr(e)),
            other => other.clone(),
        }
    }

    fn select(&self, s: &SelectStmt) -> SelectStmt {
        let from = s
            .from
            .iter()
            .map(|f| {
                if f.table.same_as(self.old) {
                    FromItem {
                        table: self.new.clone(),
                        // Preserve name resolution for columns qualified by
                        // the old table name.
                        alias: f
                            .alias
                            .clone()
                            .or_else(|| Some(strip_sigil(&self.old.name))),
                    }
                } else {
                    f.clone()
                }
            })
            .collect();
        SelectStmt {
            distinct: s.distinct,
            projections: s
                .projections
                .iter()
                .map(|p| match p {
                    SelectItem::Expr { expr, alias } => SelectItem::Expr {
                        expr: self.expr(expr),
                        alias: alias.clone(),
                    },
                    SelectItem::QualifiedWildcard(q) if qualifier_matches(q, self.old) => {
                        SelectItem::QualifiedWildcard(strip_sigil(&self.old.name))
                    }
                    other => other.clone(),
                })
                .collect(),
            from,
            where_clause: s.where_clause.as_ref().map(|e| self.expr(e)),
            group_by: s.group_by.iter().map(|e| self.expr(e)).collect(),
            having: s.having.as_ref().map(|e| self.expr(e)),
            order_by: s
                .order_by
                .iter()
                .map(|o| OrderByItem {
                    expr: self.expr(&o.expr),
                    desc: o.desc,
                })
                .collect(),
            limit: s.limit,
            offset: s.offset,
        }
    }

    fn expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Column {
                table: Some(q),
                name,
            } if qualifier_matches(q, self.old) => Expr::Column {
                table: Some(strip_sigil(&self.old.name)),
                name: name.clone(),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr)),
            },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(self.expr(left)),
                op: *op,
                right: Box::new(self.expr(right)),
            },
            Expr::Function {
                name,
                args,
                distinct,
            } => Expr::Function {
                name: name.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                distinct: *distinct,
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (self.expr(c), self.expr(v)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|x| Box::new(self.expr(x))),
            },
            Expr::Between {
                expr,
                negated,
                low,
                high,
            } => Expr::Between {
                expr: Box::new(self.expr(expr)),
                negated: *negated,
                low: Box::new(self.expr(low)),
                high: Box::new(self.expr(high)),
            },
            Expr::InList {
                expr,
                negated,
                list,
            } => Expr::InList {
                expr: Box::new(self.expr(expr)),
                negated: *negated,
                list: list.iter().map(|x| self.expr(x)).collect(),
            },
            Expr::Like {
                expr,
                negated,
                pattern,
            } => Expr::Like {
                expr: Box::new(self.expr(expr)),
                negated: *negated,
                pattern: Box::new(self.expr(pattern)),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.expr(expr)),
                negated: *negated,
            },
            Expr::Nested(inner) => Expr::Nested(Box::new(self.expr(inner))),
            other => other.clone(),
        }
    }
}

/// Substitute a system variable (`@@NAME`) with a literal value inside a
/// DML-shaped statement. Returns `None` when the statement does not mention
/// the variable, so callers on the hot path can skip the clone entirely.
///
/// Coverage is deliberately the statement shapes a T-SQL batch uses system
/// variables in: `INSERT … VALUES`, `UPDATE` assignments and predicates,
/// `DELETE` predicates, `EXEC` arguments, `SET`, and `PRINT`. A system
/// variable anywhere else (e.g. a SELECT projection) is left in place and
/// surfaces as an engine evaluation error.
pub fn substitute_sysvar(stmt: &Statement, name: &str, value: &Literal) -> Option<Statement> {
    let mut hit = false;
    let out = {
        let mut sub = |e: &Expr| subst_expr(e, name, value, &mut hit);
        match stmt {
            Statement::Insert(i) => Statement::Insert(InsertStmt {
                table: i.table.clone(),
                columns: i.columns.clone(),
                source: match &i.source {
                    InsertSource::Values(rows) => InsertSource::Values(
                        rows.iter()
                            .map(|r| r.iter().map(&mut sub).collect())
                            .collect(),
                    ),
                    InsertSource::Select(s) => InsertSource::Select(s.clone()),
                },
            }),
            Statement::Update(u) => Statement::Update(UpdateStmt {
                table: u.table.clone(),
                assignments: u
                    .assignments
                    .iter()
                    .map(|(c, e)| (c.clone(), sub(e)))
                    .collect(),
                where_clause: u.where_clause.as_ref().map(&mut sub),
            }),
            Statement::Delete(d) => Statement::Delete(DeleteStmt {
                table: d.table.clone(),
                where_clause: d.where_clause.as_ref().map(&mut sub),
            }),
            Statement::Exec(e) => Statement::Exec(ExecStmt {
                name: e.name.clone(),
                args: e.args.iter().map(&mut sub).collect(),
            }),
            Statement::Set { name: n, value: v } => Statement::Set {
                name: n.clone(),
                value: sub(v),
            },
            Statement::Print(e) => Statement::Print(sub(e)),
            _ => return None,
        }
    };
    hit.then_some(out)
}

fn subst_expr(e: &Expr, name: &str, value: &Literal, hit: &mut bool) -> Expr {
    let sub = |x: &Expr, hit: &mut bool| Box::new(subst_expr(x, name, value, hit));
    match e {
        Expr::SysVar(n) if n == name => {
            *hit = true;
            Expr::Literal(value.clone())
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: sub(expr, hit),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: sub(left, hit),
            op: *op,
            right: sub(right, hit),
        },
        Expr::Function {
            name: f,
            args,
            distinct,
        } => Expr::Function {
            name: f.clone(),
            args: args
                .iter()
                .map(|a| subst_expr(a, name, value, hit))
                .collect(),
            distinct: *distinct,
        },
        Expr::Case {
            branches,
            else_expr,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| {
                    (
                        subst_expr(c, name, value, hit),
                        subst_expr(v, name, value, hit),
                    )
                })
                .collect(),
            else_expr: else_expr.as_ref().map(|x| sub(x, hit)),
        },
        Expr::Between {
            expr,
            negated,
            low,
            high,
        } => Expr::Between {
            expr: sub(expr, hit),
            negated: *negated,
            low: sub(low, hit),
            high: sub(high, hit),
        },
        Expr::InList {
            expr,
            negated,
            list,
        } => Expr::InList {
            expr: sub(expr, hit),
            negated: *negated,
            list: list
                .iter()
                .map(|x| subst_expr(x, name, value, hit))
                .collect(),
        },
        Expr::Like {
            expr,
            negated,
            pattern,
        } => Expr::Like {
            expr: sub(expr, hit),
            negated: *negated,
            pattern: sub(pattern, hit),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: sub(expr, hit),
            negated: *negated,
        },
        Expr::Nested(inner) => Expr::Nested(sub(inner, hit)),
        other => other.clone(),
    }
}

/// Collect every table reference in a statement (FROM clauses, DML targets,
/// nested selects, proc bodies). Used by Phoenix to find temp-object
/// references that need redirecting.
pub fn table_refs(stmt: &Statement) -> Vec<ObjectName> {
    let mut out = Vec::new();
    collect_stmt(stmt, &mut out);
    out
}

fn collect_stmt(stmt: &Statement, out: &mut Vec<ObjectName>) {
    match stmt {
        Statement::Select(s) => collect_select(s, out),
        Statement::Insert(i) => {
            out.push(i.table.clone());
            if let InsertSource::Select(s) = &i.source {
                collect_select(s, out);
            }
        }
        Statement::Update(u) => out.push(u.table.clone()),
        Statement::Delete(d) => out.push(d.table.clone()),
        Statement::CreateTable(c) => out.push(c.name.clone()),
        Statement::DropTable { name, .. } => out.push(name.clone()),
        Statement::CreateProc(p) => {
            for s in &p.body {
                collect_stmt(s, out);
            }
        }
        _ => {}
    }
}

fn collect_select(s: &SelectStmt, out: &mut Vec<ObjectName>) {
    for f in &s.from {
        out.push(f.table.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::render_statement;
    use crate::parser::parse_statement;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn metadata_probe_appends_false_predicate() {
        let s = sel("SELECT name, total FROM customer WHERE name = 'Smith' ORDER BY total LIMIT 5");
        let probe = metadata_probe(&s);
        let sql = render_statement(&Statement::Select(probe));
        assert!(sql.contains("0 = 1"), "{sql}");
        assert!(!sql.contains("ORDER BY"), "{sql}");
        assert!(!sql.contains("LIMIT"), "{sql}");
        // The original predicate is preserved (the server must still compile
        // the same column references).
        assert!(sql.contains("'Smith'"), "{sql}");
        // Probe must re-parse.
        parse_statement(&sql).unwrap();
    }

    #[test]
    fn metadata_probe_on_bare_select() {
        let probe = metadata_probe(&sel("SELECT a FROM t"));
        let sql = render_statement(&Statement::Select(probe));
        assert!(sql.contains("WHERE"), "{sql}");
        parse_statement(&sql).unwrap();
    }

    #[test]
    fn capture_into_wraps_select() {
        let s = sel("SELECT * FROM customer WHERE name = 'Smith'");
        let ins = capture_into(ObjectName::qualified("phoenix", "rs_1"), s);
        let sql = render_statement(&Statement::Insert(ins));
        assert!(sql.starts_with("INSERT INTO phoenix.rs_1 SELECT"), "{sql}");
        parse_statement(&sql).unwrap();
    }

    #[test]
    fn capture_proc_matches_paper_shape() {
        let s = sel("SELECT * FROM customer");
        let p = capture_proc(
            ObjectName::qualified("phoenix", "cap_1"),
            ObjectName::qualified("phoenix", "rs_1"),
            s,
        );
        let sql = render_statement(&Statement::CreateProc(p));
        assert!(
            sql.contains("CREATE PROCEDURE phoenix.cap_1 AS INSERT INTO phoenix.rs_1 SELECT"),
            "{sql}"
        );
        parse_statement(&sql).unwrap();
    }

    #[test]
    fn with_projections_replaces_items() {
        let s = sel("SELECT a, b, c FROM t");
        let keys = with_projections(s, &["id".to_string(), "sub_id".to_string()]);
        assert_eq!(keys.projections.len(), 2);
    }

    #[test]
    fn rename_simple_from() {
        let old = ObjectName::bare("#work");
        let new = ObjectName::qualified("phoenix", "tmp_7_work");
        let stmt = parse_statement("SELECT * FROM #work WHERE v > 3").unwrap();
        let renamed = rename_table_refs(&stmt, &old, &new);
        let sql = render_statement(&renamed);
        assert!(sql.contains("FROM phoenix.tmp_7_work AS work"), "{sql}");
        parse_statement(&sql).unwrap();
    }

    #[test]
    fn rename_rewrites_column_qualifiers() {
        let old = ObjectName::bare("#work");
        let new = ObjectName::qualified("phoenix", "t7");
        let stmt = parse_statement("SELECT #work.v FROM #work").unwrap();
        let renamed = rename_table_refs(&stmt, &old, &new);
        let sql = render_statement(&renamed);
        assert!(sql.contains("work.v"), "{sql}");
        assert!(!sql.contains("#work"), "{sql}");
        parse_statement(&sql).unwrap();
    }

    #[test]
    fn rename_touches_dml_targets_and_nested_selects() {
        let old = ObjectName::bare("#stage");
        let new = ObjectName::qualified("phoenix", "stage_1");
        for sql in [
            "INSERT INTO #stage VALUES (1)",
            "INSERT INTO other SELECT * FROM #stage",
            "UPDATE #stage SET v = 1",
            "DELETE FROM #stage WHERE v = 2",
            "DROP TABLE #stage",
        ] {
            let renamed = rename_table_refs(&parse_statement(sql).unwrap(), &old, &new);
            let out = render_statement(&renamed);
            assert!(out.contains("phoenix.stage_1"), "{sql} -> {out}");
            assert!(!out.contains("#stage"), "{sql} -> {out}");
        }
    }

    #[test]
    fn rename_leaves_other_tables_alone() {
        let old = ObjectName::bare("#t");
        let new = ObjectName::qualified("phoenix", "x");
        let stmt =
            parse_statement("SELECT * FROM customer c, orders o WHERE c.id = o.cid").unwrap();
        let renamed = rename_table_refs(&stmt, &old, &new);
        assert_eq!(render_statement(&renamed), render_statement(&stmt));
    }

    #[test]
    fn rename_respects_existing_alias() {
        let old = ObjectName::bare("#w");
        let new = ObjectName::qualified("phoenix", "w1");
        let stmt = parse_statement("SELECT x.v FROM #w AS x").unwrap();
        let sql = render_statement(&rename_table_refs(&stmt, &old, &new));
        assert!(sql.contains("FROM phoenix.w1 AS x"), "{sql}");
        assert!(sql.contains("x.v"), "{sql}");
    }

    #[test]
    fn table_refs_finds_everything() {
        let stmt = parse_statement("INSERT INTO a SELECT * FROM b, #c").unwrap();
        let refs = table_refs(&stmt);
        let names: Vec<String> = refs.iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, vec!["a", "b", "#c"]);
    }

    #[test]
    fn and_where_preserves_original_as_nested() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2");
        let s2 = and_where(s, Expr::eq(Expr::col("c"), Expr::lit_int(3)));
        let sql = render_statement(&Statement::Select(s2));
        // The OR must stay grouped under the new AND.
        assert!(sql.contains("((a = 1) OR (b = 2))"), "{sql}");
    }
}
