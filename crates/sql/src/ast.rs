//! The abstract syntax tree.
//!
//! The tree is designed to round-trip: `parse(render(ast)) == ast` for every
//! constructible statement, which is what lets Phoenix rewrite requests by
//! AST surgery and re-rendering (see [`crate::display`] and
//! [`crate::rewrite`]).

use std::fmt;

/// A possibly namespace-qualified object name (`dbo.orders`, `phoenix.rs_1`,
/// `#session_temp`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName {
    /// Optional namespace (`dbo`, `phoenix`). Temp objects (`#x`) never have
    /// one.
    pub namespace: Option<String>,
    /// The object's own name (includes the `#` sigil for temp objects).
    pub name: String,
}

impl ObjectName {
    /// An unqualified name (resolved in the default `dbo` namespace).
    pub fn bare(name: impl Into<String>) -> ObjectName {
        ObjectName {
            namespace: None,
            name: name.into(),
        }
    }

    /// A namespace-qualified name.
    pub fn qualified(ns: impl Into<String>, name: impl Into<String>) -> ObjectName {
        ObjectName {
            namespace: Some(ns.into()),
            name: name.into(),
        }
    }

    /// Session temporary object (`#name`)?
    pub fn is_temp(&self) -> bool {
        self.name.starts_with('#')
    }

    /// Fully qualified lowercase form used as a catalog key; bare names
    /// default to the `dbo` namespace, temp names stay bare.
    pub fn canonical(&self) -> String {
        match (&self.namespace, self.is_temp()) {
            (_, true) => self.name.to_ascii_lowercase(),
            (Some(ns), false) => format!(
                "{}.{}",
                ns.to_ascii_lowercase(),
                self.name.to_ascii_lowercase()
            ),
            (None, false) => format!("dbo.{}", self.name.to_ascii_lowercase()),
        }
    }

    /// Case-insensitive equality on the canonical form.
    pub fn same_as(&self, other: &ObjectName) -> bool {
        self.canonical() == other.canonical()
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.namespace {
            Some(ns) => write!(f, "{ns}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// SQL literal values as they appear in source text. Conversion to engine
/// values (including date parsing) happens in the engine, keeping this crate
/// dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `NULL`.
    Null,
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// `'single-quoted'` string (quote-escaping already resolved).
    String(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `DATE '2026-07-05'` — kept as text; the engine parses it.
    Date(String),
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+` (also string concatenation and date offset).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (always yields a float — see the engine's dialect notes).
    Div,
    /// `%`.
    Mod,
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `AND` (Kleene three-valued).
    And,
    /// `OR` (Kleene three-valued).
    Or,
}

impl BinaryOp {
    /// The SQL spelling of this operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }

    /// Is this a comparison yielding a boolean?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Literal),
    /// Column reference, optionally qualified by table or alias.
    Column {
        /// Qualifier (table name or alias), if written.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Procedure parameter `@name`.
    Param(String),
    /// System variable `@@NAME` (T-SQL style; name stored uppercased).
    /// `@@ROWCOUNT` — the rows affected by the session's previous statement
    /// — is substituted by the engine before execution, which is what lets a
    /// wrapped request record its own outcome server-side inside one batch.
    SysVar(String),
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call — aggregates (`SUM`, `COUNT`, `AVG`, `MIN`, `MAX`) and
    /// scalar functions alike; the engine distinguishes them by name.
    Function {
        /// Function name, uppercased by the parser.
        name: String,
        /// Argument expressions ([`Expr::Wildcard`] for `COUNT(*)`).
        args: Vec<Expr>,
        /// `DISTINCT` modifier (aggregates only).
        distinct: bool,
    },
    /// `COUNT(*)` argument.
    Wildcard,
    /// `CASE WHEN c THEN e [WHEN ...] [ELSE e] END`
    Case {
        /// `(condition, value)` pairs in order.
        branches: Vec<(Expr, Expr)>,
        /// Optional `ELSE` value (`NULL` when absent).
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// `NOT BETWEEN`?
        negated: bool,
        /// Inclusive lower bound.
        low: Box<Expr>,
        /// Inclusive upper bound.
        high: Box<Expr>,
    },
    /// `expr [NOT] IN (e1, e2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// `NOT IN`?
        negated: bool,
        /// The membership list.
        list: Vec<Expr>,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// `NOT LIKE`?
        negated: bool,
        /// The pattern expression.
        pattern: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// Parenthesized grouping is not preserved — precedence is structural.
    Nested(Box<Expr>),
}

impl Expr {
    /// Integer literal shorthand.
    pub fn lit_int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// String literal shorthand.
    pub fn lit_str(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(v.into()))
    }

    /// Unqualified column reference shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Qualified column reference shorthand.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Build a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// `left AND right` shorthand.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    /// `left = right` shorthand.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }
}

/// One item in a SELECT projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column alias, if given.
        alias: Option<String>,
    },
}

/// A table in the FROM clause with an optional alias. Explicit
/// `JOIN … ON` syntax is parsed and folded to (tables, conjunctive
/// predicate); the engine's planner recovers equi-join structure from the
/// conjuncts.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The table being read.
    pub table: ObjectName,
    /// Range-variable alias, if given.
    pub alias: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
/// One `ORDER BY` item.
pub struct OrderByItem {
    /// Sort key (expression, alias, or 1-based ordinal literal).
    pub expr: Expr,
    /// Descending order?
    pub desc: bool,
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The projection list.
    pub projections: Vec<SelectItem>,
    /// FROM tables (explicit JOINs are folded to tables + WHERE conjuncts).
    pub from: Vec<FromItem>,
    /// The WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (group filter).
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n` / `TOP n`.
    pub limit: Option<u64>,
    /// `OFFSET n` — server-side skip (Phoenix's repositioning uses this).
    pub offset: Option<u64>,
}

impl SelectStmt {
    /// A minimal `SELECT <projections>` with no FROM clause.
    pub fn bare(projections: Vec<SelectItem>) -> SelectStmt {
        SelectStmt {
            distinct: false,
            projections,
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// `SELECT * FROM <table>`
    pub fn star_from(table: ObjectName) -> SelectStmt {
        SelectStmt {
            distinct: false,
            projections: vec![SelectItem::Wildcard],
            from: vec![FromItem { table, alias: None }],
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// Column definition in CREATE TABLE. Types are kept as parsed names and
/// validated by the engine, so the sql crate stays storage-agnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Type name as written (`INT`, `VARCHAR`, …); validated by the engine.
    pub type_name: String,
    /// `NOT NULL` constraint?
    pub not_null: bool,
}

#[derive(Debug, Clone, PartialEq)]
/// `CREATE TABLE` statement.
pub struct CreateTableStmt {
    /// The table to create.
    pub name: ObjectName,
    /// Column definitions in order.
    pub columns: Vec<ColumnDef>,
    /// Column names listed in `PRIMARY KEY (…)`.
    pub primary_key: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
/// Where an INSERT's rows come from.
pub enum InsertSource {
    /// `VALUES (…), (…)` tuples.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT …` — the form Phoenix's capture rewrite uses.
    Select(Box<SelectStmt>),
}

#[derive(Debug, Clone, PartialEq)]
/// `INSERT` statement.
pub struct InsertStmt {
    /// Target table.
    pub table: ObjectName,
    /// Explicit column list, if given.
    pub columns: Option<Vec<String>>,
    /// The rows to insert.
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
/// `UPDATE` statement.
pub struct UpdateStmt {
    /// Target table.
    pub table: ObjectName,
    /// `SET column = expr` pairs in order.
    pub assignments: Vec<(String, Expr)>,
    /// Row filter; all rows when absent.
    pub where_clause: Option<Expr>,
}

#[derive(Debug, Clone, PartialEq)]
/// `DELETE` statement.
pub struct DeleteStmt {
    /// Target table.
    pub table: ObjectName,
    /// Row filter; all rows when absent.
    pub where_clause: Option<Expr>,
}

/// Procedure parameter: `@name TYPE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcParam {
    /// Parameter name (without the `@` sigil).
    pub name: String,
    /// Declared type name (advisory; arguments are dynamically typed).
    pub type_name: String,
}

#[derive(Debug, Clone, PartialEq)]
/// `CREATE PROCEDURE` statement.
pub struct CreateProcStmt {
    /// Procedure name.
    pub name: ObjectName,
    /// Declared parameters in order.
    pub params: Vec<ProcParam>,
    /// Body statements (one, or a `BEGIN … END` block).
    pub body: Vec<Statement>,
}

#[derive(Debug, Clone, PartialEq)]
/// `EXEC` (procedure invocation) statement.
pub struct ExecStmt {
    /// Procedure to invoke.
    pub name: ObjectName,
    /// Positional arguments.
    pub args: Vec<Expr>,
}

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …`.
    Select(SelectStmt),
    /// `INSERT …`.
    Insert(InsertStmt),
    /// `UPDATE …`.
    Update(UpdateStmt),
    /// `DELETE …`.
    Delete(DeleteStmt),
    /// `CREATE TABLE …`.
    CreateTable(CreateTableStmt),
    /// `DROP TABLE [IF EXISTS] …`.
    DropTable {
        /// The table to drop.
        name: ObjectName,
        /// Suppress the not-found error?
        if_exists: bool,
    },
    /// `CREATE PROCEDURE …`.
    CreateProc(CreateProcStmt),
    /// `DROP PROCEDURE [IF EXISTS] …`.
    DropProc {
        /// The procedure to drop.
        name: ObjectName,
        /// Suppress the not-found error?
        if_exists: bool,
    },
    /// `EXEC name (args…)`.
    Exec(ExecStmt),
    /// `BEGIN [TRANSACTION]`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
    /// Session option: `SET name value` (value is a literal expression).
    Set {
        /// Option name.
        name: String,
        /// Option value expression.
        value: Expr,
    },
    /// `PRINT expr` — emits a server message (used to exercise the paper's
    /// reply-buffer persistence).
    Print(Expr),
    /// `CREATE INDEX name ON table (column)` — a single-column secondary
    /// index.
    CreateIndex {
        /// Index name (unique per table).
        name: String,
        /// The table to index.
        table: ObjectName,
        /// The indexed column.
        column: String,
    },
    /// `DROP INDEX [IF EXISTS] name` — the owning table is resolved from
    /// the catalog.
    DropIndex {
        /// The index to drop.
        name: String,
        /// Suppress the not-found error?
        if_exists: bool,
    },
    /// `EXPLAIN <stmt>` — return the planner's chosen access paths as an
    /// ordinary result set instead of executing the statement.
    Explain(Box<Statement>),
}

impl Statement {
    /// The object this statement creates, if it is a CREATE.
    pub fn created_object(&self) -> Option<&ObjectName> {
        match self {
            Statement::CreateTable(c) => Some(&c.name),
            Statement::CreateProc(c) => Some(&c.name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_name_canonicalization() {
        assert_eq!(ObjectName::bare("Orders").canonical(), "dbo.orders");
        assert_eq!(
            ObjectName::qualified("Phoenix", "RS_1").canonical(),
            "phoenix.rs_1"
        );
        assert_eq!(ObjectName::bare("#Tmp").canonical(), "#tmp");
        assert!(ObjectName::bare("#t").is_temp());
        assert!(!ObjectName::qualified("dbo", "t").is_temp());
    }

    #[test]
    fn same_as_ignores_case_and_default_namespace() {
        assert!(ObjectName::bare("orders").same_as(&ObjectName::qualified("DBO", "ORDERS")));
        assert!(!ObjectName::bare("orders").same_as(&ObjectName::qualified("phoenix", "orders")));
    }

    #[test]
    fn expr_builders() {
        let e = Expr::and(
            Expr::eq(Expr::col("a"), Expr::lit_int(1)),
            Expr::binary(Expr::qcol("t", "b"), BinaryOp::Gt, Expr::lit_str("x")),
        );
        match e {
            Expr::Binary {
                op: BinaryOp::And, ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
