#![warn(missing_docs)]

//! # phoenix-sql
//!
//! The SQL front end shared by the engine and by Phoenix itself.
//!
//! Phoenix/ODBC (Barga, Lomet, Baby, Agrawal; EDBT 2000) works by
//! *intercepting* SQL on its way to the server, classifying it with a
//! one-pass parse, and *rewriting* selected statements — appending the
//! `WHERE 0=1` metadata probe, wrapping results in `INSERT INTO … SELECT`,
//! renaming temporary objects to persistent ones. That makes the SQL layer a
//! first-class citizen of the reproduction, not just an engine detail:
//!
//! * [`lexer`] — tokenizer (keywords, quoted and `#temp` identifiers, string
//!   and numeric literals, `@params`).
//! * [`ast`] — the statement and expression trees.
//! * [`parser`] — recursive-descent parser with precedence climbing.
//! * [`display`] — renders any AST node back to parseable SQL; Phoenix's
//!   rewrites are AST surgery followed by re-rendering.
//! * [`rewrite`] — the rewrite toolkit (metadata probe, capture-into-table,
//!   object renaming, predicate conjunction).
//! * [`classify`](mod@classify) — the "one-pass parse to determine request type" from
//!   §3 of the paper.
//!
//! The dialect is a pragmatic subset of ANSI SQL plus the T-SQL-isms the
//! paper relies on (temp `#names`, `EXEC`, `PRINT`, `TOP`).

pub mod ast;
pub mod classify;
pub mod display;
pub mod lexer;
pub mod parser;
pub mod rewrite;

pub use ast::{Expr, ObjectName, SelectStmt, Statement};
pub use classify::{classify, RequestKind};
pub use parser::{parse_statement, parse_statements, ParseError};
