//! The "one-pass parse to determine request type" (paper §3).
//!
//! When Phoenix intercepts an application request it must decide, before
//! forwarding anything, which persistence mechanism applies: result-set
//! materialization for queries, transaction-wrapping for data modification,
//! temp-object redirection for temporary DDL, context logging for SET, and
//! so on. [`classify`] is that decision.

use crate::ast::{ObjectName, Statement};
use crate::rewrite::table_refs;

/// The request categories Phoenix distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// SELECT — produces a result set that must be made recoverable.
    Query,
    /// INSERT / UPDATE / DELETE — has *testable state* (rows affected) that
    /// must be recorded transactionally.
    DataModification,
    /// CREATE/DROP TABLE or PROCEDURE — may create or destroy session
    /// temporary objects that Phoenix must redirect.
    Ddl,
    /// Stored-procedure invocation; may return a result set.
    Exec,
    /// BEGIN — opens an application transaction.
    TxnBegin,
    /// COMMIT / ROLLBACK.
    TxnEnd,
    /// SET — session context that must be replayed at recovery.
    SessionContext,
    /// PRINT and similar — generates server messages only.
    Message,
}

/// Classify a parsed statement.
pub fn classify(stmt: &Statement) -> RequestKind {
    match stmt {
        Statement::Select(_) => RequestKind::Query,
        Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
            RequestKind::DataModification
        }
        Statement::CreateTable(_)
        | Statement::DropTable { .. }
        | Statement::CreateProc(_)
        | Statement::DropProc { .. }
        | Statement::CreateIndex { .. }
        | Statement::DropIndex { .. } => RequestKind::Ddl,
        Statement::Exec(_) => RequestKind::Exec,
        Statement::Begin => RequestKind::TxnBegin,
        Statement::Commit | Statement::Rollback => RequestKind::TxnEnd,
        Statement::Set { .. } => RequestKind::SessionContext,
        Statement::Print(_) => RequestKind::Message,
        // EXPLAIN reads the catalog and returns rows; route it like a query.
        Statement::Explain(_) => RequestKind::Query,
    }
}

/// Does this statement produce a result set the client will fetch from?
pub fn produces_result_set(stmt: &Statement) -> bool {
    matches!(stmt, Statement::Select(_) | Statement::Explain(_))
}

/// The temp object this statement *creates*, if any (`CREATE TABLE #x`,
/// `CREATE PROCEDURE #p`).
pub fn creates_temp_object(stmt: &Statement) -> Option<&ObjectName> {
    stmt.created_object().filter(|n| n.is_temp())
}

/// The temp object this statement *drops*, if any.
pub fn drops_temp_object(stmt: &Statement) -> Option<&ObjectName> {
    match stmt {
        Statement::DropTable { name, .. } | Statement::DropProc { name, .. } if name.is_temp() => {
            Some(name)
        }
        _ => None,
    }
}

/// Every temp-object *reference* in the statement (targets and FROM
/// clauses), deduplicated, in first-appearance order.
pub fn temp_object_refs(stmt: &Statement) -> Vec<ObjectName> {
    let mut seen = Vec::new();
    for r in table_refs(stmt) {
        if r.is_temp() && !seen.iter().any(|s: &ObjectName| s.same_as(&r)) {
            seen.push(r);
        }
    }
    // EXEC of a temp proc is also a temp reference.
    if let Statement::Exec(e) = stmt {
        if e.name.is_temp() && !seen.iter().any(|s| s.same_as(&e.name)) {
            seen.push(e.name.clone());
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn kind(sql: &str) -> RequestKind {
        classify(&parse_statement(sql).unwrap())
    }

    #[test]
    fn classification() {
        assert_eq!(kind("SELECT * FROM t"), RequestKind::Query);
        assert_eq!(
            kind("INSERT INTO t VALUES (1)"),
            RequestKind::DataModification
        );
        assert_eq!(kind("UPDATE t SET a = 1"), RequestKind::DataModification);
        assert_eq!(kind("DELETE FROM t"), RequestKind::DataModification);
        assert_eq!(kind("CREATE TABLE t (a INT)"), RequestKind::Ddl);
        assert_eq!(kind("DROP PROCEDURE p"), RequestKind::Ddl);
        assert_eq!(kind("EXEC p"), RequestKind::Exec);
        assert_eq!(kind("BEGIN TRAN"), RequestKind::TxnBegin);
        assert_eq!(kind("COMMIT"), RequestKind::TxnEnd);
        assert_eq!(kind("ROLLBACK"), RequestKind::TxnEnd);
        assert_eq!(kind("SET opt 1"), RequestKind::SessionContext);
        assert_eq!(kind("PRINT 'x'"), RequestKind::Message);
        assert_eq!(kind("CREATE INDEX ix ON t (a)"), RequestKind::Ddl);
        assert_eq!(kind("DROP INDEX ix"), RequestKind::Ddl);
        assert_eq!(kind("EXPLAIN SELECT * FROM t"), RequestKind::Query);
        let explain = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        assert!(produces_result_set(&explain));
    }

    #[test]
    fn temp_creation_detection() {
        let s = parse_statement("CREATE TABLE #work (v INT)").unwrap();
        assert_eq!(creates_temp_object(&s).unwrap().name, "#work");
        let s = parse_statement("CREATE TABLE real_table (v INT)").unwrap();
        assert!(creates_temp_object(&s).is_none());
        let s = parse_statement("CREATE PROC #p AS SELECT 1").unwrap();
        assert_eq!(creates_temp_object(&s).unwrap().name, "#p");
    }

    #[test]
    fn temp_drop_detection() {
        let s = parse_statement("DROP TABLE #work").unwrap();
        assert_eq!(drops_temp_object(&s).unwrap().name, "#work");
        let s = parse_statement("DROP TABLE solid").unwrap();
        assert!(drops_temp_object(&s).is_none());
    }

    #[test]
    fn temp_references_found_and_deduped() {
        let s = parse_statement("INSERT INTO #a SELECT * FROM #a, #b, real").unwrap();
        let refs = temp_object_refs(&s);
        let names: Vec<&str> = refs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["#a", "#b"]);
    }

    #[test]
    fn exec_of_temp_proc_is_a_temp_ref() {
        let s = parse_statement("EXEC #p (1)").unwrap();
        assert_eq!(temp_object_refs(&s)[0].name, "#p");
    }
}
