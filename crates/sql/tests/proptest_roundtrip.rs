// The offline build environment has no `proptest` crate available, so these
// property tests are compiled only when the `slow-proptests` feature is
// enabled (which requires supplying a real proptest dependency).
#![cfg(feature = "slow-proptests")]

//! Property test: `parse(render(ast))` is the identity (after `Nested`
//! normalization) over a generated expression/statement space.
//!
//! Phoenix's correctness depends on this — every intercepted request is
//! rewritten by AST surgery and re-rendered before reaching the server, so
//! rendering must never change meaning.

use proptest::prelude::*;

use phoenix_sql::ast::*;
use phoenix_sql::display::{normalize_statement, render_statement};
use phoenix_sql::parser::parse_statement;

/// Identifier pool: safe, non-keyword names.
fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "a", "b", "c", "total", "cust_id", "okey", "payload", "x9",
    ])
    .prop_map(str::to_string)
}

fn table_name() -> impl Strategy<Value = ObjectName> {
    prop_oneof![
        ident().prop_map(ObjectName::bare),
        (ident(), ident()).prop_map(|(ns, n)| ObjectName::qualified(ns, n)),
        ident().prop_map(|n| ObjectName::bare(format!("#{n}"))),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<i64>().prop_map(Literal::Int),
        // Finite floats only; the renderer emits shortest-roundtrip decimal.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Literal::Float),
        "[ -~]{0,12}".prop_map(Literal::String),
        any::<bool>().prop_map(Literal::Bool),
        (1970i64..2100, 1u32..13, 1u32..29)
            .prop_map(|(y, m, d)| Literal::Date(format!("{y:04}-{m:02}-{d:02}"))),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Literal),
        ident().prop_map(|n| Expr::Column {
            table: None,
            name: n
        }),
        (ident(), ident()).prop_map(|(t, n)| Expr::Column {
            table: Some(t),
            name: n
        }),
        ident().prop_map(Expr::Param),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                prop::sample::select(vec![
                    BinaryOp::Add,
                    BinaryOp::Sub,
                    BinaryOp::Mul,
                    BinaryOp::Div,
                    BinaryOp::Mod,
                    BinaryOp::Eq,
                    BinaryOp::NotEq,
                    BinaryOp::Lt,
                    BinaryOp::LtEq,
                    BinaryOp::Gt,
                    BinaryOp::GtEq,
                    BinaryOp::And,
                    BinaryOp::Or,
                ]),
                inner.clone()
            )
                .prop_map(|(l, op, r)| Expr::binary(l, op, r)),
            (inner.clone(), any::<bool>()).prop_map(|(e, neg)| Expr::IsNull {
                expr: Box::new(e),
                negated: neg
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, neg)| Expr::Between {
                    expr: Box::new(e),
                    negated: neg,
                    low: Box::new(lo),
                    high: Box::new(hi),
                }
            ),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, neg)| Expr::InList {
                    expr: Box::new(e),
                    negated: neg,
                    list,
                }),
            (
                prop::sample::select(vec!["SUM", "COUNT", "AVG", "MIN", "MAX", "ABS", "UPPER"]),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(name, args, distinct)| Expr::Function {
                    name: name.to_string(),
                    args,
                    distinct,
                }),
            (
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                prop::option::of(inner.clone())
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
        ]
    })
}

fn select_stmt() -> impl Strategy<Value = SelectStmt> {
    (
        any::<bool>(),
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                (expr(), prop::option::of(ident()))
                    .prop_map(|(e, alias)| SelectItem::Expr { expr: e, alias }),
            ],
            1..4,
        ),
        prop::collection::vec(
            (table_name(), prop::option::of(ident()))
                .prop_map(|(t, a)| FromItem { table: t, alias: a }),
            0..3,
        ),
        prop::option::of(expr()),
        prop::collection::vec(expr(), 0..3),
        prop::option::of(expr()),
        prop::collection::vec(
            (expr(), any::<bool>()).prop_map(|(e, desc)| OrderByItem { expr: e, desc }),
            0..3,
        ),
        prop::option::of(0u64..10_000),
        prop::option::of(0u64..10_000),
    )
        .prop_map(
            |(
                distinct,
                projections,
                from,
                where_clause,
                group_by,
                having,
                order_by,
                limit,
                offset,
            )| {
                SelectStmt {
                    distinct,
                    projections,
                    from,
                    where_clause,
                    group_by,
                    having,
                    order_by,
                    limit,
                    offset,
                }
            },
        )
}

fn statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        select_stmt().prop_map(Statement::Select),
        (
            table_name(),
            prop::option::of(prop::collection::vec(ident(), 1..4)),
            prop::collection::vec(prop::collection::vec(expr(), 1..4), 1..3)
        )
            .prop_map(|(table, columns, rows)| {
                Statement::Insert(InsertStmt {
                    table,
                    columns,
                    source: InsertSource::Values(rows),
                })
            }),
        (table_name(), select_stmt()).prop_map(|(table, sel)| {
            Statement::Insert(InsertStmt {
                table,
                columns: None,
                source: InsertSource::Select(Box::new(sel)),
            })
        }),
        (
            table_name(),
            prop::collection::vec((ident(), expr()), 1..4),
            prop::option::of(expr())
        )
            .prop_map(|(table, assignments, where_clause)| {
                Statement::Update(UpdateStmt {
                    table,
                    assignments,
                    where_clause,
                })
            }),
        (table_name(), prop::option::of(expr())).prop_map(|(table, where_clause)| {
            Statement::Delete(DeleteStmt {
                table,
                where_clause,
            })
        }),
        (table_name(), any::<bool>())
            .prop_map(|(name, if_exists)| Statement::DropTable { name, if_exists }),
        (table_name(), prop::collection::vec(expr(), 0..3))
            .prop_map(|(name, args)| { Statement::Exec(ExecStmt { name, args }) }),
        Just(Statement::Begin),
        Just(Statement::Commit),
        Just(Statement::Rollback),
        (ident(), literal()).prop_map(|(name, v)| Statement::Set {
            name,
            value: Expr::Literal(v)
        }),
        expr().prop_map(Statement::Print),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn render_parse_roundtrip(stmt in statement()) {
        let original = normalize_statement(&stmt);
        let sql = render_statement(&original);
        let reparsed = parse_statement(&sql)
            .unwrap_or_else(|e| panic!("render produced unparseable SQL: {e}\n  sql: {sql}\n  ast: {original:?}"));
        let reparsed = normalize_statement(&reparsed);
        prop_assert_eq!(original, reparsed, "sql was: {}", sql);
    }

    #[test]
    fn rename_is_idempotent_and_complete(stmt in statement(), new in table_name()) {
        // After renaming every table reference to `new`, no reference to the
        // old names remains (when old and new differ).
        let refs = phoenix_sql::rewrite::table_refs(&stmt);
        let mut current = stmt.clone();
        for r in &refs {
            if !r.same_as(&new) {
                current = phoenix_sql::rewrite::rename_table_refs(&current, r, &new);
            }
        }
        for r in phoenix_sql::rewrite::table_refs(&current) {
            let was_renamed = refs.iter().any(|old| old.same_as(&r) && !old.same_as(&new));
            prop_assert!(!was_renamed, "stale reference {r:?} after rename");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// The parser is total: arbitrary input produces a statement or an
    /// error, never a panic (the server feeds it raw client bytes).
    #[test]
    fn parser_never_panics(input in "[ -~\\n\\t]{0,120}") {
        let _ = phoenix_sql::parse_statement(&input);
        let _ = phoenix_sql::parse_statements(&input);
    }

    /// The lexer is total over arbitrary UTF-8.
    #[test]
    fn lexer_never_panics(input in "\\PC{0,80}") {
        let _ = phoenix_sql::lexer::tokenize(&input);
    }

    /// Every successfully parsed statement re-renders to SQL that parses
    /// again (closure of the render/parse pair over *arbitrary* accepted
    /// inputs, not just generated ASTs).
    #[test]
    fn accepted_input_roundtrips(input in "[ -~]{0,120}") {
        if let Ok(stmt) = phoenix_sql::parse_statement(&input) {
            let rendered = phoenix_sql::display::render_statement(&stmt);
            let reparsed = phoenix_sql::parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("accepted {input:?}, rendered {rendered:?}, reparse failed: {e}"));
            let a = phoenix_sql::display::normalize_statement(&stmt);
            let b = phoenix_sql::display::normalize_statement(&reparsed);
            prop_assert_eq!(a, b, "input: {:?} rendered: {:?}", input, rendered);
        }
    }
}
