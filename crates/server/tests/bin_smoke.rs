//! Smoke test for the standalone `phoenix-server` binary: start it as a real
//! child process, talk to it over TCP, shut it down via stdin, and verify
//! the data survived (checkpoint on shutdown + recovery on start).

use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Outcome, Request, Response};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-binsmoke-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn spawn_server(data: &Path, port: u16) -> Child {
    Command::new(env!("CARGO_BIN_EXE_phoenix-server"))
        .args([
            "--data",
            data.to_str().unwrap(),
            "--port",
            &port.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn phoenix-server")
}

fn wait_for_port(port: u16) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("server never came up on {port}: {e}"),
        }
    }
}

fn call(s: &mut TcpStream, req: Request) -> Response {
    write_frame(s, &req.encode()).unwrap();
    Response::decode(&read_frame(s).unwrap()).unwrap()
}

fn shutdown(mut child: Child) {
    // A newline on stdin triggers graceful shutdown (checkpoint).
    child.stdin.as_mut().unwrap().write_all(b"\n").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "server exited with {status}");
                return;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            None => {
                let _ = child.kill();
                panic!("server did not shut down");
            }
        }
    }
}

/// Pick a free port by binding an ephemeral listener and dropping it.
fn free_port() -> u16 {
    std::net::TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

#[test]
fn server_binary_serves_and_persists_across_restarts() {
    let data = temp_dir();
    let port = free_port();

    // Incarnation 1: create data.
    let child = spawn_server(&data, port);
    {
        let mut s = wait_for_port(port);
        match call(
            &mut s,
            Request::Login {
                user: "smoke".into(),
                database: "d".into(),
                options: vec![],
            },
        ) {
            Response::LoginAck { .. } => {}
            other => panic!("{other:?}"),
        }
        call(
            &mut s,
            Request::Exec {
                sql: "CREATE TABLE t (v INT)".into(),
            },
        );
        call(
            &mut s,
            Request::Exec {
                sql: "INSERT INTO t VALUES (1), (2), (3)".into(),
            },
        );
        match call(&mut s, Request::Logout) {
            Response::Bye => {}
            other => panic!("{other:?}"),
        }
    }
    shutdown(child);

    // Incarnation 2: the data is still there after a full process restart.
    let child = spawn_server(&data, port);
    {
        let mut s = wait_for_port(port);
        call(
            &mut s,
            Request::Login {
                user: "smoke".into(),
                database: "d".into(),
                options: vec![],
            },
        );
        match call(
            &mut s,
            Request::Exec {
                sql: "SELECT COUNT(*) FROM t".into(),
            },
        ) {
            Response::Result {
                outcome: Outcome::ResultSet { rows, .. },
                ..
            } => assert_eq!(rows[0][0], phoenix_storage::types::Value::Int(3)),
            other => panic!("{other:?}"),
        }
    }
    shutdown(child);

    std::fs::remove_dir_all(&data).unwrap();
}
