//! Protocol-robustness tests: a well-formed frame carrying a garbage payload
//! must produce a clean `Response::Err` and leave the connection usable —
//! killing the connection would also kill the session (temp tables, cursors),
//! which is far too high a price for one bad message.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_engine::EngineConfig;
use phoenix_server::metrics::server_metrics;
use phoenix_server::ServerHarness;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Outcome, Request, Response};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-robust-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn call(s: &mut TcpStream, req: Request) -> Response {
    write_frame(s, &req.encode()).unwrap();
    let payload = read_frame(s).unwrap();
    Response::decode(&payload).unwrap()
}

/// Send raw bytes as a frame payload and read back the response.
fn call_raw(s: &mut TcpStream, payload: &[u8]) -> Response {
    write_frame(s, payload).unwrap();
    let payload = read_frame(s).unwrap();
    Response::decode(&payload).unwrap()
}

#[test]
fn garbage_payload_gets_error_and_connection_survives() {
    let dir = temp_dir("garbage");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();

    match call(
        &mut s,
        Request::Login {
            user: "t".into(),
            database: "d".into(),
            options: vec![],
        },
    ) {
        Response::LoginAck { .. } => {}
        other => panic!("login failed: {other:?}"),
    }
    match call(
        &mut s,
        Request::Exec {
            sql: "CREATE TABLE #scratch (x INT)".into(),
        },
    ) {
        Response::Result { .. } => {}
        other => panic!("create failed: {other:?}"),
    }

    let malformed_before = server_metrics().malformed_requests.get();

    // An unknown request tag, a truncated Login, and pure noise: all are
    // valid *frames*, none are valid *requests*. Each must be answered with
    // an error on the same, still-living connection.
    for garbage in [&[200u8][..], &[1, 0, 0][..], &[0xde, 0xad, 0xbe, 0xef][..]] {
        match call_raw(&mut s, garbage) {
            Response::Err { message, .. } => {
                assert!(message.contains("malformed request"), "{message}");
            }
            other => panic!("expected Err for {garbage:?}, got {other:?}"),
        }
    }

    assert_eq!(
        server_metrics().malformed_requests.get(),
        malformed_before + 3,
        "each garbage frame must be counted"
    );

    // The connection — and the session behind it — are still intact: the
    // temp table created before the garbage is still visible.
    match call(&mut s, Request::Ping) {
        Response::Pong => {}
        other => panic!("ping after garbage failed: {other:?}"),
    }
    match call(
        &mut s,
        Request::Exec {
            sql: "INSERT INTO #scratch VALUES (1)".into(),
        },
    ) {
        Response::Result {
            outcome: Outcome::RowsAffected(1),
            ..
        } => {}
        other => panic!("temp table lost after garbage: {other:?}"),
    }

    h.shutdown();
}

/// A scripted stand-in for a dying server: answers the login handshake, then
/// hands the connection to `script` to misbehave with.
fn fake_server<F>(script: F) -> (String, std::thread::JoinHandle<()>)
where
    F: FnOnce(&mut TcpStream) + Send + 'static,
{
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_nodelay(true).unwrap();
        let _login = read_frame(&mut s).unwrap();
        write_frame(&mut s, &Response::LoginAck { session: 7 }.encode()).unwrap();
        script(&mut s);
    });
    (addr, handle)
}

#[test]
fn half_written_reply_is_clean_comm_error() {
    // The server dies mid-send: the client has the frame header (promising
    // 64 bytes) and 10 payload bytes when the socket closes. The driver must
    // surface a clean connection-lost error — the trigger for Phoenix's
    // reconnect loop — never a decode panic or a terminal protocol error.
    let (addr, server) = fake_server(|s| {
        let _req = read_frame(s).unwrap();
        use std::io::Write;
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[0xAA; 10]).unwrap();
        s.flush().unwrap();
        // Socket drops here: EOF mid-frame on the client.
    });

    let env = phoenix_driver::Environment::new();
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "half-written reply must be comm, got {err}");
    assert!(conn.is_poisoned(), "connection must be poisoned");
    assert!(conn.execute("SELECT 1").unwrap_err().is_comm());
    server.join().unwrap();
}

#[test]
fn undecodable_reply_frame_is_comm_and_poisons() {
    // A complete, well-formed frame whose payload is not a decodable
    // Response. Framing is lost for good (the stream can't be resynced), so
    // this too must classify as a communication failure that poisons the
    // connection — not a protocol error the application would treat as
    // terminal, and not a panic.
    let (addr, server) = fake_server(|s| {
        let _req = read_frame(s).unwrap();
        write_frame(s, &[0xde, 0xad, 0xbe, 0xef, 0xff]).unwrap();
        // Keep the socket open until the client gives up, so the failure the
        // driver sees is the bad payload, not EOF.
        let _ = read_frame(s);
    });

    let env = phoenix_driver::Environment::new();
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "undecodable reply must be comm, got {err}");
    assert!(conn.is_poisoned(), "connection must be poisoned");
    drop(conn);
    server.join().unwrap();
}

#[test]
fn oversized_reply_frame_is_comm_and_poisons() {
    // A length header past MAX_FRAME means the stream is desynchronized
    // (we are reading payload bytes as a header). Same classification.
    let (addr, server) = fake_server(|s| {
        let _req = read_frame(s).unwrap();
        use std::io::Write;
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        s.flush().unwrap();
        let _ = read_frame(s);
    });

    let env = phoenix_driver::Environment::new();
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "oversized reply must be comm, got {err}");
    assert!(conn.is_poisoned());
    drop(conn);
    server.join().unwrap();
}

#[test]
fn stats_request_round_trips_without_login() {
    let dir = temp_dir("stats");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let mut s = TcpStream::connect(h.addr()).unwrap();

    // Stats is session-less, like Ping: no login required.
    let snapshot = match call(&mut s, Request::Stats) {
        Response::Stats { snapshot } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    let stats = phoenix_obs::StatsSnapshot::decode(&snapshot).unwrap();
    assert!(
        stats
            .counter("phoenix_connections_accepted_total")
            .is_some_and(|v| v >= 1),
        "server-side counters must appear in the wire snapshot"
    );

    h.shutdown();
}
