//! Protocol-robustness tests: a well-formed frame carrying a garbage payload
//! must produce a clean `Response::Err` and leave the connection usable —
//! killing the connection would also kill the session (temp tables, cursors),
//! which is far too high a price for one bad message.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_engine::EngineConfig;
use phoenix_server::metrics::server_metrics;
use phoenix_server::ServerHarness;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Outcome, Request, Response};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-robust-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn call(s: &mut TcpStream, req: Request) -> Response {
    write_frame(s, &req.encode()).unwrap();
    let payload = read_frame(s).unwrap();
    Response::decode(&payload).unwrap()
}

/// Send raw bytes as a frame payload and read back the response.
fn call_raw(s: &mut TcpStream, payload: &[u8]) -> Response {
    write_frame(s, payload).unwrap();
    let payload = read_frame(s).unwrap();
    Response::decode(&payload).unwrap()
}

#[test]
fn garbage_payload_gets_error_and_connection_survives() {
    let dir = temp_dir("garbage");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();

    match call(
        &mut s,
        Request::Login {
            user: "t".into(),
            database: "d".into(),
            options: vec![],
        },
    ) {
        Response::LoginAck { .. } => {}
        other => panic!("login failed: {other:?}"),
    }
    match call(
        &mut s,
        Request::Exec {
            sql: "CREATE TABLE #scratch (x INT)".into(),
        },
    ) {
        Response::Result { .. } => {}
        other => panic!("create failed: {other:?}"),
    }

    let malformed_before = server_metrics().malformed_requests.get();

    // An unknown request tag, a truncated Login, and pure noise: all are
    // valid *frames*, none are valid *requests*. Each must be answered with
    // an error on the same, still-living connection.
    for garbage in [&[200u8][..], &[1, 0, 0][..], &[0xde, 0xad, 0xbe, 0xef][..]] {
        match call_raw(&mut s, garbage) {
            Response::Err { message, .. } => {
                assert!(message.contains("malformed request"), "{message}");
            }
            other => panic!("expected Err for {garbage:?}, got {other:?}"),
        }
    }

    assert_eq!(
        server_metrics().malformed_requests.get(),
        malformed_before + 3,
        "each garbage frame must be counted"
    );

    // The connection — and the session behind it — are still intact: the
    // temp table created before the garbage is still visible.
    match call(&mut s, Request::Ping) {
        Response::Pong => {}
        other => panic!("ping after garbage failed: {other:?}"),
    }
    match call(
        &mut s,
        Request::Exec {
            sql: "INSERT INTO #scratch VALUES (1)".into(),
        },
    ) {
        Response::Result {
            outcome: Outcome::RowsAffected(1),
            ..
        } => {}
        other => panic!("temp table lost after garbage: {other:?}"),
    }

    h.shutdown();
}

/// A scripted stand-in for a dying server: answers the login handshake, then
/// hands the connection to `script` to misbehave with.
fn fake_server<F>(script: F) -> (String, std::thread::JoinHandle<()>)
where
    F: FnOnce(&mut TcpStream) + Send + 'static,
{
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_nodelay(true).unwrap();
        let _login = read_frame(&mut s).unwrap();
        write_frame(&mut s, &Response::LoginAck { session: 7 }.encode()).unwrap();
        script(&mut s);
    });
    (addr, handle)
}

#[test]
fn half_written_reply_is_clean_comm_error() {
    // The server dies mid-send: the client has the frame header (promising
    // 64 bytes) and 10 payload bytes when the socket closes. The driver must
    // surface a clean connection-lost error — the trigger for Phoenix's
    // reconnect loop — never a decode panic or a terminal protocol error.
    let (addr, server) = fake_server(|s| {
        let _req = read_frame(s).unwrap();
        use std::io::Write;
        s.write_all(&64u32.to_le_bytes()).unwrap();
        s.write_all(&[0xAA; 10]).unwrap();
        s.flush().unwrap();
        // Socket drops here: EOF mid-frame on the client.
    });

    let env = phoenix_driver::Environment::new().with_protocol(phoenix_wire::message::PROTOCOL_V1);
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "half-written reply must be comm, got {err}");
    assert!(conn.is_poisoned(), "connection must be poisoned");
    assert!(conn.execute("SELECT 1").unwrap_err().is_comm());
    server.join().unwrap();
}

#[test]
fn undecodable_reply_frame_is_comm_and_poisons() {
    // A complete, well-formed frame whose payload is not a decodable
    // Response. Framing is lost for good (the stream can't be resynced), so
    // this too must classify as a communication failure that poisons the
    // connection — not a protocol error the application would treat as
    // terminal, and not a panic.
    let (addr, server) = fake_server(|s| {
        let _req = read_frame(s).unwrap();
        write_frame(s, &[0xde, 0xad, 0xbe, 0xef, 0xff]).unwrap();
        // Keep the socket open until the client gives up, so the failure the
        // driver sees is the bad payload, not EOF.
        let _ = read_frame(s);
    });

    let env = phoenix_driver::Environment::new().with_protocol(phoenix_wire::message::PROTOCOL_V1);
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "undecodable reply must be comm, got {err}");
    assert!(conn.is_poisoned(), "connection must be poisoned");
    drop(conn);
    server.join().unwrap();
}

#[test]
fn oversized_reply_frame_is_comm_and_poisons() {
    // A length header past MAX_FRAME means the stream is desynchronized
    // (we are reading payload bytes as a header). Same classification.
    let (addr, server) = fake_server(|s| {
        let _req = read_frame(s).unwrap();
        use std::io::Write;
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        s.flush().unwrap();
        let _ = read_frame(s);
    });

    let env = phoenix_driver::Environment::new().with_protocol(phoenix_wire::message::PROTOCOL_V1);
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    let err = conn.execute("SELECT 1").unwrap_err();
    assert!(err.is_comm(), "oversized reply must be comm, got {err}");
    assert!(conn.is_poisoned());
    drop(conn);
    server.join().unwrap();
}

#[test]
fn stats_request_round_trips_without_login() {
    let dir = temp_dir("stats");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let mut s = TcpStream::connect(h.addr()).unwrap();

    // Stats is session-less, like Ping: no login required.
    let snapshot = match call(&mut s, Request::Stats) {
        Response::Stats { snapshot } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    let stats = phoenix_obs::StatsSnapshot::decode(&snapshot).unwrap();
    assert!(
        stats
            .counter("phoenix_connections_accepted_total")
            .is_some_and(|v| v >= 1),
        "server-side counters must appear in the wire snapshot"
    );

    h.shutdown();
}

/// The tentpole recovery test: crash the server with a whole pipelined
/// window of DML in flight. Every committed-and-unacknowledged tag must be
/// answered from the status table (never re-executed), every uncommitted
/// tag must be cleanly resubmitted, and the replies must come back in
/// submission order — the paper's exactly-once guarantee, per tag.
#[test]
fn pipelined_window_crash_replays_exactly_once() {
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    use phoenix_chaos as chaos;
    use phoenix_core::{PhoenixConfig, PhoenixConnection};

    let dir = temp_dir("pipewindow");
    let harness = Arc::new(Mutex::new(
        ServerHarness::start(&dir, EngineConfig::default()).unwrap(),
    ));

    let mut config = PhoenixConfig::default();
    config.recovery.read_timeout = Some(Duration::from_millis(500));
    config.recovery.ping_interval = Duration::from_millis(10);
    config.recovery.max_wait = Duration::from_secs(10);
    let mut pc = {
        let h = harness.lock().unwrap();
        PhoenixConnection::connect(
            &phoenix_driver::Environment::new(),
            &h.addr(),
            "app",
            "test",
            config,
        )
        .unwrap()
    };
    pc.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    pc.execute(
        "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0)",
    )
    .unwrap();

    // Statement i updates rows id <= i: every affected count is distinct
    // (proving reply order) and a double application would overshoot the
    // final increments (proving exactly-once).
    let stmts: Vec<String> = (1..=8)
        .map(|i| format!("UPDATE t SET v = v + 1 WHERE id <= {i}"))
        .collect();

    // Arm only now, so reply_send visit numbers start at the pipelined
    // window: the 6th reply is the 6th wrapper's — it has committed, and
    // killing its reply forces a status-table replay, while wrappers 7 and 8
    // die unexecuted and must be resubmitted.
    let guard = chaos::arm(chaos::Schedule::new().rule(
        chaos::Target::Point {
            point: "server.reply_send",
            nth: 6,
        },
        chaos::FaultSpec::CrashNow,
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let supervisor = {
        let harness = Arc::clone(&harness);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            if chaos::crash_requested() {
                let mut h = harness.lock().unwrap();
                h.crash().expect("supervisor crash");
                chaos::acknowledge_crash();
                std::thread::sleep(Duration::from_millis(20));
                h.restart().expect("supervisor restart");
                return true;
            }
            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        })
    };

    let results = pc
        .execute_pipelined(&stmts)
        .expect("window survives the crash");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let crashed = supervisor.join().unwrap();
    assert!(guard.fired().iter().any(|f| f.point == "server.reply_send"));
    drop(guard);
    assert!(crashed, "the injected fault must have crashed the server");

    // Reply order preserved: result i carries statement i's distinct count.
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        assert_eq!(
            r.affected(),
            (i + 1) as u64,
            "reply {i} out of order or wrong"
        );
    }

    // Exactly-once: row id gained exactly (9 - id) increments.
    let table = pc.execute("SELECT id, v FROM t ORDER BY id").unwrap();
    for row in table.rows() {
        let id = row[0].as_i64().unwrap();
        let v = row[1].as_i64().unwrap();
        assert_eq!(v, 9 - id, "row {id}: committed tag re-applied or lost");
    }

    let stats = pc.stats().clone();
    assert!(stats.recoveries >= 1, "{stats:?}");
    assert_eq!(stats.pipelined_dml, 8, "{stats:?}");
    assert!(
        stats.replied_from_status >= 1,
        "committed tag 6 must be answered from the status table: {stats:?}"
    );
    assert!(
        stats.resubmissions >= 1,
        "unexecuted tags must be resubmitted: {stats:?}"
    );

    pc.close();
    harness.lock().unwrap().shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
