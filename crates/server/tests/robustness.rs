//! Protocol-robustness tests: a well-formed frame carrying a garbage payload
//! must produce a clean `Response::Err` and leave the connection usable —
//! killing the connection would also kill the session (temp tables, cursors),
//! which is far too high a price for one bad message.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_engine::EngineConfig;
use phoenix_server::metrics::server_metrics;
use phoenix_server::ServerHarness;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Outcome, Request, Response};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-robust-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn call(s: &mut TcpStream, req: Request) -> Response {
    write_frame(s, &req.encode()).unwrap();
    let payload = read_frame(s).unwrap();
    Response::decode(&payload).unwrap()
}

/// Send raw bytes as a frame payload and read back the response.
fn call_raw(s: &mut TcpStream, payload: &[u8]) -> Response {
    write_frame(s, payload).unwrap();
    let payload = read_frame(s).unwrap();
    Response::decode(&payload).unwrap()
}

#[test]
fn garbage_payload_gets_error_and_connection_survives() {
    let dir = temp_dir("garbage");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();

    match call(
        &mut s,
        Request::Login {
            user: "t".into(),
            database: "d".into(),
            options: vec![],
        },
    ) {
        Response::LoginAck { .. } => {}
        other => panic!("login failed: {other:?}"),
    }
    match call(
        &mut s,
        Request::Exec {
            sql: "CREATE TABLE #scratch (x INT)".into(),
        },
    ) {
        Response::Result { .. } => {}
        other => panic!("create failed: {other:?}"),
    }

    let malformed_before = server_metrics().malformed_requests.get();

    // An unknown request tag, a truncated Login, and pure noise: all are
    // valid *frames*, none are valid *requests*. Each must be answered with
    // an error on the same, still-living connection.
    for garbage in [&[200u8][..], &[1, 0, 0][..], &[0xde, 0xad, 0xbe, 0xef][..]] {
        match call_raw(&mut s, garbage) {
            Response::Err { message, .. } => {
                assert!(message.contains("malformed request"), "{message}");
            }
            other => panic!("expected Err for {garbage:?}, got {other:?}"),
        }
    }

    assert_eq!(
        server_metrics().malformed_requests.get(),
        malformed_before + 3,
        "each garbage frame must be counted"
    );

    // The connection — and the session behind it — are still intact: the
    // temp table created before the garbage is still visible.
    match call(&mut s, Request::Ping) {
        Response::Pong => {}
        other => panic!("ping after garbage failed: {other:?}"),
    }
    match call(
        &mut s,
        Request::Exec {
            sql: "INSERT INTO #scratch VALUES (1)".into(),
        },
    ) {
        Response::Result {
            outcome: Outcome::RowsAffected(1),
            ..
        } => {}
        other => panic!("temp table lost after garbage: {other:?}"),
    }

    h.shutdown();
}

#[test]
fn stats_request_round_trips_without_login() {
    let dir = temp_dir("stats");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let mut s = TcpStream::connect(h.addr()).unwrap();

    // Stats is session-less, like Ping: no login required.
    let snapshot = match call(&mut s, Request::Stats) {
        Response::Stats { snapshot } => snapshot,
        other => panic!("expected stats, got {other:?}"),
    };
    let stats = phoenix_obs::StatsSnapshot::decode(&snapshot).unwrap();
    assert!(
        stats
            .counter("phoenix_connections_accepted_total")
            .is_some_and(|v| v >= 1),
        "server-side counters must appear in the wire snapshot"
    );

    h.shutdown();
}
