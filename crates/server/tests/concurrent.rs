//! Concurrency tests for the server: sessions must execute simultaneously,
//! the crash switch must fail every live connection atomically, and the two
//! session-leak fixes (connection registry, relogin) must hold.

use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Outcome, Request, Response};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "phoenix-concurrent-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn connect(h: &ServerHarness) -> TcpStream {
    let s = TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

fn call(s: &mut TcpStream, req: Request) -> Response {
    try_call(s, req).unwrap()
}

fn try_call(s: &mut TcpStream, req: Request) -> std::io::Result<Response> {
    write_frame(s, &req.encode()).map_err(|e| std::io::Error::other(e.to_string()))?;
    let payload = read_frame(s).map_err(|e| std::io::Error::other(e.to_string()))?;
    Response::decode(&payload).map_err(|e| std::io::Error::other(e.to_string()))
}

fn login(s: &mut TcpStream) {
    match call(
        s,
        Request::Login {
            user: "t".into(),
            database: "d".into(),
            options: vec![],
        },
    ) {
        Response::LoginAck { .. } => {}
        other => panic!("login failed: {other:?}"),
    }
}

fn exec(s: &mut TcpStream, sql: &str) -> Response {
    call(s, Request::Exec { sql: sql.into() })
}

fn exec_ok(s: &mut TcpStream, sql: &str) {
    match exec(s, sql) {
        Response::Result { .. } => {}
        other => panic!("{sql}: {other:?}"),
    }
}

fn count(s: &mut TcpStream, sql: &str) -> i64 {
    match exec(s, sql) {
        Response::Result {
            outcome: Outcome::ResultSet { rows, .. },
            ..
        } => match rows[0][0] {
            phoenix_storage::types::Value::Int(n) => n,
            ref other => panic!("not an int: {other:?}"),
        },
        other => panic!("{sql}: {other:?}"),
    }
}

/// Seed `rows` rows into table `t` in batches.
fn seed_rows(s: &mut TcpStream, table: &str, rows: usize) {
    exec_ok(s, &format!("CREATE TABLE {table} (v INT)"));
    let mut batch = Vec::with_capacity(200);
    for i in 0..rows {
        batch.push(format!("({i})"));
        if batch.len() == 200 || i + 1 == rows {
            exec_ok(
                s,
                &format!("INSERT INTO {table} VALUES {}", batch.join(", ")),
            );
            batch.clear();
        }
    }
}

/// Acceptance: session B executes and completes while session A is inside a
/// long-running statement. A runs a self-join whose size is escalated until
/// the overlap is actually observed, so the test is robust on fast machines
/// without a fixed sleep.
#[test]
fn second_session_progresses_during_long_statement() {
    let dir = temp_dir("overlap");
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();

    let mut admin = connect(&h);
    login(&mut admin);
    exec_ok(&mut admin, "CREATE TABLE pings (v INT)");

    let mut overlap_seen = false;
    for (attempt, rows) in [600usize, 1200, 2400].into_iter().enumerate() {
        let table = format!("big{attempt}");
        seed_rows(&mut admin, &table, rows);

        // A: long statement on its own session/connection. A publishes the
        // instant its statement actually hits the wire so B's completions
        // can be compared against the real execution window (not against
        // A's connect/login time).
        let addr = h.addr();
        let sql = format!("SELECT COUNT(*) FROM {table} a, {table} b WHERE a.v = b.v");
        let a_started = Instant::now();
        let exec_start_ns = Arc::new(AtomicU64::new(0));
        let publish = Arc::clone(&exec_start_ns);
        let slow = std::thread::spawn(move || {
            let mut a = TcpStream::connect(addr).unwrap();
            a.set_nodelay(true).unwrap();
            login(&mut a);
            publish.store(a_started.elapsed().as_nanos() as u64, Ordering::SeqCst);
            let t0 = Instant::now();
            let resp = exec(&mut a, &sql);
            assert!(matches!(resp, Response::Result { .. }), "{resp:?}");
            t0.elapsed()
        });

        // B: quick inserts on a different session while A grinds.
        let mut b_done_at = Vec::new();
        for i in 0..30 {
            exec_ok(&mut admin, &format!("INSERT INTO pings VALUES ({i})"));
            b_done_at.push(a_started.elapsed());
        }
        let a_elapsed = slow.join().unwrap();
        let a_window_start = Duration::from_nanos(exec_start_ns.load(Ordering::SeqCst));
        let a_window_end = a_window_start + a_elapsed;

        // Overlap is proven if any of B's statements completed strictly
        // inside A's execution window.
        if b_done_at
            .iter()
            .any(|t| *t > a_window_start && *t < a_window_end)
        {
            overlap_seen = true;
            break;
        }
        // A finished before B even got going — escalate the join size.
    }
    assert!(
        overlap_seen,
        "session B never completed a statement while session A was executing"
    );

    drop(admin);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Smoke: many client threads, one session each, all inserting into a shared
/// table concurrently; nothing is lost and nothing deadlocks.
#[test]
fn concurrent_clients_smoke() {
    let dir = temp_dir("smoke");
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();

    let mut admin = connect(&h);
    login(&mut admin);
    exec_ok(
        &mut admin,
        "CREATE TABLE acc (k INT NOT NULL, PRIMARY KEY (k))",
    );

    const THREADS: usize = 8;
    const EACH: usize = 25;
    let addr = h.addr();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                login(&mut s);
                for i in 0..EACH {
                    let k = t * EACH + i;
                    exec_ok(&mut s, &format!("INSERT INTO acc VALUES ({k})"));
                }
                call(&mut s, Request::Logout);
            })
        })
        .collect();
    for hnd in handles {
        hnd.join().unwrap();
    }

    assert_eq!(
        count(&mut admin, "SELECT COUNT(*) FROM acc"),
        (THREADS * EACH) as i64
    );
    drop(admin);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Acceptance: a crash in the middle of concurrent write load (a) fails every
/// live connection, and (b) recovers to a consistent state — every
/// acknowledged insert survives, nothing beyond what was attempted appears,
/// and the count is stable across a second restart.
#[test]
fn crash_under_concurrent_load_recovers_consistently() {
    let dir = temp_dir("crashload");
    let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();

    let mut admin = connect(&h);
    login(&mut admin);
    exec_ok(
        &mut admin,
        "CREATE TABLE load (k INT NOT NULL, PRIMARY KEY (k))",
    );
    call(&mut admin, Request::Logout);
    drop(admin);

    const WRITERS: usize = 4;
    let acked = Arc::new(AtomicU64::new(0));
    let attempted = Arc::new(AtomicU64::new(0));
    let addr = h.addr();

    let handles: Vec<_> = (0..WRITERS)
        .map(|t| {
            let addr = addr.clone();
            let acked = Arc::clone(&acked);
            let attempted = Arc::clone(&attempted);
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                s.set_nodelay(true).unwrap();
                login(&mut s);
                // Insert distinct keys until the crash kills the connection.
                for i in 0u64.. {
                    let k = (t as u64) * 1_000_000 + i;
                    attempted.fetch_add(1, Ordering::SeqCst);
                    match try_call(
                        &mut s,
                        Request::Exec {
                            sql: format!("INSERT INTO load VALUES ({k})"),
                        },
                    ) {
                        Ok(Response::Result { .. }) => {
                            acked.fetch_add(1, Ordering::SeqCst);
                        }
                        // Server answered with an error (request raced the
                        // crash switch) or the socket died: either way this
                        // connection has observed the crash.
                        Ok(_) | Err(_) => return true,
                    }
                }
                unreachable!()
            })
        })
        .collect();

    // Let the writers build up some load, then pull the plug.
    while acked.load(Ordering::SeqCst) < 40 {
        std::thread::sleep(Duration::from_millis(1));
    }
    h.crash().unwrap();

    // Every live connection must observe the failure.
    for hnd in handles {
        assert!(hnd.join().unwrap(), "a writer never observed the crash");
    }
    let acked = acked.load(Ordering::SeqCst) as i64;
    let attempted = attempted.load(Ordering::SeqCst) as i64;

    // Recover and audit.
    h.restart().unwrap();
    let mut s = connect(&h);
    login(&mut s);
    let recovered = count(&mut s, "SELECT COUNT(*) FROM load");
    assert!(
        recovered >= acked,
        "recovered {recovered} rows but {acked} inserts were acknowledged"
    );
    assert!(
        recovered <= attempted,
        "recovered {recovered} rows but only {attempted} inserts were attempted"
    );
    call(&mut s, Request::Logout);
    drop(s);

    // A second crash/restart cycle must not change the count (consistency).
    h.crash().unwrap();
    h.restart().unwrap();
    let mut s = connect(&h);
    login(&mut s);
    assert_eq!(count(&mut s, "SELECT COUNT(*) FROM load"), recovered);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression (connection-registry leak): the registry entry for a client
/// must disappear when the client goes away, not accumulate forever.
#[test]
fn connection_registry_prunes_dead_clients() {
    let dir = temp_dir("prune");
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();

    let mut keep = connect(&h);
    login(&mut keep);

    for _ in 0..5 {
        let mut s = connect(&h);
        login(&mut s);
        call(&mut s, Request::Logout);
        drop(s);
    }

    // The five dead clients must be pruned (poll — teardown is async).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let n = h.connection_count().unwrap();
        if n == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "registry still holds {n} entries"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The surviving connection still works.
    exec_ok(&mut keep, "CREATE TABLE still_here (v INT)");
    drop(keep);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression (relogin leak): a second `Login` on the same connection must
/// close the first session — its temp objects die and the engine's session
/// count stays at one.
#[test]
fn relogin_closes_previous_session() {
    let dir = temp_dir("relogin");
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();

    let mut s = connect(&h);
    login(&mut s);
    exec_ok(&mut s, "CREATE TABLE #scratch (v INT)");
    assert_eq!(h.with_engine(|e| e.session_count()), Some(1));

    // Relogin on the same connection.
    login(&mut s);
    assert_eq!(
        h.with_engine(|e| e.session_count()),
        Some(1),
        "old session leaked after relogin"
    );
    // The old session's temp table died with it.
    match exec(&mut s, "SELECT * FROM #scratch") {
        Response::Err { .. } => {}
        other => panic!("temp table survived relogin: {other:?}"),
    }

    call(&mut s, Request::Logout);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}
