//! Server-layer metric handles, registered once and cached in a static.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter, Gauge};
use phoenix_wire::message::Request;

/// Cached handles for every server metric.
pub struct ServerMetrics {
    /// Client connections accepted (`phoenix_connections_accepted_total`).
    pub connections_accepted: Arc<Counter>,
    /// Connections pruned from the registry on exit
    /// (`phoenix_connections_pruned_total`).
    pub connections_pruned: Arc<Counter>,
    /// Accept-loop failures other than `WouldBlock`
    /// (`phoenix_accept_errors_total`). Each one cost a bounded backoff
    /// sleep; the listener never stops on them.
    pub accept_errors: Arc<Counter>,
    /// Registry entries reaped by the dead-connection prober
    /// (`phoenix_connections_reaped_total`): the peer vanished while its
    /// connection thread was busy or parked.
    pub connections_reaped: Arc<Counter>,
    /// Live client connections (`phoenix_connections_active`).
    pub connections_active: Arc<Gauge>,
    /// Requests currently being dispatched (`phoenix_requests_inflight`).
    pub requests_inflight: Arc<Gauge>,
    /// Frames that failed `Request::decode`
    /// (`phoenix_malformed_requests_total`). The connection survives; the
    /// client gets a `Response::Err`.
    pub malformed_requests: Arc<Counter>,
    /// Requests currently inside some connection's pipeline window — queued
    /// or executing — across all v2 connections
    /// (`phoenix_pipeline_window_depth`).
    pub pipeline_window_depth: Arc<Gauge>,
    /// Individual statements executed via `ExecBatch`
    /// (`phoenix_batch_statements_total`).
    pub batch_statements: Arc<Counter>,
    login: Arc<Counter>,
    exec: Arc<Counter>,
    open_cursor: Arc<Counter>,
    fetch: Arc<Counter>,
    close_cursor: Arc<Counter>,
    ping: Arc<Counter>,
    describe: Arc<Counter>,
    stats: Arc<Counter>,
    logout: Arc<Counter>,
    login_v2: Arc<Counter>,
    exec_batch: Arc<Counter>,
    repl_hello: Arc<Counter>,
    repl_frames: Arc<Counter>,
    promote: Arc<Counter>,
}

impl ServerMetrics {
    /// The `phoenix_requests_total{type=...}` series for a request.
    pub fn requests(&self, request: &Request) -> &Counter {
        match request {
            Request::Login { .. } => &self.login,
            Request::Exec { .. } => &self.exec,
            Request::OpenCursor { .. } => &self.open_cursor,
            Request::Fetch { .. } => &self.fetch,
            Request::CloseCursor { .. } => &self.close_cursor,
            Request::Ping => &self.ping,
            Request::Describe { .. } => &self.describe,
            Request::Stats => &self.stats,
            Request::Logout => &self.logout,
            Request::LoginV2 { .. } => &self.login_v2,
            Request::ExecBatch { .. } => &self.exec_batch,
            Request::ReplHello { .. } => &self.repl_hello,
            Request::ReplFrames { .. } => &self.repl_frames,
            Request::Promote { .. } => &self.promote,
        }
    }
}

/// The server metric set, registered on first use.
pub fn server_metrics() -> &'static ServerMetrics {
    static M: OnceLock<ServerMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        let req = |t: &str| {
            r.counter_with(
                "phoenix_requests_total",
                "requests dispatched by type",
                &[("type", t)],
            )
        };
        ServerMetrics {
            connections_accepted: r.counter(
                "phoenix_connections_accepted_total",
                "client connections accepted",
            ),
            connections_pruned: r.counter(
                "phoenix_connections_pruned_total",
                "client connections pruned from the registry on exit",
            ),
            accept_errors: r.counter(
                "phoenix_accept_errors_total",
                "accept-loop failures answered with bounded backoff",
            ),
            connections_reaped: r.counter(
                "phoenix_connections_reaped_total",
                "dead client connections reaped by the liveness prober",
            ),
            connections_active: r.gauge("phoenix_connections_active", "live client connections"),
            requests_inflight: r.gauge(
                "phoenix_requests_inflight",
                "requests currently being dispatched",
            ),
            malformed_requests: r.counter(
                "phoenix_malformed_requests_total",
                "frames that failed request decoding (connection kept alive)",
            ),
            pipeline_window_depth: r.gauge(
                "phoenix_pipeline_window_depth",
                "requests queued or executing inside v2 pipeline windows",
            ),
            batch_statements: r.counter(
                "phoenix_batch_statements_total",
                "individual statements executed via ExecBatch",
            ),
            login: req("login"),
            exec: req("exec"),
            open_cursor: req("open_cursor"),
            fetch: req("fetch"),
            close_cursor: req("close_cursor"),
            ping: req("ping"),
            describe: req("describe"),
            stats: req("stats"),
            logout: req("logout"),
            login_v2: req("login_v2"),
            exec_batch: req("exec_batch"),
            repl_hello: req("repl_hello"),
            repl_frames: req("repl_frames"),
            promote: req("promote"),
        }
    })
}
