#![warn(missing_docs)]

//! # phoenix-server
//!
//! The TCP database server over [`phoenix_engine`], plus the crash-injection
//! harness used by tests and benchmarks.
//!
//! * [`server`] — thread-per-connection request/response loop. A connection
//!   owns one engine session; losing the connection (for any reason) closes
//!   the session, destroying its temp tables — the property Phoenix's
//!   liveness probe tests.
//! * [`harness`] — [`harness::ServerHarness`]: `start()` / `crash()` /
//!   `restart()` / `shutdown()`. `crash()` is deliberately brutal: client
//!   sockets are severed *before* the engine is dropped, so a request that
//!   committed but had not yet been answered loses its reply — reproducing
//!   the paper's lost-message failure mode. Nothing survives a crash except
//!   the data directory; `restart()` runs real WAL recovery.
//! * [`metrics`] — server-layer counters and gauges (connections, requests
//!   by type, malformed frames), registered in the process-wide
//!   [`phoenix_obs`] registry.
//! * [`stats_http`] — [`stats_http::StatsListener`]: a minimal HTTP/1.0
//!   endpoint serving the registry's Prometheus-style text exposition,
//!   independent of the database protocol.

pub mod harness;
pub mod metrics;
pub mod server;
pub mod stats_http;

pub use harness::ServerHarness;
pub use server::{dispatch, login_v2, prune_dead, serve_connection, ConnRegistry, RunningServer};
pub use stats_http::StatsListener;
