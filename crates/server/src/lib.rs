#![warn(missing_docs)]

//! # phoenix-server
//!
//! The TCP database server over [`phoenix_engine`], plus the crash-injection
//! harness used by tests and benchmarks.
//!
//! * [`server`] — thread-per-connection request/response loop. A connection
//!   owns one engine session; losing the connection (for any reason) closes
//!   the session, destroying its temp tables — the property Phoenix's
//!   liveness probe tests.
//! * [`harness`] — [`harness::ServerHarness`]: `start()` / `crash()` /
//!   `restart()` / `shutdown()`. `crash()` is deliberately brutal: client
//!   sockets are severed *before* the engine is dropped, so a request that
//!   committed but had not yet been answered loses its reply — reproducing
//!   the paper's lost-message failure mode. Nothing survives a crash except
//!   the data directory; `restart()` runs real WAL recovery.

pub mod harness;
pub mod server;

pub use harness::ServerHarness;
pub use server::{serve_connection, RunningServer};
