//! A minimal HTTP/1.0 exposition endpoint for the metrics registry.
//!
//! This is not a web server: it answers **every** request on its port with
//! `200 OK` and the Prometheus-style text rendering of the process-wide
//! registry, which is exactly what `curl` and a Prometheus scraper need and
//! nothing more. It lives on its own port (`--stats-port` on the server
//! binary) so observability traffic never competes with, or depends on, the
//! database protocol itself — stats stay reachable even if the engine is
//! wedged, precisely when they matter most.

use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use phoenix_obs::registry;

/// A running stats listener. Dropping it stops the accept thread.
pub struct StatsListener {
    /// The TCP port being listened on.
    pub port: u16,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StatsListener {
    /// Start serving the registry's text exposition on 127.0.0.1:`port`
    /// (0 = ephemeral).
    pub fn start(port: u16) -> io::Result<StatsListener> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name(format!("phx-stats-{port}"))
            .spawn(move || serve(listener, flag))?;
        Ok(StatsListener {
            port,
            shutdown,
            thread: Some(thread),
        })
    }
}

impl Drop for StatsListener {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve(listener: TcpListener, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Drain whatever request line/headers arrived (best effort,
                // bounded) and answer unconditionally.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut scratch = [0u8; 4096];
                let _ = stream.read(&mut scratch);
                let body = registry().render_text();
                let response = format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    #[test]
    fn serves_registry_text_over_http() {
        // Touch a metric so the body is non-empty.
        registry()
            .counter("phoenix_stats_http_test_total", "test probe")
            .inc();
        let listener = StatsListener::start(0).unwrap();
        let mut stream = TcpStream::connect(("127.0.0.1", listener.port)).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK"), "{body}");
        assert!(body.contains("phoenix_stats_http_test_total"), "{body}");
    }
}
