//! The TCP request/response server.
//!
//! One OS thread per client connection, one engine session per connection.
//! The engine itself is internally synchronized (per-session locks,
//! copy-on-write store snapshots for reads, group commit), so connections
//! execute **concurrently**: dispatch takes a short shared lock only to
//! clone the engine handle, then runs the request with no global lock held.
//! Reads execute against atomically published snapshots without locking the
//! store at all — session B makes progress while session A sits in a long
//! fetch, and a queued writer never stalls new readers.
//!
//! The `Option` inside [`SharedEngine`] is the crash switch:
//! [`crate::harness::ServerHarness::crash`] takes the engine out atomically,
//! after which every request on every connection fails exactly as if the
//! process had died. Requests already executing finish against their cloned
//! handle, but their replies are lost — the harness severs every socket
//! before throwing the switch, which is precisely the lost-reply window the
//! paper's reply-buffer mechanism exists for.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use phoenix_engine::{cursor, Engine, EngineError, ErrorCode, ExecOutcome, SessionId};
use phoenix_obs::StatsSnapshot;
use phoenix_wire::frame::{read_frame, read_tagged_frame, write_frame, FrameError};
use phoenix_wire::message::{
    BatchItem, CursorKind, FetchDir, Outcome, Request, Response, DEFAULT_WINDOW, PROTOCOL_V2,
};

use crate::metrics::server_metrics;

/// Shared handle to the (possibly crashed) engine. The outer lock is held
/// only long enough to clone the inner `Arc` (dispatch) or to `take()` it
/// (crash); request execution never holds it.
pub type SharedEngine = Arc<RwLock<Option<Arc<Engine>>>>;

/// Registry of live client streams, keyed by connection id so each
/// connection can prune its own entry when it exits. Public so alternate
/// front-ends (the sessiond reactor) can share the sever-on-crash and
/// reap-dead-connections machinery.
pub type ConnRegistry = Arc<Mutex<HashMap<u64, TcpStream>>>;

/// Liveness-probe a registered stream without consuming data: a one-byte
/// `recv(MSG_PEEK | MSG_DONTWAIT)` returning 0 means the peer performed an
/// orderly shutdown; an error other than `WouldBlock`/`Interrupted` means the
/// socket is broken. Crucially this never toggles `set_nonblocking` on the
/// shared fd — that would poison the owning connection thread's blocking
/// read — and `MSG_PEEK` leaves any pending request bytes in place.
#[cfg(target_os = "linux")]
fn stream_is_dead(stream: &TcpStream) -> bool {
    use std::os::fd::AsRawFd;
    const MSG_PEEK: i32 = 2;
    const MSG_DONTWAIT: i32 = 0x40;
    extern "C" {
        fn recv(fd: i32, buf: *mut u8, len: usize, flags: i32) -> isize;
    }
    let mut byte = 0u8;
    let n = unsafe {
        recv(
            stream.as_raw_fd(),
            &mut byte as *mut u8,
            1,
            MSG_PEEK | MSG_DONTWAIT,
        )
    };
    match n {
        0 => true, // EOF: peer closed while we weren't reading
        n if n > 0 => false,
        _ => !matches!(
            io::Error::last_os_error().kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
        ),
    }
}

/// Portable fallback: without a non-destructive peek we cannot tell a quiet
/// peer from a dead one, so never reap (the connection thread still prunes
/// itself the moment its blocking read returns).
#[cfg(not(target_os = "linux"))]
fn stream_is_dead(_stream: &TcpStream) -> bool {
    false
}

/// Reap registry entries whose peer has vanished. Returns how many were
/// reaped. This is what lets a *quiet* listener notice dead clients: a
/// connection whose thread is parked inside a long dispatch (or whose
/// client died without a FIN reaching the blocking read) stays registered
/// until something probes it. The reaped stream is also shut down so the
/// owning thread's next read/write fails fast and it exits normally.
pub fn prune_dead(conns: &ConnRegistry) -> usize {
    let mut conns = conns.lock();
    let dead: Vec<u64> = conns
        .iter()
        .filter(|(_, s)| stream_is_dead(s))
        .map(|(id, _)| *id)
        .collect();
    for id in &dead {
        if let Some(s) = conns.remove(id) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
    if !dead.is_empty() {
        server_metrics().connections_reaped.add(dead.len() as u64);
    }
    dead.len()
}

/// A running server: listener thread + connection registry.
pub struct RunningServer {
    /// The engine behind the crash switch (None once crashed).
    pub engine: SharedEngine,
    /// The TCP port being listened on.
    pub port: u16,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Clones of every live client stream so a crash can sever them.
    conns: ConnRegistry,
}

impl RunningServer {
    /// Start listening on 127.0.0.1:`port` (0 = ephemeral). The engine is
    /// supplied by the caller (the harness owns open/recover).
    pub fn start(engine: Engine, port: u16) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let port = listener.local_addr()?.port();

        let engine: SharedEngine = Arc::new(RwLock::new(Some(Arc::new(engine))));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(HashMap::new()));

        let accept_engine = Arc::clone(&engine);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name(format!("phx-accept-{port}"))
            .spawn(move || {
                accept_loop(listener, accept_engine, accept_shutdown, accept_conns);
            })?;

        Ok(RunningServer {
            engine,
            port,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// Number of live client connections currently registered.
    pub fn connection_count(&self) -> usize {
        self.conns.lock().len()
    }

    /// Reap registry entries whose peer has vanished (see [`prune_dead`]).
    pub fn prune_dead_conns(&self) -> usize {
        prune_dead(&self.conns)
    }

    /// A clone of the connection-registry handle, for external probers
    /// (the sessiond cleanup job prunes through this).
    pub fn conns_handle(&self) -> ConnRegistry {
        Arc::clone(&self.conns)
    }

    /// Sever every client connection immediately.
    pub fn sever_connections(&self) {
        let mut conns = self.conns.lock();
        for (_, c) in conns.drain() {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Stop accepting, sever connections, and return the engine (if it has
    /// not already been crashed away).
    pub fn stop(mut self) -> Option<Arc<Engine>> {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.sever_connections();
        self.engine.write().take()
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.sever_connections();
    }
}

fn accept_loop(
    listener: TcpListener,
    engine: SharedEngine,
    shutdown: Arc<AtomicBool>,
    conns: ConnRegistry,
) {
    let mut next_conn: u64 = 1;
    // Backoff for *non*-WouldBlock accept failures (EMFILE/ENFILE/ENOBUFS,
    // aborted handshakes). These are transient resource conditions, not
    // reasons to stop listening: breaking out of the loop here would turn a
    // momentary fd-exhaustion spike into a permanently deaf server. Sleep
    // with bounded exponential backoff instead — long enough for the kernel
    // (or our own connection churn) to release resources, short enough that
    // service resumes promptly — and reset to the floor on any success.
    const BACKOFF_FLOOR: Duration = Duration::from_millis(1);
    const BACKOFF_CEIL: Duration = Duration::from_millis(100);
    let mut backoff = BACKOFF_FLOOR;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = BACKOFF_FLOOR;
                let _ = stream.set_nodelay(true);
                let conn_id = next_conn;
                next_conn += 1;
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().insert(conn_id, clone);
                }
                let m = server_metrics();
                m.connections_accepted.inc();
                m.connections_active.inc();
                let engine = Arc::clone(&engine);
                let conns = Arc::clone(&conns);
                let _ = std::thread::Builder::new()
                    .name("phx-conn".into())
                    .spawn(move || {
                        serve_connection(stream, engine);
                        // Prune this connection's registry entry; after a
                        // sever the entry is already gone, which is fine.
                        conns.lock().remove(&conn_id);
                        let m = server_metrics();
                        m.connections_pruned.inc();
                        m.connections_active.dec();
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                server_metrics().accept_errors.inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CEIL);
            }
        }
    }
}

/// Serve one client connection until logout, client disconnect, or crash.
pub fn serve_connection(mut stream: TcpStream, engine: SharedEngine) {
    let mut session: Option<SessionId> = None;

    // (clippy suggests `while let`, but the explicit break keeps the
    // "client gone or socket severed" exit path annotated.)
    #[allow(clippy::while_let_loop)]
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => break, // client gone or socket severed
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A garbage payload inside a well-formed frame is the
                // client's bug, not a transport failure: the frame layer has
                // preserved message boundaries, so the stream is still in
                // sync. Answer with a clean error and keep serving instead
                // of killing the connection (and with it the session's temp
                // tables and cursors).
                server_metrics().malformed_requests.inc();
                if send(
                    &mut stream,
                    &Response::Err {
                        code: ErrorCode::Parse as u16,
                        message: format!("malformed request: {e}"),
                    },
                )
                .is_err()
                {
                    break;
                }
                continue;
            }
        };

        let m = server_metrics();
        m.requests(&request).inc();

        // A LoginV2 upgrades this connection to pipelined v2 mode for the
        // rest of its lifetime. On a negotiation failure (e.g. the client
        // asked for a version this server cannot speak) the connection stays
        // in the v1 loop so the client can retry with a plain Login.
        if let Request::LoginV2 {
            user,
            database: _,
            options,
            protocol,
            window,
        } = request
        {
            match login_v2(&engine, &mut session, &user, options, protocol, window) {
                Ok((ack, granted)) => {
                    if send(&mut stream, &ack).is_err() {
                        break;
                    }
                    serve_pipelined(&mut stream, &engine, &mut session, granted);
                    break;
                }
                Err(rsp) => {
                    if send(&mut stream, &rsp).is_err() {
                        break;
                    }
                    continue;
                }
            }
        }

        let logout = matches!(request, Request::Logout);
        m.requests_inflight.inc();
        let response = dispatch(&engine, &mut session, request);
        m.requests_inflight.dec();
        if send(&mut stream, &response).is_err() {
            break; // reply lost — the paper's lost-message case
        }
        if logout {
            break;
        }
    }

    // Connection teardown kills the session (temp tables die with it). Clone
    // the handle out so the crash switch is never held across the close.
    if let Some(sid) = session {
        let eng = engine.read().clone();
        if let Some(eng) = eng {
            let _ = eng.close_session(sid);
        }
    }
}

/// Negotiate a v2 login. On success returns the ack to send (untagged — the
/// handshake itself is still v1-framed) and the granted window. Public so
/// the sessiond reactor's executors can run the identical negotiation.
pub fn login_v2(
    engine: &SharedEngine,
    session: &mut Option<SessionId>,
    user: &str,
    options: Vec<(String, phoenix_storage::types::Value)>,
    protocol: u32,
    window: u32,
) -> Result<(Response, u32), Response> {
    let eng = engine.read().clone().ok_or(Response::Err {
        code: ErrorCode::NoSession as u16,
        message: "server unavailable".into(),
    })?;
    if protocol < PROTOCOL_V2 {
        // A LoginV2 advertising v1 is contradictory; tell the client to use
        // the v1 handshake, which is what a fallback client does anyway.
        return Err(Response::Err {
            code: ErrorCode::Unsupported as u16,
            message: format!("protocol v{protocol} must use a v1 Login"),
        });
    }
    let sid = create_session_with_options(&eng, session, user, options)?;
    // The server never grants more than DEFAULT_WINDOW regardless of the ask,
    // and never less than 1 (a zero window could make no progress).
    let granted = window.clamp(1, DEFAULT_WINDOW);
    Ok((
        Response::LoginAckV2 {
            session: sid,
            protocol: PROTOCOL_V2,
            window: granted,
        },
        granted,
    ))
}

/// Serve a connection in pipelined v2 mode: tagged frames are read,
/// executed strictly in arrival order, and answered with tagged replies —
/// all on this thread.
///
/// There is deliberately no reader thread. With an empty window (the
/// sequential ping-pong shape) each request is dequeued straight off the
/// socket with zero cross-thread handoff — the handoff's two scheduler
/// wake-ups per request are exactly what made 1-client pipelined slower
/// than 1-client sequential. When the client keeps the window full, the
/// kernel socket buffer holds the in-flight tail of the window (the
/// negotiated window bounds how many small tagged frames a client puts in
/// flight, comfortably inside the receive buffer) and each loop iteration
/// drains one request from it with the same zero-handoff read.
fn serve_pipelined(
    stream: &mut TcpStream,
    engine: &SharedEngine,
    session: &mut Option<SessionId>,
    window: u32,
) {
    debug_assert!(window >= 1);
    let m = server_metrics();
    // The read error that ends the loop is the client hanging up or the
    // socket being severed.
    while let Ok((tag, payload)) = read_tagged_frame(stream) {
        let req = Request::decode(&payload).map_err(|e| e.to_string());
        m.pipeline_window_depth.inc();
        // The moment a queued request is picked up for execution. Crashing
        // here models dying with a full reply window: earlier tags may have
        // committed and replied, this tag and everything behind it is lost.
        match phoenix_chaos::fault("server.pipeline_dequeue") {
            phoenix_chaos::FaultAction::Continue | phoenix_chaos::FaultAction::Crash => {}
            phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
            phoenix_chaos::FaultAction::IoError | phoenix_chaos::FaultAction::Torn(_) => {
                m.pipeline_window_depth.dec();
                break;
            }
        }
        let (response, logout) = match req {
            Ok(request) => {
                let logout = matches!(request, Request::Logout);
                m.requests(&request).inc();
                m.requests_inflight.inc();
                let r = dispatch(engine, session, request);
                m.requests_inflight.dec();
                (r, logout)
            }
            Err(e) => {
                // Same contract as the v1 loop: a malformed message inside a
                // well-formed frame gets an error reply, not a hangup.
                m.malformed_requests.inc();
                (
                    Response::Err {
                        code: ErrorCode::Parse as u16,
                        message: format!("malformed request: {e}"),
                    },
                    false,
                )
            }
        };
        m.pipeline_window_depth.dec();
        if send_tagged(stream, tag, &response).is_err() {
            break; // tagged reply lost mid-window
        }
        if logout {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn send(stream: &mut TcpStream, response: &Response) -> Result<(), FrameError> {
    send_bytes(stream, &response.encode())
}

/// Send a tagged (v2) reply: the tag is part of the frame payload, so the
/// fault-injection path below tears tagged frames exactly like v1 frames.
fn send_tagged(stream: &mut TcpStream, tag: u64, response: &Response) -> Result<(), FrameError> {
    let body = response.encode();
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&tag.to_le_bytes());
    payload.extend_from_slice(&body);
    send_bytes(stream, &payload)
}

fn send_bytes(stream: &mut TcpStream, bytes: &[u8]) -> Result<(), FrameError> {
    // Once a fatal fault has fired, this server incarnation is "dead": no
    // reply may escape, not even an error reply from a request thread that
    // observed the injected failure — a crashed process emits nothing. One
    // relaxed load when chaos is disarmed.
    if phoenix_chaos::halted() {
        return Err(FrameError::Io(phoenix_chaos::injected_error(
            "server.reply_send",
        )));
    }
    match phoenix_chaos::fault("server.reply_send") {
        phoenix_chaos::FaultAction::Continue => {}
        phoenix_chaos::FaultAction::Delay(d) => std::thread::sleep(d),
        // The exactly-once window: the statement executed and committed,
        // but its reply never reaches the client.
        phoenix_chaos::FaultAction::Crash | phoenix_chaos::FaultAction::IoError => {
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "server.reply_send",
            )));
        }
        // Die mid-send: the client sees a half-written response frame.
        phoenix_chaos::FaultAction::Torn(n) => {
            use std::io::Write;
            let mut framed = Vec::with_capacity(bytes.len() + 4);
            framed.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            framed.extend_from_slice(bytes);
            let n = n.min(framed.len() - 1);
            let _ = stream.write_all(&framed[..n]);
            let _ = stream.flush();
            return Err(FrameError::Io(phoenix_chaos::injected_error(
                "server.reply_send",
            )));
        }
    }
    write_frame(stream, bytes)
}

/// Execute one request against the engine and produce its response. Public
/// so the sessiond reactor's executors share the exact request semantics of
/// the thread-per-connection server.
pub fn dispatch(
    engine: &SharedEngine,
    session: &mut Option<SessionId>,
    request: Request,
) -> Response {
    // Take a short shared lock to clone the engine handle, then execute with
    // no global lock held — other connections proceed concurrently.
    let eng = match engine.read().clone() {
        Some(e) => e,
        None => {
            // Crashed: every request fails. The socket will be severed by the
            // harness moments later; answering here keeps the failure mode
            // deterministic for requests that race the crash.
            return Response::Err {
                code: ErrorCode::NoSession as u16,
                message: "server unavailable".into(),
            };
        }
    };

    match request {
        // Ping is answered even without a session — it is the recovery probe.
        Request::Ping => Response::Pong,
        // Stats is likewise session-less: monitoring must not need a login.
        Request::Stats => Response::Stats {
            snapshot: StatsSnapshot::capture().encode(),
        },
        Request::Login {
            user,
            database: _,
            options,
        } => match create_session_with_options(&eng, session, &user, options) {
            Ok(sid) => Response::LoginAck { session: sid },
            Err(rsp) => rsp,
        },
        // The v2 handshake is handled at the connection layer (it changes the
        // framing mode); reaching dispatch means it arrived mid-pipeline.
        Request::LoginV2 { .. } => Response::Err {
            code: ErrorCode::Unsupported as u16,
            message: "connection is already in pipelined mode".into(),
        },
        Request::Logout => {
            if let Some(sid) = session.take() {
                let _ = eng.close_session(sid);
            }
            Response::Bye
        }
        Request::Exec { sql } => {
            let Some(sid) = *session else {
                return no_session();
            };
            match eng.execute(sid, &sql) {
                Ok(result) => Response::Result {
                    outcome: outcome_of(result.outcome),
                    messages: result.messages,
                },
                Err(e) => err_of(e),
            }
        }
        Request::ExecBatch { stmts } => {
            let Some(sid) = *session else {
                return no_session();
            };
            // Per-statement outcomes in one reply. Execution stops at the
            // first failing statement — its error is the last item, and the
            // item count tells the client exactly how far the batch got
            // (statements after it were never attempted).
            let m = server_metrics();
            let mut items = Vec::with_capacity(stmts.len());
            for sql in &stmts {
                m.batch_statements.inc();
                match eng.execute(sid, sql) {
                    Ok(result) => items.push(BatchItem::Ok {
                        outcome: outcome_of(result.outcome),
                        messages: result.messages,
                    }),
                    Err(e) => {
                        items.push(BatchItem::Err {
                            code: e.code as u16,
                            message: e.message,
                        });
                        break;
                    }
                }
            }
            Response::BatchResult { items }
        }
        Request::OpenCursor { sql, kind } => {
            let Some(sid) = *session else {
                return no_session();
            };
            let select = match phoenix_sql::parse_statement(&sql) {
                Ok(phoenix_sql::Statement::Select(s)) => s,
                Ok(_) => {
                    return Response::Err {
                        code: ErrorCode::Unsupported as u16,
                        message: "cursors require a SELECT statement".into(),
                    }
                }
                Err(e) => {
                    return Response::Err {
                        code: ErrorCode::Parse as u16,
                        message: e.to_string(),
                    }
                }
            };
            match eng.open_cursor(sid, &select, kind_to_engine(kind)) {
                Ok((cursor, schema, granted)) => Response::CursorOpened {
                    cursor,
                    schema,
                    granted: kind_from_engine(granted),
                },
                Err(e) => err_of(e),
            }
        }
        Request::Fetch { cursor, dir, n } => {
            let Some(sid) = *session else {
                return no_session();
            };
            match eng.fetch(sid, cursor, dir_to_engine(dir), n as usize) {
                Ok(f) => Response::Rows {
                    rows: f.rows,
                    at_end: f.at_end,
                },
                Err(e) => err_of(e),
            }
        }
        Request::Describe { table } => {
            let Some(sid) = *session else {
                return no_session();
            };
            let name = match phoenix_sql::parse_statement(&format!("SELECT * FROM {table}")) {
                Ok(phoenix_sql::Statement::Select(s)) if s.from.len() == 1 => {
                    s.from[0].table.clone()
                }
                _ => {
                    return Response::Err {
                        code: ErrorCode::Parse as u16,
                        message: format!("bad table name '{table}'"),
                    }
                }
            };
            match eng.describe(sid, &name) {
                Ok((schema, primary_key)) => Response::TableInfo {
                    schema,
                    primary_key,
                },
                Err(e) => err_of(e),
            }
        }
        Request::CloseCursor { cursor } => {
            let Some(sid) = *session else {
                return no_session();
            };
            match eng.close_cursor(sid, cursor) {
                Ok(()) => Response::Result {
                    outcome: Outcome::Done,
                    messages: Vec::new(),
                },
                Err(e) => err_of(e),
            }
        }
        // Replication streams terminate at a *standby* receiver, never at a
        // serving primary: a ReplHello here means someone pointed a shipper
        // at the wrong address.
        Request::ReplHello { .. } | Request::ReplFrames { .. } => Response::Err {
            code: ErrorCode::Unsupported as u16,
            message: "this server is a primary; replication frames go to a standby".into(),
        },
        // Promote sent to a live primary is the split-brain kill switch: an
        // operator (or the failover supervisor) telling this incarnation a
        // newer primary exists. Fence it — durably — so it refuses every
        // write and login from here on, even across a restart.
        Request::Promote { epoch } => {
            if eng.fence(epoch) {
                phoenix_obs::journal().record(
                    "server",
                    phoenix_obs::EventKind::ServerLifecycle,
                    format!("fenced by Promote(epoch {epoch})"),
                );
                Response::Promoted { epoch }
            } else {
                Response::Err {
                    code: ErrorCode::Unsupported as u16,
                    message: format!(
                        "promote epoch {epoch} does not outrank this primary's epoch {}",
                        eng.epoch()
                    ),
                }
            }
        }
    }
}

/// Create a session for `user` and apply initial options, replacing any
/// existing session on the connection. A relogin replaces the session: the
/// old one is closed first so its temp objects, cursors, and any open
/// transaction are torn down instead of leaking.
fn create_session_with_options(
    eng: &Arc<Engine>,
    session: &mut Option<SessionId>,
    user: &str,
    options: Vec<(String, phoenix_storage::types::Value)>,
) -> Result<SessionId, Response> {
    // A deposed primary must not hand out sessions: every statement the
    // client ran here would be refused at the WAL anyway, and the client's
    // recovery loop should rotate to the promoted server instead. Fenced is
    // retryable by the driver's taxonomy, exactly like Busy.
    if eng.is_fenced() {
        return Err(Response::Err {
            code: ErrorCode::Fenced as u16,
            message: "server fenced: a newer primary has been promoted".into(),
        });
    }
    if let Some(old) = session.take() {
        let _ = eng.close_session(old);
    }
    // The fallible path: when a `max_sessions` cap is configured and no
    // resident session can be spilled to make room, this surfaces the
    // engine's retryable `Busy` straight over the wire.
    let sid = eng.try_create_session(user).map_err(err_of)?;
    for (name, value) in options {
        // Initial options are ordinary SETs.
        let stmt = phoenix_sql::ast::Statement::Set {
            name,
            value: value_to_literal_expr(value),
        };
        if let Err(e) = eng.execute_stmt(sid, &stmt) {
            let _ = eng.close_session(sid);
            return Err(err_of(e));
        }
    }
    *session = Some(sid);
    Ok(sid)
}

fn outcome_of(o: ExecOutcome) -> Outcome {
    match o {
        ExecOutcome::ResultSet { schema, rows } => Outcome::ResultSet { schema, rows },
        ExecOutcome::RowsAffected(n) => Outcome::RowsAffected(n),
        ExecOutcome::Done => Outcome::Done,
    }
}

fn no_session() -> Response {
    Response::Err {
        code: ErrorCode::NoSession as u16,
        message: "not logged in".into(),
    }
}

fn err_of(e: EngineError) -> Response {
    Response::Err {
        code: e.code as u16,
        message: e.message,
    }
}

fn kind_to_engine(k: CursorKind) -> cursor::CursorKind {
    match k {
        CursorKind::ForwardOnly => cursor::CursorKind::ForwardOnly,
        CursorKind::Keyset => cursor::CursorKind::Keyset,
        CursorKind::Dynamic => cursor::CursorKind::Dynamic,
    }
}

fn kind_from_engine(k: cursor::CursorKind) -> CursorKind {
    match k {
        cursor::CursorKind::ForwardOnly => CursorKind::ForwardOnly,
        cursor::CursorKind::Keyset => CursorKind::Keyset,
        cursor::CursorKind::Dynamic => CursorKind::Dynamic,
    }
}

fn dir_to_engine(d: FetchDir) -> cursor::FetchDir {
    match d {
        FetchDir::Next => cursor::FetchDir::Next,
        FetchDir::Prior => cursor::FetchDir::Prior,
        FetchDir::Absolute(k) => cursor::FetchDir::Absolute(k),
    }
}

/// Convert a wire value into a literal expression for SET replay.
fn value_to_literal_expr(v: phoenix_storage::types::Value) -> phoenix_sql::ast::Expr {
    use phoenix_sql::ast::{Expr, Literal};
    use phoenix_storage::types::Value;
    Expr::Literal(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Float(f) => Literal::Float(f),
        Value::Text(s) => Literal::String(s),
        Value::Bool(b) => Literal::Bool(b),
        Value::Date(d) => Literal::Date(phoenix_storage::types::format_date(d)),
    })
}
