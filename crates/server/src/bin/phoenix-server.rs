//! Standalone Phoenix database server.
//!
//! ```text
//! phoenix-server [--data <dir>] [--port <port>] [--buffered] [--stats-port <port>]
//! ```
//!
//! Opens (and crash-recovers) the database in the data directory, listens on
//! the given port, and serves until SIGINT/EOF on stdin. A checkpoint is
//! taken on orderly shutdown. With `--stats-port`, a second listener serves
//! Prometheus-style metrics text over HTTP on that port (`curl
//! localhost:<port>` to scrape).

use std::io::BufRead;

use phoenix_engine::{CommitMode, Engine, EngineConfig};
use phoenix_server::{RunningServer, StatsListener};
use phoenix_storage::db::Durability;

fn main() {
    let mut data_dir = std::path::PathBuf::from("./phoenix-data");
    let mut port: u16 = 54321;
    let mut stats_port: Option<u16> = None;
    let mut durability = Durability::Fsync;
    let mut partitions: Option<usize> = None;
    let mut group_commit_window_us: u64 = 0;
    let mut max_sessions: Option<usize> = None;
    let mut commit_mode = CommitMode::Async;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data" => data_dir = args.next().expect("--data needs a path").into(),
            "--partitions" => {
                partitions = Some(
                    args.next()
                        .expect("--partitions needs a number")
                        .parse()
                        .expect("bad partition count"),
                )
            }
            "--group-commit-window-us" => {
                group_commit_window_us = args
                    .next()
                    .expect("--group-commit-window-us needs a number")
                    .parse()
                    .expect("bad window")
            }
            "--port" => {
                port = args
                    .next()
                    .expect("--port needs a number")
                    .parse()
                    .expect("bad port")
            }
            "--buffered" => durability = Durability::Buffered,
            "--semi-sync" => commit_mode = CommitMode::SemiSync,
            "--max-sessions" => {
                max_sessions = Some(
                    args.next()
                        .expect("--max-sessions needs a number")
                        .parse()
                        .expect("bad session cap"),
                )
            }
            "--stats-port" => {
                stats_port = Some(
                    args.next()
                        .expect("--stats-port needs a number")
                        .parse()
                        .expect("bad stats port"),
                )
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: phoenix-server [--data <dir>] [--port <port>] [--buffered] \
                     [--stats-port <port>] [--partitions <n>] [--group-commit-window-us <us>] \
                     [--max-sessions <n>] [--semi-sync]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    let config = EngineConfig {
        durability,
        checkpoint_every: Some(100_000),
        replay_threads: None,
        partitions,
        group_commit_window_us,
        max_sessions,
        commit_mode,
    };
    eprintln!(
        "phoenix-server: opening {} (recovery may replay the log)…",
        data_dir.display()
    );
    let engine = Engine::open(&data_dir, config).unwrap_or_else(|e| {
        eprintln!("cannot open database: {e}");
        std::process::exit(1);
    });

    let server = RunningServer::start(engine, port).unwrap_or_else(|e| {
        eprintln!("cannot listen on port {port}: {e}");
        std::process::exit(1);
    });
    eprintln!("phoenix-server: listening on 127.0.0.1:{}", server.port);
    let _stats = stats_port.map(|p| {
        let listener = StatsListener::start(p).unwrap_or_else(|e| {
            eprintln!("cannot listen on stats port {p}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "phoenix-server: serving metrics on http://127.0.0.1:{}/",
            listener.port
        );
        listener
    });
    eprintln!("phoenix-server: press Enter (or close stdin) to shut down gracefully");

    // Block until stdin yields a line or closes.
    let stdin = std::io::stdin();
    let _ = stdin.lock().lines().next();

    eprintln!("phoenix-server: shutting down (checkpointing)…");
    if let Some(engine) = server.stop() {
        if let Err(e) = engine.checkpoint() {
            eprintln!("checkpoint failed: {e}");
        }
    }
    eprintln!("phoenix-server: bye");
}
