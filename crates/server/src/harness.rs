//! The crash-injection server harness.
//!
//! Fault model (matching what a machine/process failure does to a real
//! database server):
//!
//! * [`ServerHarness::crash`] — stop accepting, **sever every client socket
//!   first**, then take the engine out of the shared handle and drop it
//!   without a checkpoint. Severing before dropping means a statement that
//!   committed an instant earlier can lose its reply in flight — the exact
//!   lost-message window §3's reply-buffer mechanism exists for. All
//!   volatile state (sessions, temp tables, open cursors, in-flight
//!   transactions) is gone; only the data directory remains. Statements
//!   already executing finish against their cloned engine handle, but their
//!   replies cannot reach the client and every *subsequent* request fails —
//!   indistinguishable, from the client's side, from a dead process.
//! * [`ServerHarness::restart`] — re-open the engine from the data directory
//!   (real WAL recovery) and listen on the *same port*, so clients that keep
//!   retrying the old address eventually get through — Phoenix's reconnect
//!   loop does exactly that.
//! * [`ServerHarness::shutdown`] — graceful stop (checkpoint, then drop).

use std::io;
use std::path::{Path, PathBuf};

use phoenix_engine::{Engine, EngineConfig};

use crate::server::RunningServer;

/// Test/bench harness around a [`RunningServer`].
pub struct ServerHarness {
    data_dir: PathBuf,
    engine_config: EngineConfig,
    port: u16,
    server: Option<RunningServer>,
}

impl ServerHarness {
    /// Start a server over `data_dir` on an ephemeral port.
    pub fn start(
        data_dir: impl AsRef<Path>,
        engine_config: EngineConfig,
    ) -> io::Result<ServerHarness> {
        let data_dir = data_dir.as_ref().to_path_buf();
        let engine = Engine::open(&data_dir, engine_config.clone())
            .map_err(|e| io::Error::other(e.to_string()))?;
        let server = RunningServer::start(engine, 0)?;
        let port = server.port;
        Ok(ServerHarness {
            data_dir,
            engine_config,
            port,
            server: Some(server),
        })
    }

    /// `host:port` the server listens on (stable across crash/restart).
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The listen port (stable across crash/restart).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// The durable data directory.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Is the server currently up (not crashed)?
    pub fn is_running(&self) -> bool {
        self.server.is_some()
    }

    /// Number of live client connections the server currently tracks.
    /// `None` while crashed.
    pub fn connection_count(&self) -> Option<usize> {
        self.server.as_ref().map(|s| s.connection_count())
    }

    /// Reap registry entries whose peer has vanished (non-destructive
    /// `MSG_PEEK` probe — see [`crate::server::prune_dead`]). Returns how
    /// many were reaped; `None` while crashed. The sessiond cleanup job
    /// calls this periodically so a *quiet* listener still notices dead
    /// clients whose threads are parked inside long dispatches.
    pub fn prune_dead_conns(&self) -> Option<usize> {
        self.server.as_ref().map(|s| s.prune_dead_conns())
    }

    /// Crash the server abruptly. See the module docs for the fault model.
    ///
    /// Errors with [`io::ErrorKind::NotConnected`] if the server is already
    /// down — callers decide whether a double-crash is a test bug.
    pub fn crash(&mut self) -> io::Result<()> {
        let server = self.server.take().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotConnected,
                "crash() on a server that is not running",
            )
        })?;
        // 1. Sever client sockets — in-flight replies are lost.
        server.sever_connections();
        // 2. Take the engine out of the shared handle and drop it with no
        //    checkpoint: all volatile state dies, and every request that
        //    arrives after this instant fails. (RunningServer::stop also
        //    stops accepting.)
        let engine = server.stop();
        // 3. Drain: request threads may still hold cloned engine handles.
        //    Wait (bounded) until ours is the last one so that when a new
        //    incarnation opens the same data directory, no thread of the
        //    dead one can still touch the WAL file.
        if let Some(engine) = engine {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
            while std::sync::Arc::strong_count(&engine) > 1 && std::time::Instant::now() < deadline
            {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            drop(engine);
        }
        Ok(())
    }

    /// Restart after a crash: recover from the data directory and listen on
    /// the same port.
    pub fn restart(&mut self) -> io::Result<()> {
        assert!(self.server.is_none(), "restart() while still running");
        let engine = Engine::open(&self.data_dir, self.engine_config.clone())
            .map_err(|e| io::Error::other(e.to_string()))?;
        // The old listener is fully closed (accept thread joined in stop()),
        // so rebinding the same port succeeds immediately on Linux.
        let server = RunningServer::start(engine, self.port)?;
        debug_assert_eq!(server.port, self.port);
        self.server = Some(server);
        Ok(())
    }

    /// Graceful shutdown: checkpoint, then stop.
    pub fn shutdown(&mut self) {
        if let Some(server) = self.server.take() {
            if let Some(engine) = server.stop() {
                let _ = engine.checkpoint();
            }
        }
    }

    /// Stall the server for `d`: a background thread holds the engine's
    /// stall gate exclusively, so every in-flight and new request blocks
    /// without any socket closing — the "server busy, connection slow, or
    /// crashed?" ambiguity of paper §2. Clients with read timeouts see
    /// `Comm` timeouts; the server itself never dies.
    pub fn stall(&self, d: std::time::Duration) {
        if let Some(server) = &self.server {
            let engine = server.engine.read().clone();
            if let Some(engine) = engine {
                let started = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let flag = std::sync::Arc::clone(&started);
                std::thread::spawn(move || {
                    engine.stall_with(d, move || {
                        flag.store(true, std::sync::atomic::Ordering::SeqCst)
                    });
                });
                // Don't return until the stall is actually in effect.
                while !started.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }

    /// Direct engine access while running (test setup shortcuts). The engine
    /// is internally synchronized, so `f` gets a shared reference and runs
    /// concurrently with client requests.
    pub fn with_engine<R>(&self, f: impl FnOnce(&Engine) -> R) -> Option<R> {
        let server = self.server.as_ref()?;
        let engine = server.engine.read().clone();
        engine.map(|e| f(&e))
    }

    /// The crash-switch engine handle, for components that must survive a
    /// harness crash with a handle that goes observably dead rather than a
    /// dangling `Arc<Engine>` (the replication shipper threads through this).
    pub fn shared_engine(&self) -> Option<crate::server::SharedEngine> {
        self.server
            .as_ref()
            .map(|s| std::sync::Arc::clone(&s.engine))
    }
}

impl Drop for ServerHarness {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_wire::frame::{read_frame, write_frame};
    use phoenix_wire::message::{Outcome, Request, Response};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn temp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("phoenix-server-test-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn connect(h: &ServerHarness) -> TcpStream {
        let s = TcpStream::connect(h.addr()).unwrap();
        s.set_nodelay(true).unwrap();
        s
    }

    fn call(s: &mut TcpStream, req: Request) -> Response {
        write_frame(s, &req.encode()).unwrap();
        Response::decode(&read_frame(s).unwrap()).unwrap()
    }

    fn login(s: &mut TcpStream) {
        match call(
            s,
            Request::Login {
                user: "t".into(),
                database: "d".into(),
                options: vec![],
            },
        ) {
            Response::LoginAck { .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_to_end_over_tcp() {
        let dir = temp_dir();
        let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut s = connect(&h);
        login(&mut s);
        call(
            &mut s,
            Request::Exec {
                sql: "CREATE TABLE t (v INT)".into(),
            },
        );
        match call(
            &mut s,
            Request::Exec {
                sql: "INSERT INTO t VALUES (1), (2)".into(),
            },
        ) {
            Response::Result {
                outcome: Outcome::RowsAffected(2),
                ..
            } => {}
            other => panic!("{other:?}"),
        }
        match call(
            &mut s,
            Request::Exec {
                sql: "SELECT COUNT(*) FROM t".into(),
            },
        ) {
            Response::Result {
                outcome: Outcome::ResultSet { rows, .. },
                ..
            } => {
                assert_eq!(rows[0][0], phoenix_storage::types::Value::Int(2));
            }
            other => panic!("{other:?}"),
        }
        match call(&mut s, Request::Ping) {
            Response::Pong => {}
            other => panic!("{other:?}"),
        }
        match call(&mut s, Request::Logout) {
            Response::Bye => {}
            other => panic!("{other:?}"),
        }
        drop(s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_severs_connections_and_loses_volatile_state() {
        let dir = temp_dir();
        let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut s = connect(&h);
        login(&mut s);
        call(
            &mut s,
            Request::Exec {
                sql: "CREATE TABLE t (v INT)".into(),
            },
        );
        call(
            &mut s,
            Request::Exec {
                sql: "INSERT INTO t VALUES (7)".into(),
            },
        );
        call(
            &mut s,
            Request::Exec {
                sql: "CREATE TABLE #tmp (v INT)".into(),
            },
        );

        h.crash().unwrap();

        // The old connection is dead.
        s.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        let dead =
            write_frame(&mut s, &Request::Ping.encode()).is_err() || read_frame(&mut s).is_err();
        assert!(dead, "socket should be severed by crash");

        // A double-crash is reported, not a panic.
        assert!(h.crash().is_err());

        // And the port refuses / resets until restart.
        h.restart().unwrap();
        let mut s2 = connect(&h);
        login(&mut s2);
        // Durable data survived...
        match call(
            &mut s2,
            Request::Exec {
                sql: "SELECT COUNT(*) FROM t".into(),
            },
        ) {
            Response::Result {
                outcome: Outcome::ResultSet { rows, .. },
                ..
            } => {
                assert_eq!(rows[0][0], phoenix_storage::types::Value::Int(1));
            }
            other => panic!("{other:?}"),
        }
        // ...the temp table did not.
        match call(
            &mut s2,
            Request::Exec {
                sql: "SELECT * FROM #tmp".into(),
            },
        ) {
            Response::Err { .. } => {}
            other => panic!("{other:?}"),
        }
        drop(s2);
        h.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disconnect_closes_session_and_temp_objects() {
        let dir = temp_dir();
        let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        {
            let mut s = connect(&h);
            login(&mut s);
            call(
                &mut s,
                Request::Exec {
                    sql: "CREATE TABLE #mine (v INT)".into(),
                },
            );
            // Drop without logout — client vanished.
        }
        // Give the server a moment to notice the disconnect.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(h.with_engine(|e| e.session_count()), Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_txn_dies_in_crash() {
        let dir = temp_dir();
        let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut s = connect(&h);
        login(&mut s);
        call(
            &mut s,
            Request::Exec {
                sql: "CREATE TABLE t (v INT)".into(),
            },
        );
        call(
            &mut s,
            Request::Exec {
                sql: "INSERT INTO t VALUES (1)".into(),
            },
        );
        call(
            &mut s,
            Request::Exec {
                sql: "BEGIN".into(),
            },
        );
        call(
            &mut s,
            Request::Exec {
                sql: "DELETE FROM t".into(),
            },
        );
        h.crash().unwrap();
        h.restart().unwrap();
        let mut s2 = connect(&h);
        login(&mut s2);
        match call(
            &mut s2,
            Request::Exec {
                sql: "SELECT COUNT(*) FROM t".into(),
            },
        ) {
            Response::Result {
                outcome: Outcome::ResultSet { rows, .. },
                ..
            } => {
                assert_eq!(rows[0][0], phoenix_storage::types::Value::Int(1));
            }
            other => panic!("{other:?}"),
        }
        drop(s2);
        h.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn prune_reaps_dead_connection_while_its_thread_is_parked() {
        let dir = temp_dir();
        let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        {
            let mut s = connect(&h);
            login(&mut s);
            // Park the connection thread inside dispatch, then vanish: the
            // FIN arrives while the thread is *executing*, not reading, so
            // the registry entry lingers until something probes it.
            h.stall(Duration::from_millis(600));
            write_frame(
                &mut s,
                &Request::Exec {
                    sql: "SELECT 1".into(),
                }
                .encode(),
            )
            .unwrap();
            // Client drops without logout.
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            h.connection_count(),
            Some(1),
            "dead connection still registered while its thread is parked"
        );
        // No accept traffic, no reads — only the prober notices.
        assert_eq!(h.prune_dead_conns(), Some(1));
        assert_eq!(h.connection_count(), Some(0));
        // A live connection is never reaped by the probe.
        let mut live = connect(&h);
        std::thread::sleep(Duration::from_millis(700)); // wait out the stall
        login(&mut live);
        assert_eq!(h.prune_dead_conns(), Some(0));
        assert_eq!(h.connection_count(), Some(1));
        match call(&mut live, Request::Ping) {
            Response::Pong => {}
            other => panic!("{other:?}"),
        }
        drop(live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn multiple_concurrent_connections() {
        let dir = temp_dir();
        let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut a = connect(&h);
        let mut b = connect(&h);
        login(&mut a);
        login(&mut b);
        call(
            &mut a,
            Request::Exec {
                sql: "CREATE TABLE shared (v INT)".into(),
            },
        );
        call(
            &mut a,
            Request::Exec {
                sql: "INSERT INTO shared VALUES (1)".into(),
            },
        );
        match call(
            &mut b,
            Request::Exec {
                sql: "SELECT COUNT(*) FROM shared".into(),
            },
        ) {
            Response::Result {
                outcome: Outcome::ResultSet { rows, .. },
                ..
            } => {
                assert_eq!(rows[0][0], phoenix_storage::types::Value::Int(1));
            }
            other => panic!("{other:?}"),
        }
        // Sessions are isolated for temp objects.
        call(
            &mut a,
            Request::Exec {
                sql: "CREATE TABLE #priv (v INT)".into(),
            },
        );
        match call(
            &mut b,
            Request::Exec {
                sql: "SELECT * FROM #priv".into(),
            },
        ) {
            Response::Err { .. } => {}
            other => panic!("{other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
