//! The recovery event journal: a bounded ring buffer of timestamped events.
//!
//! Where metrics answer "how much / how fast", the journal answers "what
//! happened, in what order" — the Phoenix recovery timeline (crash detected
//! → reconnect attempts → session context re-installed → cursors and reply
//! buffers restored) is reconstructed from it by tests and by the
//! `phoenix-stats` example.
//!
//! Events are rare by construction (failures and lifecycle edges, never
//! per-statement work), so the journal uses a plain mutex. The timestamp is
//! taken *inside* the lock, which buys an invariant the metrics layer can't
//! offer: sequence numbers and timestamps are ordered consistently — if
//! `a.seq < b.seq` then `a.ts_us <= b.ts_us`, always.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::now_us;

/// Default ring capacity; old events are dropped once exceeded (the drop
/// count is retained so readers can tell the timeline is truncated).
pub const JOURNAL_CAPACITY: usize = 1024;

/// What kind of thing happened. The discriminant is stable (wire-encoded in
/// stats snapshots); add new kinds at the end only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// The client noticed the server is gone (comm failure on a live
    /// connection or a failed liveness probe).
    CrashDetected,
    /// One iteration of the reconnect backoff loop is about to dial.
    ReconnectAttempt,
    /// A reconnect dial + login succeeded.
    Reconnected,
    /// Phase 1 of recovery: session context (options, temp tables, prepared
    /// state) re-installed on the new session.
    ContextReinstalled,
    /// A cursor was re-opened and repositioned during recovery.
    CursorRestored,
    /// A statement's reply was served from the status-table/reply-buffer
    /// instead of re-executing.
    ReplyReplayed,
    /// Phase 2 of recovery: server-side state verified against client
    /// expectations.
    StateVerified,
    /// Recovery finished; the session is live again.
    RecoveryComplete,
    /// A connection was closed deliberately (clean or best-effort).
    ConnectionClose,
    /// Server-side lifecycle event (start, shutdown, prune).
    ServerLifecycle,
    /// phoenix-chaos fired a fault at a named fault point.
    FaultInjected,
    /// Anything else (also the decode fallback for kinds newer than this
    /// build).
    Other,
}

impl EventKind {
    /// Stable wire discriminant.
    pub fn as_u8(self) -> u8 {
        match self {
            EventKind::CrashDetected => 0,
            EventKind::ReconnectAttempt => 1,
            EventKind::Reconnected => 2,
            EventKind::ContextReinstalled => 3,
            EventKind::CursorRestored => 4,
            EventKind::ReplyReplayed => 5,
            EventKind::StateVerified => 6,
            EventKind::RecoveryComplete => 7,
            EventKind::ConnectionClose => 8,
            EventKind::ServerLifecycle => 9,
            EventKind::FaultInjected => 10,
            EventKind::Other => 255,
        }
    }

    /// Inverse of [`EventKind::as_u8`]; unknown values decode as
    /// [`EventKind::Other`] so old readers tolerate new writers.
    pub fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::CrashDetected,
            1 => EventKind::ReconnectAttempt,
            2 => EventKind::Reconnected,
            3 => EventKind::ContextReinstalled,
            4 => EventKind::CursorRestored,
            5 => EventKind::ReplyReplayed,
            6 => EventKind::StateVerified,
            7 => EventKind::RecoveryComplete,
            8 => EventKind::ConnectionClose,
            9 => EventKind::ServerLifecycle,
            10 => EventKind::FaultInjected,
            _ => EventKind::Other,
        }
    }

    /// Human-readable name, used by pretty printers.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::CrashDetected => "crash_detected",
            EventKind::ReconnectAttempt => "reconnect_attempt",
            EventKind::Reconnected => "reconnected",
            EventKind::ContextReinstalled => "context_reinstalled",
            EventKind::CursorRestored => "cursor_restored",
            EventKind::ReplyReplayed => "reply_replayed",
            EventKind::StateVerified => "state_verified",
            EventKind::RecoveryComplete => "recovery_complete",
            EventKind::ConnectionClose => "connection_close",
            EventKind::ServerLifecycle => "server_lifecycle",
            EventKind::FaultInjected => "fault_injected",
            EventKind::Other => "other",
        }
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Strictly increasing per journal; never reused even after eviction.
    pub seq: u64,
    /// Microseconds since the process obs epoch ([`crate::now_us`]);
    /// monotone and consistent with `seq` ordering.
    pub ts_us: u64,
    /// Which subsystem recorded it (`"driver"`, `"core"`, `"server"`, ...).
    pub component: String,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (attempt numbers, session ids, error text).
    pub detail: String,
}

struct JournalInner {
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
    capacity: usize,
}

/// A bounded, mutex-guarded ring buffer of [`Event`]s.
///
/// Most code uses the process-wide [`journal()`]; separate instances exist
/// for tests.
pub struct Journal {
    inner: Mutex<JournalInner>,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::with_capacity(JOURNAL_CAPACITY)
    }
}

impl Journal {
    /// A journal with the default capacity.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// A journal holding at most `capacity` events (older ones are evicted).
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            inner: Mutex::new(JournalInner {
                next_seq: 0,
                dropped: 0,
                buf: VecDeque::with_capacity(capacity.min(JOURNAL_CAPACITY)),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Append an event. The timestamp is taken inside the lock so `seq`
    /// order and `ts_us` order always agree.
    pub fn record(&self, component: &str, kind: EventKind, detail: impl Into<String>) {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() >= inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event {
            seq,
            ts_us: now_us(),
            component: component.to_string(),
            kind,
            detail: detail.into(),
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().unwrap().buf.iter().cloned().collect()
    }

    /// Retained events matching `kind`, oldest first.
    pub fn events_of(&self, kind: EventKind) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap()
            .buf
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Discard all retained events (tests isolate timelines with this;
    /// sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner.lock().unwrap().buf.clear();
    }
}

/// The process-wide journal, shared by driver, core, and server code living
/// in one process (the harness pattern used by the integration tests).
pub fn journal() -> &'static Journal {
    static JOURNAL: OnceLock<Journal> = OnceLock::new();
    JOURNAL.get_or_init(Journal::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_and_timestamps_are_consistent() {
        let j = Journal::new();
        for i in 0..100 {
            j.record("test", EventKind::ReconnectAttempt, format!("attempt {i}"));
        }
        let events = j.events();
        assert_eq!(events.len(), 100);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let j = Journal::with_capacity(4);
        for i in 0..10 {
            j.record("test", EventKind::Other, format!("{i}"));
        }
        let events = j.events();
        assert_eq!(events.len(), 4);
        assert_eq!(j.dropped(), 6);
        assert_eq!(events[0].detail, "6");
        assert_eq!(events[3].detail, "9");
        assert_eq!(events[3].seq, 9);
    }

    #[test]
    fn concurrent_recording_never_reorders() {
        use std::sync::Arc;
        let j = Arc::new(Journal::with_capacity(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let j = Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    j.record("test", EventKind::Other, "");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = j.events();
        assert_eq!(events.len(), 8000);
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].ts_us <= w[1].ts_us, "timestamp order broke seq order");
        }
    }

    #[test]
    fn kind_roundtrip() {
        for kind in [
            EventKind::CrashDetected,
            EventKind::ReconnectAttempt,
            EventKind::Reconnected,
            EventKind::ContextReinstalled,
            EventKind::CursorRestored,
            EventKind::ReplyReplayed,
            EventKind::StateVerified,
            EventKind::RecoveryComplete,
            EventKind::ConnectionClose,
            EventKind::ServerLifecycle,
            EventKind::FaultInjected,
            EventKind::Other,
        ] {
            assert_eq!(EventKind::from_u8(kind.as_u8()), kind);
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(EventKind::from_u8(200), EventKind::Other);
    }
}
