//! A process-wide registry of named metric families.
//!
//! The registry's mutex guards *registration and collection only*. The
//! intended pattern — used by every instrumented crate in this workspace —
//! is to register once into a `OnceLock`-cached struct of `Arc` handles:
//!
//! ```
//! use std::sync::{Arc, OnceLock};
//! use phoenix_obs::{registry, Counter};
//!
//! struct WalMetrics {
//!     appends: Arc<Counter>,
//! }
//!
//! fn wal_metrics() -> &'static WalMetrics {
//!     static M: OnceLock<WalMetrics> = OnceLock::new();
//!     M.get_or_init(|| WalMetrics {
//!         appends: registry().counter("phoenix_wal_appends_total", "WAL records appended"),
//!     })
//! }
//!
//! wal_metrics().appends.inc(); // steady state: one atomic op, no registry lock
//! ```
//!
//! After the first call the hot path touches only the atomics inside the
//! `Arc`s — the registry lock is never taken again.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A point-in-time reading of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram bucket snapshot (boxed: 64 buckets dwarf the scalar
    /// variants).
    Histogram(Box<HistogramSnapshot>),
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn read(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    metric: Metric,
}

impl Entry {
    /// `name` or `name{k="v",...}` — the identity used for idempotent
    /// registration, text exposition, and wire snapshots.
    fn key(name: &str, labels: &[(String, String)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let mut out = String::with_capacity(name.len() + 16);
        out.push_str(name);
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

#[derive(Default)]
struct Inner {
    /// Registration order, for stable exposition output.
    entries: Vec<Entry>,
    /// Full key (name + labels) → index into `entries`.
    index: HashMap<String, usize>,
}

/// A collection of named metrics with idempotent get-or-register semantics.
///
/// Most code uses the process-wide [`registry()`]; separate instances exist
/// only so unit tests can assert against a clean slate.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`registry()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_register<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: F,
        downcast: G,
    ) -> Arc<T>
    where
        F: FnOnce(Arc<T>) -> Metric,
        G: Fn(&Metric) -> Option<Arc<T>>,
        T: Default,
    {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let key = Entry::key(name, &labels);
        let mut inner = self.inner.lock().unwrap();
        if let Some(&i) = inner.index.get(&key) {
            let entry = &inner.entries[i];
            return downcast(&entry.metric).unwrap_or_else(|| {
                panic!(
                    "metric {key:?} already registered as {}",
                    entry.metric.type_name()
                )
            });
        }
        let handle = Arc::new(T::default());
        let i = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            labels,
            help: help.to_string(),
            metric: make(Arc::clone(&handle)),
        });
        inner.index.insert(key, i);
        handle
    }

    /// Get or register an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or register a counter with labels (e.g. `requests_total{type="exec"}`).
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_register(name, help, labels, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or register a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_register(name, help, labels, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Get or register an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get or register a histogram with labels (e.g. `stmt_latency_us{class="select"}`).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.get_or_register(name, help, labels, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Read every registered metric: `(key, help, value)` in registration
    /// order, where `key` is `name` or `name{k="v",...}`.
    pub fn collect(&self) -> Vec<(String, String, MetricValue)> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .map(|e| {
                (
                    Entry::key(&e.name, &e.labels),
                    e.help.clone(),
                    e.metric.read(),
                )
            })
            .collect()
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` headers once per
    /// family, histograms as cumulative `_bucket{le="..."}` series plus
    /// `_sum` (midpoint-approximate) and `_count`.
    pub fn render_text(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        let mut seen_family: HashMap<&str, ()> = HashMap::new();
        for e in inner.entries.iter() {
            if seen_family.insert(&e.name, ()).is_none() {
                out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.metric.type_name()));
            }
            let key = Entry::key(&e.name, &e.labels);
            match e.metric.read() {
                MetricValue::Counter(v) => out.push_str(&format!("{key} {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{key} {v}\n")),
                MetricValue::Histogram(s) => {
                    render_histogram(&mut out, &e.name, &e.labels, &s);
                }
            }
        }
        out
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    s: &HistogramSnapshot,
) {
    let label_prefix: String = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\","))
        .collect();
    let mut cumulative = 0u64;
    for (i, &n) in s.buckets.iter().enumerate() {
        if n == 0 && i != s.buckets.len() - 1 {
            cumulative += n;
            continue; // keep the exposition compact: skip empty interior buckets
        }
        cumulative += n;
        let le = if i == s.buckets.len() - 1 {
            "+Inf".to_string()
        } else {
            HistogramSnapshot::upper_bound(i).to_string()
        };
        out.push_str(&format!(
            "{name}_bucket{{{label_prefix}le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_sum{{{label_prefix_trim}}} {sum}\n",
        label_prefix_trim = label_prefix.trim_end_matches(','),
        sum = s.approx_sum()
    ));
    out.push_str(&format!(
        "{name}_count{{{label_prefix_trim}}} {count}\n",
        label_prefix_trim = label_prefix.trim_end_matches(','),
        count = s.count()
    ));
}

/// The process-wide registry. Both halves of an in-process client/server
/// pair (the harness pattern used across the test suite) share this, which
/// is exactly what the crash/recover integration tests want.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("c", "a counter");
        let b = r.counter("c", "a counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let sel = r.counter_with("stmts", "statements", &[("class", "select")]);
        let ins = r.counter_with("stmts", "statements", &[("class", "insert")]);
        assert!(!Arc::ptr_eq(&sel, &ins));
        sel.add(3);
        ins.add(5);
        let collected = r.collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].0, "stmts{class=\"select\"}");
        assert_eq!(collected[0].2, MetricValue::Counter(3));
        assert_eq!(collected[1].0, "stmts{class=\"insert\"}");
        assert_eq!(collected[1].2, MetricValue::Counter(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "as counter");
        let _ = r.gauge("m", "as gauge");
    }

    #[test]
    fn render_text_exposition() {
        let r = Registry::new();
        r.counter("reqs_total", "requests").add(7);
        r.gauge("inflight", "in-flight").set(2);
        let h = r.histogram_with("lat_us", "latency", &[("op", "fsync")]);
        h.record(100);
        h.record(3000);
        let text = r.render_text();
        assert!(text.contains("# HELP reqs_total requests"));
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total 7"));
        assert!(text.contains("inflight 2"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{op=\"fsync\",le=\"127\"} 1"));
        assert!(text.contains("lat_us_bucket{op=\"fsync\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_count{op=\"fsync\"} 2"));
    }

    /// Acceptance-criterion test: 8 threads hammer the registry
    /// concurrently — mixing first-registration races with steady-state
    /// recording — and every single increment must be accounted for.
    #[test]
    fn eight_thread_registry_hammer() {
        let r = Arc::new(Registry::new());
        const PER_THREAD: u64 = 25_000;
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(thread::spawn(move || {
                // Every thread races to register the same families, then
                // records through whichever Arc it got back.
                let c = r.counter("hammer_total", "hammered");
                let g = r.gauge("hammer_level", "level");
                let h = r.histogram_with("hammer_lat", "lat", &[("t", "shared")]);
                for i in 0..PER_THREAD {
                    c.inc();
                    g.inc();
                    h.record(i % 4096 + t);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(r.counter("hammer_total", "hammered").get(), 8 * PER_THREAD);
        assert_eq!(
            r.gauge("hammer_level", "level").get(),
            (8 * PER_THREAD) as i64
        );
        assert_eq!(
            r.histogram_with("hammer_lat", "lat", &[("t", "shared")])
                .count(),
            8 * PER_THREAD
        );
        // Races produced exactly three families, not duplicates.
        assert_eq!(r.collect().len(), 3);
    }
}
