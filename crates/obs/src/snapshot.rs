//! [`StatsSnapshot`]: an owned, wire-encodable picture of the process's
//! metrics and recovery journal.
//!
//! The codec is hand-rolled little-endian (same discipline as
//! `phoenix-wire`'s frame codec) so this crate stays dependency-free and the
//! wire crate can carry snapshots as opaque bytes without depending on us.

use crate::journal::{journal, Event, EventKind, Journal};
use crate::metrics::{HistogramSnapshot, BUCKETS};
use crate::registry::{registry, MetricValue, Registry};

/// Format tag so stale peers fail loudly instead of misparsing.
const MAGIC: u32 = 0x50_48_58_53; // "PHXS"
const VERSION: u8 = 1;

/// Errors from [`StatsSnapshot::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the structure did.
    Truncated,
    /// Magic or version mismatch, or a structurally impossible length.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "stats snapshot truncated"),
            DecodeError::Malformed(what) => write!(f, "stats snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A point-in-time copy of every registered metric plus the retained event
/// journal. This is what `Request::Stats` returns over the wire and what
/// the `phoenix-stats` example pretty-prints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// `(key, value)` for every counter, key = `name` or `name{k="v",...}`.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(key, buckets)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained journal events, oldest first.
    pub events: Vec<Event>,
}

impl StatsSnapshot {
    /// Capture the process-wide [`registry()`] and [`journal()`].
    pub fn capture() -> StatsSnapshot {
        StatsSnapshot::capture_from(registry(), journal())
    }

    /// Capture specific instances (tests).
    pub fn capture_from(reg: &Registry, jnl: &Journal) -> StatsSnapshot {
        let mut snap = StatsSnapshot::default();
        for (key, _help, value) in reg.collect() {
            match value {
                MetricValue::Counter(v) => snap.counters.push((key, v)),
                MetricValue::Gauge(v) => snap.gauges.push((key, v)),
                MetricValue::Histogram(h) => snap.histograms.push((key, *h)),
            }
        }
        snap.events = jnl.events();
        snap
    }

    /// Value of a counter by key, if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge by key, if present.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Histogram snapshot by key, if present.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// Encode to the versioned little-endian wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_u32(&mut out, MAGIC);
        out.push(VERSION);

        put_u32(&mut out, self.counters.len() as u32);
        for (k, v) in &self.counters {
            put_str(&mut out, k);
            put_u64(&mut out, *v);
        }
        put_u32(&mut out, self.gauges.len() as u32);
        for (k, v) in &self.gauges {
            put_str(&mut out, k);
            put_u64(&mut out, *v as u64);
        }
        put_u32(&mut out, self.histograms.len() as u32);
        for (k, h) in &self.histograms {
            put_str(&mut out, k);
            // Sparse bucket encoding: histograms are mostly empty.
            let nonzero: Vec<(u8, u64)> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n != 0)
                .map(|(i, &n)| (i as u8, n))
                .collect();
            put_u32(&mut out, nonzero.len() as u32);
            for (i, n) in nonzero {
                out.push(i);
                put_u64(&mut out, n);
            }
        }
        put_u32(&mut out, self.events.len() as u32);
        for e in &self.events {
            put_u64(&mut out, e.seq);
            put_u64(&mut out, e.ts_us);
            out.push(e.kind.as_u8());
            put_str(&mut out, &e.component);
            put_str(&mut out, &e.detail);
        }
        out
    }

    /// Decode the wire form produced by [`StatsSnapshot::encode`].
    pub fn decode(buf: &[u8]) -> Result<StatsSnapshot, DecodeError> {
        let mut r = Reader { buf, pos: 0 };
        if r.u32()? != MAGIC {
            return Err(DecodeError::Malformed("bad magic"));
        }
        if r.u8()? != VERSION {
            return Err(DecodeError::Malformed("unsupported version"));
        }
        let mut snap = StatsSnapshot::default();

        for _ in 0..r.len_prefix()? {
            let k = r.string()?;
            let v = r.u64()?;
            snap.counters.push((k, v));
        }
        for _ in 0..r.len_prefix()? {
            let k = r.string()?;
            let v = r.u64()? as i64;
            snap.gauges.push((k, v));
        }
        for _ in 0..r.len_prefix()? {
            let k = r.string()?;
            let mut h = HistogramSnapshot::default();
            for _ in 0..r.len_prefix()? {
                let i = r.u8()? as usize;
                let n = r.u64()?;
                if i >= BUCKETS {
                    return Err(DecodeError::Malformed("bucket index out of range"));
                }
                h.buckets[i] = n;
            }
            snap.histograms.push((k, h));
        }
        for _ in 0..r.len_prefix()? {
            let seq = r.u64()?;
            let ts_us = r.u64()?;
            let kind = EventKind::from_u8(r.u8()?);
            let component = r.string()?;
            let detail = r.string()?;
            snap.events.push(Event {
                seq,
                ts_us,
                component,
                kind,
                detail,
            });
        }
        Ok(snap)
    }

    /// Human-oriented multi-line rendering: non-zero counters and gauges,
    /// histogram count/mean/p99, then the event timeline. Used by the
    /// `phoenix-stats` example and handy in test failure output.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (k, v) in &self.counters {
            if *v != 0 {
                out.push_str(&format!("  {k:<52} {v}\n"));
            }
        }
        out.push_str("== gauges ==\n");
        for (k, v) in &self.gauges {
            if *v != 0 {
                out.push_str(&format!("  {k:<52} {v}\n"));
            }
        }
        out.push_str("== histograms (count / ~mean_us / ~p99_us) ==\n");
        for (k, h) in &self.histograms {
            let c = h.count();
            if c != 0 {
                out.push_str(&format!(
                    "  {k:<52} {c} / {:.1} / {}\n",
                    h.approx_mean_us(),
                    h.approx_quantile(0.99)
                ));
            }
        }
        out.push_str("== journal ==\n");
        for e in &self.events {
            out.push_str(&format!(
                "  [{:>10} us] #{:<4} {:<8} {:<20} {}\n",
                e.ts_us,
                e.seq,
                e.component,
                e.kind.as_str(),
                e.detail
            ));
        }
        out
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A u32 element count, sanity-capped against the remaining buffer so a
    /// hostile length can't trigger a giant allocation.
    fn len_prefix(&mut self) -> Result<u32, DecodeError> {
        let n = self.u32()?;
        if n as usize > self.buf.len() - self.pos {
            return Err(DecodeError::Malformed("length exceeds buffer"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len_prefix()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Malformed("string not utf-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use crate::registry::Registry;

    fn sample() -> StatsSnapshot {
        let reg = Registry::new();
        reg.counter("wal_fsyncs_total", "fsyncs").add(17);
        reg.counter_with("requests_total", "reqs", &[("type", "exec")])
            .add(3);
        reg.gauge("sessions_active", "sessions").set(2);
        let h = reg.histogram("fsync_us", "fsync latency");
        h.record(0);
        h.record(900);
        h.record(901);
        h.record(u64::MAX);

        let jnl = Journal::new();
        jnl.record("core", EventKind::CrashDetected, "comm failure");
        jnl.record("core", EventKind::ReconnectAttempt, "attempt 1");
        jnl.record("core", EventKind::RecoveryComplete, "1 cursor restored");
        StatsSnapshot::capture_from(&reg, &jnl)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let snap = sample();
        let bytes = snap.encode();
        let back = StatsSnapshot::decode(&bytes).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("wal_fsyncs_total"), Some(17));
        assert_eq!(back.counter("requests_total{type=\"exec\"}"), Some(3));
        assert_eq!(back.gauge("sessions_active"), Some(2));
        assert_eq!(back.histogram("fsync_us").unwrap().count(), 4);
        assert_eq!(back.events.len(), 3);
        assert_eq!(back.events[1].kind, EventKind::ReconnectAttempt);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(StatsSnapshot::decode(&[]).is_err());
        assert!(StatsSnapshot::decode(&[1, 2, 3]).is_err());
        assert_eq!(
            StatsSnapshot::decode(&[0xFF; 32]),
            Err(DecodeError::Malformed("bad magic"))
        );
        // Right magic, wrong version.
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert_eq!(
            StatsSnapshot::decode(&bytes),
            Err(DecodeError::Malformed("unsupported version"))
        );
        // Truncation at every prefix length must error, never panic.
        let full = sample().encode();
        for cut in 0..full.len() {
            assert!(StatsSnapshot::decode(&full[..cut]).is_err());
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAGIC);
        bytes.push(VERSION);
        put_u32(&mut bytes, u32::MAX); // claims 4 billion counters
        assert_eq!(
            StatsSnapshot::decode(&bytes),
            Err(DecodeError::Malformed("length exceeds buffer"))
        );
    }

    #[test]
    fn pretty_rendering_mentions_everything_nonzero() {
        let text = sample().render_pretty();
        assert!(text.contains("wal_fsyncs_total"));
        assert!(text.contains("sessions_active"));
        assert!(text.contains("fsync_us"));
        assert!(text.contains("crash_detected"));
        assert!(text.contains("recovery_complete"));
    }
}
