//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! Every operation on the recording path is a single atomic instruction on a
//! pre-existing cell — no mutex, no rwlock, no allocation. That property is
//! what lets the WAL fsync path and the per-statement execute path carry
//! instrumentation without measurably perturbing the numbers they measure.
//!
//! All atomics use `Relaxed` ordering: metrics are statistical aggregates,
//! not synchronization primitives, and no reader derives happens-before
//! relationships from them.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets. Bucket 0 holds exact zeros; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so 64 buckets cover the entire `u64`
/// range with no clamping surprises below the last bucket.
pub const BUCKETS: usize = 64;

/// A monotonically increasing event count (requests served, fsyncs issued,
/// replies replayed, ...).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous level that can move both ways (active sessions, in-flight
/// requests, temp tables alive).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite with `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale (powers of two) latency/size histogram.
///
/// [`Histogram::record`] is **exactly one** `fetch_add` on the bucket the
/// value falls into; there is no separate count or sum atomic to keep the
/// hot path at a single operation. Count is derived by summing buckets at
/// read time, and sum/mean are approximated from bucket midpoints — accurate
/// to within the ×2 bucket resolution, which is plenty for latency
/// distributions (exact means, where they matter, come from counter pairs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`, so
    /// `v ∈ [2^(i-1), 2^i)` lands in bucket `i` (the top bucket absorbs
    /// `u64::MAX` and friends).
    #[inline]
    fn index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Record one sample. Single atomic `fetch_add`; lock-free and
    /// allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples (derived: sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// An owned, plain-integer copy of a [`Histogram`]'s buckets, suitable for
/// rendering, wire encoding, and test assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; see [`BUCKETS`] for the bucket layout.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Inclusive lower bound of bucket `i` (0, then powers of two).
    pub fn lower_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (`2^i - 1`; `u64::MAX` for the
    /// last bucket, which also absorbs everything above it).
    pub fn upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i == BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate sum of samples using bucket midpoints (`1.5 · 2^(i-1)`).
    pub fn approx_sum(&self) -> f64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mid = if i == 0 {
                    0.0
                } else {
                    1.5 * (1u64 << (i - 1)) as f64
                };
                n as f64 * mid
            })
            .sum()
    }

    /// Approximate mean sample value in the unit the histogram was recorded
    /// in (microseconds, by this crate's convention).
    pub fn approx_mean_us(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.approx_sum() / c as f64
        }
    }

    /// Approximate value at quantile `q ∈ [0, 1]`: the upper bound of the
    /// bucket where the cumulative count crosses `q · total`.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return Self::upper_bound(i);
            }
        }
        Self::upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 1);
        assert_eq!(Histogram::index(2), 2);
        assert_eq!(Histogram::index(3), 2);
        assert_eq!(Histogram::index(4), 3);
        assert_eq!(Histogram::index(1023), 10);
        assert_eq!(Histogram::index(1024), 11);
        assert_eq!(Histogram::index(u64::MAX), BUCKETS - 1);

        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[3], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.buckets[BUCKETS - 1], 1);
    }

    #[test]
    fn histogram_mean_and_quantile_are_plausible() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(100); // bucket [64, 128)
        }
        let s = h.snapshot();
        let mean = s.approx_mean_us();
        assert!((64.0..=128.0).contains(&mean), "mean {mean} out of bucket");
        let p99 = s.approx_quantile(0.99);
        assert!((64..=127).contains(&p99), "p99 {p99} out of bucket");
    }

    #[test]
    fn concurrent_counts_are_exact() {
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            let h = Arc::clone(&h);
            handles.push(thread::spawn(move || {
                for i in 0..10_000u64 {
                    c.inc();
                    h.record(t * 1000 + i % 97);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
    }
}
