#![warn(missing_docs)]

//! # phoenix-obs
//!
//! The observability core for the Phoenix database stack: the paper's whole
//! value proposition is *measurable* — normal-operation overhead versus
//! time-to-restore-a-session — and this crate is what turns both into
//! numbers a test or a benchmark harness can assert on.
//!
//! Three pieces:
//!
//! * [`metrics`] — lock-free [`Counter`], [`Gauge`] and fixed-bucket
//!   log-scale [`Histogram`]. Recording a sample is a **single atomic
//!   `fetch_add`**; no mutex, no rwlock, no allocation anywhere on the hot
//!   path. Callers cache `Arc` handles in statics, so steady-state
//!   instrumentation never touches the registry again.
//! * [`mod@registry`] — a process-wide [`Registry`] of named (optionally
//!   labeled) metric families with a Prometheus-style text exposition
//!   ([`Registry::render_text`]) and a structured [`StatsSnapshot`] for the
//!   wire.
//! * [`mod@journal`] — a bounded ring-buffer [`Journal`] of timestamped events,
//!   used to record *recovery timelines*: crash detected → reconnect
//!   attempts → session context re-installed → cursors and reply buffers
//!   restored. Events are rare (failures, lifecycle edges), so the journal
//!   trades a short mutex for perfectly ordered, monotonic timestamps.
//!
//! The crate is dependency-free on purpose: every other crate in the
//! workspace (storage, engine, server, driver, core, bench) links it, so it
//! must sit at the very bottom of the dependency graph, next to std.

pub mod journal;
pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use journal::{journal, Event, EventKind, Journal};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{registry, MetricValue, Registry};
pub use snapshot::StatsSnapshot;

use std::sync::OnceLock;
use std::time::Instant;

/// Microseconds elapsed since the process-wide observability epoch (the
/// first call to any phoenix-obs timestamp). Monotonic: backed by
/// [`Instant`], never by wall-clock time, so recovery timelines can assert
/// strict ordering even across NTP steps.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Convenience guard that records the elapsed time into a histogram when
/// dropped — the one-liner for latency instrumentation:
///
/// ```
/// # let h = std::sync::Arc::new(phoenix_obs::Histogram::new());
/// let _t = phoenix_obs::Timer::new(&h);
/// // ... the code being timed ...
/// // histogram sample recorded when `_t` drops
/// ```
pub struct Timer<'a> {
    start: Instant,
    histogram: &'a Histogram,
}

impl<'a> Timer<'a> {
    /// Start timing; the sample lands in `histogram` (in microseconds) when
    /// the guard drops.
    pub fn new(histogram: &'a Histogram) -> Timer<'a> {
        Timer {
            start: Instant::now(),
            histogram,
        }
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.histogram
            .record(self.start.elapsed().as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_us_is_monotonic() {
        let a = now_us();
        let b = now_us();
        let c = now_us();
        assert!(a <= b && b <= c);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        {
            let _t = Timer::new(&h);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        // 1 ms sleep must land at or above the ~1024 µs bucket's range.
        assert!(h.snapshot().approx_mean_us() >= 256.0);
    }
}
