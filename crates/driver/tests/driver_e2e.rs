//! End-to-end driver tests against a real TCP server.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use phoenix_driver::{CursorKind, DriverError, Environment, FetchDir, StatementResult};
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-driver-test-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn start() -> (ServerHarness, PathBuf) {
    let dir = temp_dir();
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    (h, dir)
}

#[test]
fn connect_execute_fetch() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    assert_eq!(
        conn.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
            .unwrap()
            .affected(),
        3
    );
    let r = conn.execute("SELECT v FROM t ORDER BY id DESC").unwrap();
    assert_eq!(r.rows().len(), 3);
    assert_eq!(r.rows()[0][0], Value::Text("c".into()));
    assert_eq!(r.schema().unwrap().columns[0].name, "v");
    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn statement_default_cursor_fetches_client_side() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    conn.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        .unwrap();

    let mut stmt = conn.statement();
    assert_eq!(
        stmt.execute("SELECT id FROM t").unwrap(),
        StatementResult::ResultSet
    );
    let mut got = Vec::new();
    while let Some(row) = stmt.fetch().unwrap() {
        got.push(row[0].as_i64().unwrap());
    }
    assert_eq!(got, vec![1, 2, 3, 4]);
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn keyset_cursor_round_trips_blocks() {
    let (h, dir) = start();
    let env = Environment::new().with_fetch_block(2);
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
        .unwrap();
    for i in 1..=7 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, {i}.5)"))
            .unwrap();
    }
    let mut stmt = conn.statement();
    stmt.set_cursor_type(CursorKind::Keyset);
    stmt.execute("SELECT id FROM t WHERE id <= 5").unwrap();
    assert_eq!(stmt.granted_cursor(), Some(CursorKind::Keyset));
    let mut got = Vec::new();
    while let Some(row) = stmt.fetch().unwrap() {
        got.push(row[0].as_i64().unwrap());
    }
    assert_eq!(got, vec![1, 2, 3, 4, 5]);
    stmt.close().unwrap();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dynamic_cursor_scrolls() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 1..=6 {
        conn.execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    let mut stmt = conn.statement();
    stmt.set_cursor_type(CursorKind::Dynamic);
    stmt.execute("SELECT id FROM t").unwrap();
    let rows = stmt.fetch_scroll(FetchDir::Next, 3).unwrap();
    assert_eq!(rows.len(), 3);
    let rows = stmt.fetch_scroll(FetchDir::Prior, 2).unwrap();
    assert_eq!(
        rows.iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect::<Vec<_>>(),
        vec![1, 2]
    );
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn server_errors_do_not_poison() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    let e = conn.execute("SELECT * FROM missing").unwrap_err();
    assert!(!e.is_comm());
    assert!(matches!(e, DriverError::Sql { .. }));
    assert!(!conn.is_poisoned());
    // Connection still works.
    conn.execute("SELECT 1").unwrap();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_surfaces_as_comm_error_and_poisons() {
    let (mut h, dir) = start();
    let env = Environment::new().with_read_timeout(Some(Duration::from_millis(500)));
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (v INT)").unwrap();
    h.crash().unwrap();
    let e = conn.execute("SELECT 1").unwrap_err();
    assert!(e.is_comm(), "expected comm error, got {e}");
    assert!(conn.is_poisoned());
    // Every further use fails fast.
    assert!(conn.execute("SELECT 1").unwrap_err().is_comm());

    // After restart a NEW connection works; the durable table is intact.
    h.restart().unwrap();
    let mut conn2 = env.connect(&h.addr(), "app", "test").unwrap();
    conn2.execute("SELECT COUNT(*) FROM t").unwrap();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn session_liveness_probe_via_temp_table() {
    // The exact probe Phoenix uses: create a session temp table; after a
    // reconnect, its absence proves the old session (and server) died.
    let (mut h, dir) = start();
    let env = Environment::new().with_read_timeout(Some(Duration::from_millis(500)));
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE #phx_alive (v INT)").unwrap();
    conn.execute("SELECT * FROM #phx_alive").unwrap();

    h.crash().unwrap();
    h.restart().unwrap();

    let mut conn2 = env.connect(&h.addr(), "app", "test").unwrap();
    let e = conn2.execute("SELECT * FROM #phx_alive").unwrap_err();
    assert_eq!(
        e.server_code(),
        Some(phoenix_driver::error::codes::NOT_FOUND)
    );
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn messages_travel_with_results() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    let r = conn.execute("PRINT 'hello from the server'").unwrap();
    assert_eq!(r.messages, vec!["hello from the server"]);
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn login_options_are_applied() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env
        .connect_with_options(
            &h.addr(),
            "app",
            "test",
            vec![("lock_timeout".to_string(), Value::Int(1234))],
        )
        .unwrap();
    // No direct way to read options over the wire; at minimum the login must
    // succeed and the connection must work.
    conn.execute("SELECT 1").unwrap();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn buffered_result_scrolls_client_side() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 0..8 {
        conn.execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    let mut stmt = conn.statement();
    stmt.execute("SELECT id FROM t ORDER BY id").unwrap();
    // Default result set: scrolling is served from the client buffer.
    let w = stmt.fetch_scroll(FetchDir::Next, 3).unwrap();
    assert_eq!(
        w.iter().map(|r| r[0].as_i64().unwrap()).collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    let w = stmt.fetch_scroll(FetchDir::Prior, 2).unwrap();
    assert_eq!(
        w.iter().map(|r| r[0].as_i64().unwrap()).collect::<Vec<_>>(),
        vec![1, 2]
    );
    let w = stmt.fetch_scroll(FetchDir::Absolute(6), 5).unwrap();
    assert_eq!(w.len(), 2);
    assert_eq!(w[0][0], Value::Int(6));
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn close_is_best_effort_and_counted() {
    use phoenix_driver::metrics::driver_metrics;
    use phoenix_obs::EventKind;

    let (mut h, dir) = start();
    let env = Environment::new().with_read_timeout(Some(Duration::from_millis(300)));

    // Clean close: counted, not a failed close.
    let closes_before = driver_metrics().closes.get();
    let failed_before = driver_metrics().failed_closes.get();
    let conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.close();
    assert_eq!(driver_metrics().closes.get(), closes_before + 1);
    assert_eq!(driver_metrics().failed_closes.get(), failed_before);

    // Poisoned close: the crash severs the socket mid-session; the next call
    // poisons the connection; close() must neither panic nor try Logout.
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    let session = conn.session_id();
    h.crash().unwrap();
    assert!(matches!(
        conn.execute("SELECT 1"),
        Err(DriverError::Comm(_))
    ));
    assert!(conn.is_poisoned());
    conn.close(); // must not panic
    assert_eq!(driver_metrics().closes.get(), closes_before + 2);
    assert_eq!(driver_metrics().failed_closes.get(), failed_before);

    // The poisoned close left a debug breadcrumb in the journal.
    let detail = format!("session {session} close: skipped (poisoned)");
    assert!(
        phoenix_obs::journal()
            .events_of(EventKind::ConnectionClose)
            .iter()
            .any(|e| e.component == "driver" && e.detail == detail),
        "expected journal event '{detail}'"
    );

    h.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
