//! Protocol v2 end-to-end tests: version negotiation, pipelining, batch
//! execution, v1 fallback, and cross-version compatibility.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use phoenix_driver::prelude::*;
use phoenix_engine::EngineConfig;
use phoenix_server::ServerHarness;
use phoenix_storage::types::Value;
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Request, Response, DEFAULT_WINDOW, PROTOCOL_V1, PROTOCOL_V2};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-proto2-test-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn start() -> (ServerHarness, PathBuf) {
    let dir = temp_dir();
    let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    (h, dir)
}

#[test]
fn v2_negotiated_by_default_and_window_capped() {
    let (h, dir) = start();
    let env = Environment::new().with_window(1_000_000);
    let conn = env.connect(&h.addr(), "app", "test").unwrap();
    assert_eq!(conn.protocol(), PROTOCOL_V2);
    assert_eq!(
        conn.window(),
        DEFAULT_WINDOW,
        "server must cap an absurd window ask at its maximum"
    );
    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn forced_v1_still_works() {
    let (h, dir) = start();
    let env = Environment::new().with_protocol(PROTOCOL_V1);
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    assert_eq!(conn.protocol(), PROTOCOL_V1);
    assert_eq!(conn.window(), 1);
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    assert_eq!(
        conn.execute("INSERT INTO t VALUES (1)").unwrap().affected(),
        1
    );
    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v2_client_falls_back_against_v1_only_server() {
    // A scripted v1-only server: answers the unknown LoginV2 tag with an
    // error (exactly what the old server build does for any unknown tag) and
    // then accepts the v1 Login on the same socket.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_nodelay(true).unwrap();
        // First frame: the v2 probe. An old server doesn't know tag 10.
        let p = read_frame(&mut s).unwrap();
        assert!(matches!(Request::decode(&p), Ok(Request::LoginV2 { .. })));
        write_frame(
            &mut s,
            &Response::Err {
                code: codes::PARSE,
                message: "malformed request: unknown request tag 10".into(),
            }
            .encode(),
        )
        .unwrap();
        // Second frame: the v1 fallback login.
        let p = read_frame(&mut s).unwrap();
        assert!(matches!(Request::decode(&p), Ok(Request::Login { .. })));
        write_frame(&mut s, &Response::LoginAck { session: 42 }.encode()).unwrap();
        // One v1 round trip to prove the fallen-back connection works.
        let p = read_frame(&mut s).unwrap();
        assert!(matches!(Request::decode(&p), Ok(Request::Ping)));
        write_frame(&mut s, &Response::Pong.encode()).unwrap();
    });

    let env = Environment::new(); // defaults: try v2 first
    let mut conn = env.connect(&addr, "app", "test").unwrap();
    assert_eq!(conn.protocol(), PROTOCOL_V1, "must fall back to v1");
    assert_eq!(conn.session_id(), 42);
    conn.ping().unwrap();
    server.join().unwrap();
}

#[test]
fn old_v1_client_against_new_server() {
    // The other compatibility direction: a client speaking raw v1 frames
    // (no LoginV2 probe at all) against today's server.
    let (h, dir) = start();
    let mut s = std::net::TcpStream::connect(h.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    let mut call = |req: Request| -> Response {
        write_frame(&mut s, &req.encode()).unwrap();
        Response::decode(&read_frame(&mut s).unwrap()).unwrap()
    };
    match call(Request::Login {
        user: "old".into(),
        database: "test".into(),
        options: vec![],
    }) {
        Response::LoginAck { .. } => {}
        other => panic!("v1 login failed: {other:?}"),
    }
    match call(Request::Exec {
        sql: "SELECT 1".into(),
    }) {
        Response::Result { .. } => {}
        other => panic!("v1 exec failed: {other:?}"),
    }
    match call(Request::Logout) {
        Response::Bye => {}
        other => panic!("v1 logout failed: {other:?}"),
    }
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_submits_ahead_and_replies_in_order() {
    let (h, dir) = start();
    let env = Environment::new().with_window(8);
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();

    let mut pipe = conn.pipeline();
    assert_eq!(pipe.window(), 8);
    let tags: Vec<u64> = (0..20)
        .map(|i| pipe.submit(&format!("INSERT INTO t VALUES ({i}, {})", i * 10)))
        .collect::<Result<_>>()
        .unwrap();
    // 20 submissions through a window of 8: submission must have been forced
    // to drain some replies along the way, yet every tag resolves.
    for (i, tag) in tags.iter().enumerate() {
        assert_eq!(pipe.wait(*tag).unwrap().affected(), 1, "tag {i}");
    }

    // Interleave queries through the pipeline and check results by tag, out
    // of submission order.
    let q1 = pipe.submit("SELECT COUNT(*) FROM t").unwrap();
    let q2 = pipe.submit("SELECT v FROM t WHERE id = 7").unwrap();
    pipe.drain().unwrap();
    assert_eq!(pipe.wait(q2).unwrap().rows()[0][0], Value::Int(70));
    assert_eq!(pipe.wait(q1).unwrap().rows()[0][0], Value::Int(20));

    // A sql error surfaces on its own tag without killing the pipeline.
    let bad = pipe.submit("INSERT INTO t VALUES (7, 0)").unwrap(); // dup pk
    let good = pipe.submit("SELECT COUNT(*) FROM t").unwrap();
    let err = pipe.wait(bad).unwrap_err();
    assert_eq!(err.server_code(), Some(codes::CONSTRAINT));
    assert!(!err.is_retryable());
    assert_eq!(pipe.wait(good).unwrap().rows()[0][0], Value::Int(20));

    // Waiting on a never-submitted tag is a protocol (usage) error.
    assert!(matches!(pipe.wait(9999), Err(Error::Protocol(_))));

    drop(pipe);
    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_on_v1_connection_degrades_to_synchronous() {
    let (h, dir) = start();
    let env = Environment::new().with_protocol(PROTOCOL_V1);
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();

    let mut pipe = conn.pipeline();
    assert_eq!(pipe.window(), 1);
    let a = pipe.submit("INSERT INTO t VALUES (1)").unwrap();
    let b = pipe.submit("SELECT COUNT(*) FROM t").unwrap();
    pipe.drain().unwrap();
    assert_eq!(pipe.wait(b).unwrap().rows()[0][0], Value::Int(1));
    assert_eq!(pipe.wait(a).unwrap().affected(), 1);
    drop(pipe);
    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn execute_batch_one_frame_and_v1_fallback_agree() {
    for protocol in [PROTOCOL_V2, PROTOCOL_V1] {
        let (h, dir) = start();
        let env = Environment::new().with_protocol(protocol);
        let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();

        let items = conn
            .execute_batch(&[
                "INSERT INTO t VALUES (1)".into(),
                "INSERT INTO t VALUES (2)".into(),
                "SELECT COUNT(*) FROM t".into(),
            ])
            .unwrap();
        assert_eq!(items.len(), 3, "protocol v{protocol}");
        assert!(matches!(
            items[0],
            BatchItem::Ok {
                outcome: Outcome::RowsAffected(1),
                ..
            }
        ));
        match &items[2] {
            BatchItem::Ok {
                outcome: Outcome::ResultSet { rows, .. },
                ..
            } => assert_eq!(rows[0][0], Value::Int(2)),
            other => panic!("{other:?}"),
        }

        // Batch stops at the first error; the error is the last item.
        let items = conn
            .execute_batch(&[
                "INSERT INTO t VALUES (3)".into(),
                "INSERT INTO t VALUES (1)".into(), // dup pk
                "INSERT INTO t VALUES (4)".into(), // never attempted
            ])
            .unwrap();
        assert_eq!(items.len(), 2, "protocol v{protocol}");
        assert!(matches!(items[1], BatchItem::Err { code, .. } if code == codes::CONSTRAINT));
        let r = conn.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            r.rows()[0][0],
            Value::Int(3),
            "statement after the failure must not have run (v{protocol})"
        );

        conn.close();
        drop(h);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn raii_cursor_closes_on_drop() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 1..=5 {
        conn.execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }

    let id = {
        let mut cur = conn
            .cursor("SELECT id FROM t ORDER BY id", CursorKind::Keyset)
            .unwrap();
        assert_eq!(cur.schema().columns[0].name, "id");
        let (rows, _) = cur.fetch(FetchDir::Next, 3).unwrap();
        assert_eq!(rows.len(), 3);
        cur.id()
        // drop closes the server cursor
    };
    // The id is now stale: any further fetch on it must fail server-side.
    let err = conn.fetch_cursor_raw(id, FetchDir::Next, 1).unwrap_err();
    assert_eq!(err.server_code(), Some(codes::CURSOR));

    // Explicit close reports success (and is not a double close).
    let cur = conn
        .cursor("SELECT id FROM t", CursorKind::ForwardOnly)
        .unwrap();
    cur.close().unwrap();

    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn raw_cursor_api_round_trip() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    conn.execute("INSERT INTO t VALUES (1), (2)").unwrap();

    let (id, schema, _granted) = conn
        .open_cursor_raw("SELECT id FROM t", CursorKind::ForwardOnly)
        .unwrap();
    assert_eq!(schema.columns.len(), 1);
    let (rows, at_end) = conn.fetch_cursor_raw(id, FetchDir::Next, 10).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(at_end);
    conn.close_cursor_raw(id).unwrap();

    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn index_ddl_and_explain_over_the_wire() {
    let (h, dir) = start();
    let env = Environment::new();
    let mut conn = env.connect(&h.addr(), "app", "test").unwrap();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        .unwrap();
    for i in 0..40 {
        conn.execute(&format!("INSERT INTO t VALUES ({i}, {})", i % 4))
            .unwrap();
    }

    // Before the index: equality on grp scans.
    let plan = conn.explain("SELECT id FROM t WHERE grp = 2").unwrap();
    assert_eq!(plan.rows()[0][3], Value::Text("scan".into()));

    conn.execute("CREATE INDEX ix_grp ON t(grp)").unwrap();
    let plan = conn.explain("SELECT id FROM t WHERE grp = 2").unwrap();
    assert_eq!(plan.rows()[0][3], Value::Text("index-eq".into()));
    assert_eq!(plan.rows()[0][4], Value::Text("ix_grp".into()));
    let schema = plan.schema().unwrap();
    assert_eq!(schema.columns[3].name, "access");

    let r = conn.execute("SELECT id FROM t WHERE grp = 2").unwrap();
    assert_eq!(r.rows().len(), 10);

    conn.execute("DROP INDEX ix_grp").unwrap();
    let plan = conn.explain("SELECT id FROM t WHERE grp = 2").unwrap();
    assert_eq!(plan.rows()[0][3], Value::Text("scan".into()));

    conn.close();
    drop(h);
    std::fs::remove_dir_all(&dir).unwrap();
}
