//! Driver error model.

use std::fmt;
use std::io;

/// Error code mirrored from the engine (`phoenix_engine::ErrorCode` as u16);
/// kept as a raw number here so the driver does not depend on the engine
/// crate — clients link only driver + wire.
pub type ServerErrorCode = u16;

/// Well-known server error codes the Phoenix layer dispatches on.
pub mod codes {
    use super::ServerErrorCode;
    /// SQL did not parse.
    pub const PARSE: ServerErrorCode = 1;
    /// Table/procedure/cursor not found.
    pub const NOT_FOUND: ServerErrorCode = 2;
    /// Object already exists.
    pub const ALREADY_EXISTS: ServerErrorCode = 3;
    /// Unknown or ambiguous column.
    pub const COLUMN: ServerErrorCode = 4;
    /// Type error.
    pub const TYPE: ServerErrorCode = 5;
    /// Constraint violation.
    pub const CONSTRAINT: ServerErrorCode = 6;
    /// Transaction-state misuse.
    pub const TXN: ServerErrorCode = 7;
    /// Unsupported dialect feature.
    pub const UNSUPPORTED: ServerErrorCode = 8;
    /// Cursor misuse.
    pub const CURSOR: ServerErrorCode = 9;
    /// Unknown/stale session (all sessions die in a server crash).
    pub const NO_SESSION: ServerErrorCode = 10;
    /// Server-internal invariant failure.
    pub const INTERNAL: ServerErrorCode = 11;
    /// Server-side I/O or durability failure.
    pub const STORAGE: ServerErrorCode = 12;
}

/// A driver error.
#[derive(Debug)]
pub enum DriverError {
    /// Communication failure: connect refused, socket died mid-request, or
    /// a read timed out. After a `Comm` error the connection is unusable and
    /// the server session may no longer exist — this is the signal Phoenix's
    /// failure detector triggers on.
    Comm(io::Error),
    /// The server executed (or refused) the request and reported an error.
    /// The session itself is intact.
    Server {
        /// The engine's error class.
        code: ServerErrorCode,
        /// Human-readable message.
        message: String,
    },
    /// The peer sent bytes that don't decode — a protocol bug or version
    /// mismatch. Treated as fatal for the connection.
    Protocol(String),
    /// Driver misuse (fetch without an open result, etc.).
    Usage(String),
}

impl DriverError {
    /// Is this a communication failure (vs. a server-reported statement
    /// error)?
    pub fn is_comm(&self) -> bool {
        matches!(self, DriverError::Comm(_))
    }

    /// Did the read time out (possible slow server — not necessarily dead)?
    pub fn is_timeout(&self) -> bool {
        match self {
            DriverError::Comm(e) => {
                matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                )
            }
            _ => false,
        }
    }

    /// The server error class, when this is a `Server` error.
    pub fn server_code(&self) -> Option<ServerErrorCode> {
        match self {
            DriverError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Comm(e) => write!(f, "communication failure: {e}"),
            DriverError::Server { code, message } => write!(f, "server error {code}: {message}"),
            DriverError::Protocol(m) => write!(f, "protocol error: {m}"),
            DriverError::Usage(m) => write!(f, "driver usage error: {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<io::Error> for DriverError {
    fn from(e: io::Error) -> Self {
        DriverError::Comm(e)
    }
}

impl From<phoenix_wire::FrameError> for DriverError {
    fn from(e: phoenix_wire::FrameError) -> Self {
        match e {
            phoenix_wire::FrameError::Io(io) => DriverError::Comm(io),
            phoenix_wire::FrameError::TooLarge(n) => {
                DriverError::Protocol(format!("oversized frame ({n} bytes)"))
            }
        }
    }
}

/// Driver result alias.
pub type Result<T> = std::result::Result<T, DriverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let comm = DriverError::Comm(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(comm.is_comm());
        assert!(comm.is_timeout());
        let comm2 = DriverError::Comm(io::Error::new(io::ErrorKind::ConnectionReset, "r"));
        assert!(comm2.is_comm());
        assert!(!comm2.is_timeout());
        let srv = DriverError::Server {
            code: codes::NOT_FOUND,
            message: "x".into(),
        };
        assert!(!srv.is_comm());
        assert_eq!(srv.server_code(), Some(codes::NOT_FOUND));
    }
}
