//! Driver error model: the unified taxonomy every layer above the wire
//! dispatches on.
//!
//! Four classes, chosen by what the caller can *do* about the failure:
//!
//! * [`Error::Comm`] — the transport failed; the session may be gone. The
//!   only retryable class ([`Error::is_retryable`]); Phoenix's failure
//!   detector triggers on it.
//! * [`Error::Sql`] — the server executed (or refused) the statement and
//!   reported an error. The session is intact; retrying the identical
//!   statement would fail the identical way.
//! * [`Error::Protocol`] — one side misused the protocol or the API: bytes
//!   that don't decode, a reply of the wrong shape, a fetch without an open
//!   result. A bug, not an operational condition.
//! * [`Error::Recovery`] — Phoenix's masking machinery itself gave up (e.g.
//!   session state unrecoverable after a crash). The application must
//!   re-establish its session state by hand.

use std::fmt;
use std::io;

/// Error code mirrored from the engine (`phoenix_engine::ErrorCode` as u16);
/// kept as a raw number here so the driver does not depend on the engine
/// crate — clients link only driver + wire.
pub type ServerErrorCode = u16;

/// Well-known server error codes the Phoenix layer dispatches on.
pub mod codes {
    use super::ServerErrorCode;
    /// SQL did not parse.
    pub const PARSE: ServerErrorCode = 1;
    /// Table/procedure/cursor not found.
    pub const NOT_FOUND: ServerErrorCode = 2;
    /// Object already exists.
    pub const ALREADY_EXISTS: ServerErrorCode = 3;
    /// Unknown or ambiguous column.
    pub const COLUMN: ServerErrorCode = 4;
    /// Type error.
    pub const TYPE: ServerErrorCode = 5;
    /// Constraint violation.
    pub const CONSTRAINT: ServerErrorCode = 6;
    /// Transaction-state misuse.
    pub const TXN: ServerErrorCode = 7;
    /// Unsupported dialect feature.
    pub const UNSUPPORTED: ServerErrorCode = 8;
    /// Cursor misuse.
    pub const CURSOR: ServerErrorCode = 9;
    /// Unknown/stale session (all sessions die in a server crash).
    pub const NO_SESSION: ServerErrorCode = 10;
    /// Server-internal invariant failure.
    pub const INTERNAL: ServerErrorCode = 11;
    /// Server-side I/O or durability failure.
    pub const STORAGE: ServerErrorCode = 12;
    /// Server at capacity (session cap reached or admission queue full).
    /// Transient by contract, like [`FENCED`]: retrying can succeed.
    pub const BUSY: ServerErrorCode = 13;
    /// Server fenced: either a deposed primary (a newer server has been
    /// promoted — this one will never accept a login again) or a standby
    /// that has not been promoted *yet*. Retryable by contract: the
    /// reconnect loop rotates to the next server in the session's list,
    /// which is exactly where a fenced answer says the session should go.
    pub const FENCED: ServerErrorCode = 14;
}

/// A driver error. See the module docs for the class semantics.
#[derive(Debug)]
pub enum Error {
    /// Communication failure: connect refused, socket died mid-request, or
    /// a read timed out. After a `Comm` error the connection is unusable and
    /// the server session may no longer exist — this is the signal Phoenix's
    /// failure detector triggers on.
    Comm(io::Error),
    /// The server executed (or refused) the request and reported a SQL-level
    /// error. The session itself is intact.
    Sql {
        /// The engine's error class.
        code: ServerErrorCode,
        /// Human-readable message.
        message: String,
    },
    /// Protocol or API misuse: bytes that don't decode, a reply of the
    /// wrong shape for the request, a fetch without an open result set.
    Protocol(String),
    /// Phoenix recovery failed: the crash could not be masked and session
    /// state was lost. Surfaced only by `phoenix-core`, never by the bare
    /// driver.
    Recovery(String),
}

/// Compatibility alias — the error type's original name. New code should
/// spell it [`Error`] (e.g. via `phoenix_driver::prelude`).
pub type DriverError = Error;

impl Error {
    /// Is this a communication failure (vs. a server-reported statement
    /// error)?
    pub fn is_comm(&self) -> bool {
        matches!(self, Error::Comm(_))
    }

    /// Can the operation be retried — possibly on a fresh connection, or a
    /// *different server* — with a real chance of success? True for
    /// [`Error::Comm`] (covers connection refused/reset on a lost server),
    /// and for the two transient server codes: [`codes::BUSY`] (at
    /// capacity — back off and retry) and [`codes::FENCED`] (deposed
    /// primary or not-yet-promoted standby — rotate to the next server in
    /// the list). Any other `Sql` error would recur, a `Protocol` error is
    /// a bug, and a `Recovery` error means retrying was already tried and
    /// lost.
    pub fn is_retryable(&self) -> bool {
        match self {
            Error::Comm(_) => true,
            Error::Sql { code, .. } => *code == codes::BUSY || *code == codes::FENCED,
            _ => false,
        }
    }

    /// Did the read time out (possible slow server — not necessarily dead)?
    pub fn is_timeout(&self) -> bool {
        match self {
            Error::Comm(e) => {
                matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                )
            }
            _ => false,
        }
    }

    /// The server error class, when this is a [`Error::Sql`] error.
    pub fn server_code(&self) -> Option<ServerErrorCode> {
        match self {
            Error::Sql { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Comm(e) => write!(f, "communication failure: {e}"),
            Error::Sql { code, message } => write!(f, "server error {code}: {message}"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Recovery(m) => write!(f, "recovery failure: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Comm(e)
    }
}

impl From<phoenix_wire::FrameError> for Error {
    fn from(e: phoenix_wire::FrameError) -> Self {
        match e {
            phoenix_wire::FrameError::Io(io) => Error::Comm(io),
            phoenix_wire::FrameError::TooLarge(n) => {
                Error::Protocol(format!("oversized frame ({n} bytes)"))
            }
        }
    }
}

/// Driver result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let comm = Error::Comm(io::Error::new(io::ErrorKind::TimedOut, "t"));
        assert!(comm.is_comm());
        assert!(comm.is_timeout());
        assert!(comm.is_retryable());
        let comm2 = Error::Comm(io::Error::new(io::ErrorKind::ConnectionReset, "r"));
        assert!(comm2.is_comm());
        assert!(!comm2.is_timeout());
        let srv = Error::Sql {
            code: codes::NOT_FOUND,
            message: "x".into(),
        };
        assert!(!srv.is_comm());
        assert!(!srv.is_retryable());
        assert_eq!(srv.server_code(), Some(codes::NOT_FOUND));
        assert!(Error::Sql {
            code: codes::BUSY,
            message: "full".into(),
        }
        .is_retryable());
        assert!(
            Error::Sql {
                code: codes::FENCED,
                message: "standby: not promoted yet".into(),
            }
            .is_retryable(),
            "fenced must be retryable or failover rotation never reaches the standby"
        );
        assert!(!Error::Protocol("p".into()).is_retryable());
        assert!(!Error::Recovery("r".into()).is_retryable());
        // Each class renders with its own prefix — applications can log
        // without matching on strings.
        assert!(Error::Recovery("gone".into())
            .to_string()
            .starts_with("recovery failure"));
    }
}
