//! RAII server-cursor handle.
//!
//! A [`Cursor`] borrows its [`Connection`] and closes the server-side cursor
//! when dropped, so an early return or `?` can no longer leak cursors on the
//! server (each open cursor pins its result snapshot there). The paper's
//! ODBC layer has no such affordance — `SQLFreeStmt` must be called by hand
//! — which is exactly the kind of leak the driver can rule out by
//! construction.

use phoenix_storage::types::{Row, Schema};
use phoenix_wire::message::{CursorKind, FetchDir};

use crate::connection::Connection;
use crate::error::Result;

/// An open server cursor, closed on drop. Obtain via
/// [`Connection::cursor`].
pub struct Cursor<'c> {
    conn: &'c mut Connection,
    id: u64,
    schema: Schema,
    granted: CursorKind,
    closed: bool,
}

impl<'c> Cursor<'c> {
    pub(crate) fn new(
        conn: &'c mut Connection,
        id: u64,
        schema: Schema,
        granted: CursorKind,
    ) -> Cursor<'c> {
        Cursor {
            conn,
            id,
            schema,
            granted,
            closed: false,
        }
    }

    /// The server-side cursor id (diagnostics; the handle owns its
    /// lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Result-set metadata.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The cursor kind the server actually granted (it may downgrade).
    pub fn granted(&self) -> CursorKind {
        self.granted
    }

    /// Fetch up to `n` rows in the given direction. Returns the rows and
    /// whether the cursor is at the end of the result.
    pub fn fetch(&mut self, dir: FetchDir, n: usize) -> Result<(Vec<Row>, bool)> {
        self.conn.fetch_cursor_raw(self.id, dir, n)
    }

    /// Close explicitly, surfacing any error (drop closes too, but must
    /// swallow failures).
    pub fn close(mut self) -> Result<()> {
        self.closed = true;
        self.conn.close_cursor_raw(self.id)
    }
}

impl Drop for Cursor<'_> {
    fn drop(&mut self) {
        if !self.closed && !self.conn.is_poisoned() {
            // Best effort: on a healthy connection this is one round trip;
            // on a dead one the server reclaims cursors with the session.
            let _ = self.conn.close_cursor_raw(self.id);
        }
    }
}
