//! Driver environment: defaults and connection allocation (the ODBC
//! environment-handle analogue).

use std::time::Duration;

use crate::connection::Connection;
use crate::error::Result;
use phoenix_storage::types::Value;

/// Driver-wide defaults. Cloneable so Phoenix can allocate its private
/// connection from the same environment the application configured.
#[derive(Debug, Clone)]
pub struct Environment {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Per-request read timeout. Reads that exceed it surface as `Comm`
    /// timeouts — the ambiguous "server busy, connection slow, or crashed?"
    /// state the paper describes.
    pub read_timeout: Option<Duration>,
    /// Rows fetched per block on cursor statements.
    pub fetch_block: usize,
    /// Highest protocol version the driver will attempt. Defaults to v2;
    /// set to [`phoenix_wire::message::PROTOCOL_V1`] to force the legacy
    /// handshake (e.g. to talk to — or test against — old servers).
    pub protocol: u32,
    /// Pipeline window to request at v2 login. The server may grant less.
    pub window: u32,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(10)),
            fetch_block: 64,
            protocol: phoenix_wire::message::PROTOCOL_V2,
            window: phoenix_wire::message::DEFAULT_WINDOW,
        }
    }
}

impl Environment {
    /// Defaults: 5 s connect timeout, 10 s read timeout, 64-row blocks.
    pub fn new() -> Environment {
        Environment::default()
    }

    /// Builder: per-request read timeout (`None` = block forever).
    pub fn with_read_timeout(mut self, t: Option<Duration>) -> Environment {
        self.read_timeout = t;
        self
    }

    /// Builder: TCP connect timeout.
    pub fn with_connect_timeout(mut self, t: Duration) -> Environment {
        self.connect_timeout = t;
        self
    }

    /// Builder: rows per block on cursor fetches (min 1).
    pub fn with_fetch_block(mut self, n: usize) -> Environment {
        self.fetch_block = n.max(1);
        self
    }

    /// Builder: highest protocol version to attempt at login.
    pub fn with_protocol(mut self, v: u32) -> Environment {
        self.protocol = v;
        self
    }

    /// Builder: pipeline window to request at v2 login (min 1; the server
    /// caps the grant at its own maximum).
    pub fn with_window(mut self, w: u32) -> Environment {
        self.window = w.max(1);
        self
    }

    /// Open a connection (performs the login handshake).
    pub fn connect(&self, addr: &str, user: &str, database: &str) -> Result<Connection> {
        Connection::open(self, addr, user, database, Vec::new())
    }

    /// Open a connection with initial session options (applied server-side
    /// as SETs during login).
    pub fn connect_with_options(
        &self,
        addr: &str,
        user: &str,
        database: &str,
        options: Vec<(String, Value)>,
    ) -> Result<Connection> {
        Connection::open(self, addr, user, database, options)
    }
}
