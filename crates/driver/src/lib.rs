#![warn(missing_docs)]

//! # phoenix-driver
//!
//! The native client driver — the stand-in for a vendor ODBC driver. Its
//! surface mirrors the CLI handle model the paper wraps:
//!
//! * [`Environment`] — driver defaults (timeouts, fetch block size,
//!   protocol/window preferences); allocates connections.
//! * [`Connection`] — one TCP connection = one server session. Executes
//!   statements (default result sets arrive complete, as ODBC default
//!   result sets do), batches ([`Connection::execute_batch`]), and pings.
//! * [`Pipeline`] — protocol v2 request pipelining: submit up to the
//!   negotiated window of requests, await replies by tag. Degrades to
//!   synchronous execution on a v1 connection, so callers write one path.
//! * [`Cursor`] — RAII server cursor, closed on drop.
//! * [`Statement`] — per-statement cursor options (forward-only / keyset /
//!   dynamic) and block fetching with `next` / `prior` / `absolute`
//!   orientations.
//!
//! The driver negotiates protocol v2 (tagged frames, pipelining, batch
//! execution) at login and falls back to v1 against old servers — see
//! `phoenix_wire` for the wire-level story.
//!
//! The error model is the part Phoenix cares most about: [`Error::Comm`]
//! (socket death, timeout — the session may be gone; the only
//! [`Error::is_retryable`] class) versus [`Error::Sql`] (the statement
//! failed; the session is fine), with [`Error::Protocol`] for bugs and
//! [`Error::Recovery`] reserved for Phoenix itself giving up. The paper's
//! failure detector is built on exactly the comm/non-comm distinction.
//!
//! The driver is intentionally *not* crash-aware: it surfaces failures and
//! does nothing else, like the native drivers the paper leaves unmodified.
//! All recovery intelligence lives in `phoenix-core`.

pub mod connection;
pub mod cursor;
pub mod environment;
pub mod error;
pub mod metrics;
pub mod pipeline;
pub mod statement;

pub use connection::{Connection, QueryResult};
pub use cursor::Cursor;
pub use environment::Environment;
pub use error::{DriverError, Error, Result};
pub use pipeline::Pipeline;
pub use statement::{Statement, StatementResult};

pub use phoenix_wire::message::{BatchItem, CursorKind, FetchDir};

/// Everything an application typically needs, importable in one line:
/// `use phoenix_driver::prelude::*;`.
pub mod prelude {
    pub use crate::connection::{Connection, QueryResult};
    pub use crate::cursor::Cursor;
    pub use crate::environment::Environment;
    pub use crate::error::{codes, Error, Result};
    pub use crate::pipeline::Pipeline;
    pub use crate::statement::{Statement, StatementResult};
    pub use phoenix_wire::message::{BatchItem, CursorKind, FetchDir, Outcome};
}
