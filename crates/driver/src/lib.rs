#![warn(missing_docs)]

//! # phoenix-driver
//!
//! The native client driver — the stand-in for a vendor ODBC driver. Its
//! surface mirrors the CLI handle model the paper wraps:
//!
//! * [`Environment`] — driver defaults (timeouts, fetch block size);
//!   allocates connections.
//! * [`Connection`] — one TCP connection = one server session. Executes
//!   statements (default result sets arrive complete, as ODBC default
//!   result sets do) and pings.
//! * [`Statement`] — per-statement cursor options (forward-only / keyset /
//!   dynamic) and block fetching with `next` / `prior` / `absolute`
//!   orientations.
//!
//! The error model is the part Phoenix cares most about:
//! [`DriverError::Comm`] (socket death, timeout — the session may be gone)
//! versus [`DriverError::Server`] (the statement failed; the session is
//! fine). The paper's failure detector is built on exactly this distinction.
//!
//! The driver is intentionally *not* crash-aware: it surfaces failures and
//! does nothing else, like the native drivers the paper leaves unmodified.
//! All recovery intelligence lives in `phoenix-core`.

pub mod connection;
pub mod environment;
pub mod error;
pub mod metrics;
pub mod statement;

pub use connection::{Connection, QueryResult};
pub use environment::Environment;
pub use error::{DriverError, Result};
pub use statement::{Statement, StatementResult};

pub use phoenix_wire::message::{CursorKind, FetchDir};
