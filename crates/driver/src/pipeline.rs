//! Pipelined request submission (protocol v2).
//!
//! A [`Pipeline`] borrows its [`Connection`] and lets the caller keep up to
//! the negotiated window of requests in flight: [`Pipeline::submit`] returns
//! a tag immediately, [`Pipeline::wait`] awaits a specific tag's reply, and
//! [`Pipeline::drain`] receives everything still outstanding. The server
//! executes and replies strictly in submission order, so one socket read
//! always completes the *oldest* in-flight request — the bookkeeping here
//! leans on that invariant.
//!
//! On a v1 connection the same API works unchanged with an effective window
//! of 1: each submit completes synchronously and the reply is buffered until
//! waited for. Callers write one code path and get pipelining when the
//! server grants it.

use std::collections::VecDeque;

use phoenix_wire::message::{BatchItem, Request, Response, PROTOCOL_V2};

use crate::connection::{Connection, QueryResult};
use crate::error::{DriverError, Result};

/// A pipelined submission scope. Obtain via [`Connection::pipeline`].
///
/// Dropping a pipeline with requests still in flight is safe: their replies
/// are buffered by the connection when they arrive and simply never
/// consumed.
pub struct Pipeline<'c> {
    conn: &'c mut Connection,
    /// Tags submitted but whose replies have not been received, oldest
    /// first.
    inflight: VecDeque<u64>,
}

impl<'c> Pipeline<'c> {
    pub(crate) fn new(conn: &'c mut Connection) -> Pipeline<'c> {
        Pipeline {
            conn,
            inflight: VecDeque::new(),
        }
    }

    /// The effective window: how many requests may be in flight at once
    /// (1 on a v1 connection).
    pub fn window(&self) -> u32 {
        if self.conn.protocol() >= PROTOCOL_V2 {
            self.conn.window()
        } else {
            1
        }
    }

    /// Number of requests currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Submit a statement for execution, returning its tag without waiting
    /// for the reply. Blocks only when the window is full (the oldest reply
    /// is received first to make room).
    pub fn submit(&mut self, sql: &str) -> Result<u64> {
        self.submit_req(Request::Exec {
            sql: sql.to_string(),
        })
    }

    /// Submit a whole batch as one pipelined request (see
    /// [`Connection::execute_batch`] for the batch semantics). Await it with
    /// [`Pipeline::wait_batch`].
    pub fn submit_batch(&mut self, stmts: &[String]) -> Result<u64> {
        self.submit_req(Request::ExecBatch {
            stmts: stmts.to_vec(),
        })
    }

    fn submit_req(&mut self, req: Request) -> Result<u64> {
        if self.conn.protocol() >= PROTOCOL_V2 {
            while self.inflight.len() >= self.conn.window() as usize {
                self.recv_oldest()?;
            }
            let tag = self.conn.submit_tagged(&req)?;
            self.inflight.push_back(tag);
            Ok(tag)
        } else {
            // v1 degradation: execute synchronously, buffer the reply under
            // a fabricated tag so wait()/wait_batch() work identically.
            let rsp = self.conn.call(req)?;
            let tag = self.conn.fresh_tag();
            self.conn.pending.push_back((tag, rsp));
            Ok(tag)
        }
    }

    /// Receive one reply — by the in-order guarantee, the oldest in-flight
    /// tag's — and buffer it on the connection.
    fn recv_oldest(&mut self) -> Result<()> {
        let (tag, rsp) = self.conn.read_tagged_reply()?;
        // The reply may belong to an older, abandoned pipeline's tag; only
        // retire it from *our* bookkeeping if it is ours.
        if let Some(pos) = self.inflight.iter().position(|t| *t == tag) {
            self.inflight.remove(pos);
        }
        self.conn.pending.push_back((tag, rsp));
        Ok(())
    }

    fn wait_rsp(&mut self, tag: u64) -> Result<Response> {
        loop {
            if let Some(pos) = self.conn.pending.iter().position(|(t, _)| *t == tag) {
                return Ok(self.conn.pending.remove(pos).expect("position exists").1);
            }
            if !self.inflight.contains(&tag) {
                return Err(DriverError::Protocol(format!(
                    "tag {tag} was never submitted on this pipeline (or already consumed)"
                )));
            }
            self.recv_oldest()?;
        }
    }

    /// Await the reply for a tag returned by [`Pipeline::submit`].
    pub fn wait(&mut self, tag: u64) -> Result<QueryResult> {
        match self.wait_rsp(tag)? {
            Response::Result { outcome, messages } => Ok(QueryResult { outcome, messages }),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Await the reply for a tag returned by [`Pipeline::submit_batch`].
    pub fn wait_batch(&mut self, tag: u64) -> Result<Vec<BatchItem>> {
        match self.wait_rsp(tag)? {
            Response::BatchResult { items } => Ok(items),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Receive every outstanding reply into the connection's buffer. After a
    /// successful drain, `wait`/`wait_batch` for any submitted tag returns
    /// without touching the socket.
    pub fn drain(&mut self) -> Result<()> {
        while !self.inflight.is_empty() {
            self.recv_oldest()?;
        }
        Ok(())
    }
}
