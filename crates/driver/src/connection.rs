//! The connection handle: one TCP connection, one server session.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use phoenix_storage::types::{Row, Schema, Value};
use phoenix_wire::frame::{read_frame, write_frame};
use phoenix_wire::message::{Outcome, Request, Response};

use crate::environment::Environment;
use crate::error::{DriverError, Result};
use crate::metrics::driver_metrics;
use crate::statement::Statement;

/// Result of `Connection::execute` (a complete, default result set — the
/// server ships all rows at once, as with ODBC default result sets).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// What the statement produced.
    pub outcome: Outcome,
    /// Server messages delivered with the reply (PRINT output, notices) —
    /// the paper's "reply buffers".
    pub messages: Vec<String>,
}

impl QueryResult {
    /// The result rows; panics if the statement did not produce a result set
    /// (test/example convenience).
    pub fn rows(&self) -> &[Row] {
        match &self.outcome {
            Outcome::ResultSet { rows, .. } => rows,
            other => panic!("expected result set, got {other:?}"),
        }
    }

    /// Result metadata, when the outcome is a result set.
    pub fn schema(&self) -> Option<&Schema> {
        match &self.outcome {
            Outcome::ResultSet { schema, .. } => Some(schema),
            _ => None,
        }
    }

    /// Rows affected; panics otherwise (test/example convenience).
    pub fn affected(&self) -> u64 {
        match &self.outcome {
            Outcome::RowsAffected(n) => *n,
            other => panic!("expected rows-affected, got {other:?}"),
        }
    }
}

/// An open connection. After any [`DriverError::Comm`] the connection is
/// poisoned and every further call fails — reconnect by opening a new one
/// (which is what Phoenix does under the covers).
pub struct Connection {
    stream: TcpStream,
    session: u64,
    addr: String,
    user: String,
    database: String,
    env: Environment,
    poisoned: bool,
}

impl Connection {
    pub(crate) fn open(
        env: &Environment,
        addr: &str,
        user: &str,
        database: &str,
        options: Vec<(String, Value)>,
    ) -> Result<Connection> {
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(DriverError::from)?
            .next()
            .ok_or_else(|| DriverError::Usage(format!("cannot resolve '{addr}'")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, env.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(env.read_timeout)?;

        let mut conn = Connection {
            stream,
            session: 0,
            addr: addr.to_string(),
            user: user.to_string(),
            database: database.to_string(),
            env: env.clone(),
            poisoned: false,
        };
        match conn.call(Request::Login {
            user: user.to_string(),
            database: database.to_string(),
            options,
        })? {
            Response::LoginAck { session } => {
                conn.session = session;
                driver_metrics().connects.inc();
                Ok(conn)
            }
            other => Err(DriverError::Protocol(format!(
                "unexpected login response: {other:?}"
            ))),
        }
    }

    /// The server address this connection was opened against.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Login user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Database name given at connect.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// Server-assigned session id (diagnostics only).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The environment this connection was opened from.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// Has a communication failure poisoned this connection?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Override the read timeout for subsequent requests.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// One request/response round trip. Any transport failure poisons the
    /// connection.
    pub(crate) fn call(&mut self, request: Request) -> Result<Response> {
        if self.poisoned {
            return Err(DriverError::Comm(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection previously failed",
            )));
        }
        let mut send = || -> Result<Response> {
            write_frame(&mut self.stream, &request.encode())?;
            // Failures on the *response* path are communication failures,
            // not protocol bugs: a server that dies mid-send leaves a
            // half-written frame behind, and once framing is lost the byte
            // stream is unusable — header bytes read as lengths, payload
            // bytes read as headers. An undecodable or oversized response
            // therefore poisons the connection and triggers Phoenix's
            // reconnect loop instead of surfacing a terminal Protocol error
            // (or worse, a decode panic).
            let payload = read_frame(&mut self.stream).map_err(|e| match e {
                phoenix_wire::frame::FrameError::Io(io) => DriverError::Comm(io),
                phoenix_wire::frame::FrameError::TooLarge(n) => {
                    DriverError::Comm(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "response frame of {n} bytes exceeds limit — stream desynchronized"
                        ),
                    ))
                }
            })?;
            Response::decode(&payload).map_err(|e| {
                DriverError::Comm(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("undecodable response frame ({e}) — stream desynchronized"),
                ))
            })
        };
        match send() {
            Ok(r) => Ok(r),
            Err(e) => {
                if e.is_comm() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Execute a statement with default result-set semantics: for a SELECT
    /// the server sends every row in the reply.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        match self.call(Request::Exec {
            sql: sql.to_string(),
        })? {
            Response::Result { outcome, messages } => Ok(QueryResult { outcome, messages }),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Allocate a statement handle (ODBC `SQLAllocStmt` analogue).
    pub fn statement(&mut self) -> Statement<'_> {
        Statement::new(self)
    }

    /// Low-level: open a server cursor, returning `(cursor id, schema,
    /// granted kind)`. Phoenix holds cursor ids across its own calls rather
    /// than borrowing a [`Statement`].
    pub fn open_cursor(
        &mut self,
        sql: &str,
        kind: phoenix_wire::message::CursorKind,
    ) -> Result<(u64, Schema, phoenix_wire::message::CursorKind)> {
        match self.call(Request::OpenCursor {
            sql: sql.to_string(),
            kind,
        })? {
            Response::CursorOpened {
                cursor,
                schema,
                granted,
            } => Ok((cursor, schema, granted)),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Low-level: fetch a block from an open server cursor.
    pub fn fetch_cursor(
        &mut self,
        cursor: u64,
        dir: phoenix_wire::message::FetchDir,
        n: usize,
    ) -> Result<(Vec<Row>, bool)> {
        match self.call(Request::Fetch {
            cursor,
            dir,
            n: n as u32,
        })? {
            Response::Rows { rows, at_end } => Ok((rows, at_end)),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Low-level: close a server cursor.
    pub fn close_cursor(&mut self, cursor: u64) -> Result<()> {
        match self.call(Request::CloseCursor { cursor })? {
            Response::Result { .. } => Ok(()),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Catalog call: schema and primary-key columns of a table (the ODBC
    /// `SQLColumns`/`SQLPrimaryKeys` analogue).
    pub fn describe(&mut self, table: &str) -> Result<(Schema, Vec<String>)> {
        match self.call(Request::Describe {
            table: table.to_string(),
        })? {
            Response::TableInfo {
                schema,
                primary_key,
            } => Ok((schema, primary_key)),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Liveness probe: a Ping round trip. Succeeds even when the server has
    /// restarted (Ping is session-less); use a session-scoped request to
    /// test whether *this session* still exists.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Fetch the server's observability snapshot — every registered counter,
    /// gauge, and latency histogram plus the recovery event journal — over
    /// the wire. Session-less, like [`Connection::ping`].
    pub fn server_stats(&mut self) -> Result<phoenix_obs::StatsSnapshot> {
        match self.call(Request::Stats)? {
            Response::Stats { snapshot } => phoenix_obs::StatsSnapshot::decode(&snapshot)
                .map_err(|e| DriverError::Protocol(format!("bad stats snapshot: {e}"))),
            Response::Err { code, message } => Err(DriverError::Server { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Graceful logout. Consumes the connection. Best effort: a Logout
    /// failure is not worth surfacing to the application (the server cleans
    /// the session up on disconnect anyway), but it is not silently dropped
    /// either — the outcome is counted and journalled so a rash of failed
    /// closes shows up in the stats. Closing a poisoned connection is a
    /// no-op, never a panic.
    pub fn close(mut self) {
        let m = driver_metrics();
        let outcome = if self.poisoned {
            "skipped (poisoned)"
        } else {
            match self.call(Request::Logout) {
                Ok(_) => "clean",
                Err(_) => {
                    m.failed_closes.inc();
                    "logout failed"
                }
            }
        };
        m.closes.inc();
        phoenix_obs::journal().record(
            "driver",
            phoenix_obs::EventKind::ConnectionClose,
            format!("session {} close: {outcome}", self.session),
        );
    }
}
