//! The connection handle: one TCP connection, one server session.
//!
//! A connection speaks protocol v2 (tagged frames, pipelining, batches) when
//! both ends support it, negotiated at open; against an old server it falls
//! back to v1 transparently. [`Connection::protocol`] reports what was
//! granted.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use phoenix_storage::types::{Row, Schema, Value};
use phoenix_wire::frame::{read_frame, read_tagged_frame, write_frame, write_tagged_frame};
use phoenix_wire::message::{BatchItem, Outcome, Request, Response, PROTOCOL_V1, PROTOCOL_V2};

use crate::cursor::Cursor;
use crate::environment::Environment;
use crate::error::{DriverError, Result};
use crate::metrics::driver_metrics;
use crate::pipeline::Pipeline;
use crate::statement::Statement;

/// Result of `Connection::execute` (a complete, default result set — the
/// server ships all rows at once, as with ODBC default result sets).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// What the statement produced.
    pub outcome: Outcome,
    /// Server messages delivered with the reply (PRINT output, notices) —
    /// the paper's "reply buffers".
    pub messages: Vec<String>,
}

impl QueryResult {
    /// The result rows; panics if the statement did not produce a result set
    /// (test/example convenience).
    pub fn rows(&self) -> &[Row] {
        match &self.outcome {
            Outcome::ResultSet { rows, .. } => rows,
            other => panic!("expected result set, got {other:?}"),
        }
    }

    /// Result metadata, when the outcome is a result set.
    pub fn schema(&self) -> Option<&Schema> {
        match &self.outcome {
            Outcome::ResultSet { schema, .. } => Some(schema),
            _ => None,
        }
    }

    /// Rows affected; panics otherwise (test/example convenience).
    pub fn affected(&self) -> u64 {
        match &self.outcome {
            Outcome::RowsAffected(n) => *n,
            other => panic!("expected rows-affected, got {other:?}"),
        }
    }
}

/// An open connection. After any [`DriverError::Comm`] the connection is
/// poisoned and every further call fails — reconnect by opening a new one
/// (which is what Phoenix does under the covers).
pub struct Connection {
    stream: TcpStream,
    session: u64,
    addr: String,
    user: String,
    database: String,
    env: Environment,
    poisoned: bool,
    /// Negotiated protocol version (v1 against an old server).
    protocol: u32,
    /// Granted pipeline window (1 on v1).
    window: u32,
    /// Next client-assigned request tag (v2). Tags are issued in submission
    /// order, which is also the order the server replies in.
    next_tag: u64,
    /// Replies received while waiting for a different tag, and results
    /// buffered by v1 pipeline emulation.
    pub(crate) pending: VecDeque<(u64, Response)>,
}

impl Connection {
    pub(crate) fn open(
        env: &Environment,
        addr: &str,
        user: &str,
        database: &str,
        options: Vec<(String, Value)>,
    ) -> Result<Connection> {
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(DriverError::from)?
            .next()
            .ok_or_else(|| DriverError::Protocol(format!("cannot resolve '{addr}'")))?;
        let stream = TcpStream::connect_timeout(&sock_addr, env.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(env.read_timeout)?;

        let mut conn = Connection {
            stream,
            session: 0,
            addr: addr.to_string(),
            user: user.to_string(),
            database: database.to_string(),
            env: env.clone(),
            poisoned: false,
            protocol: PROTOCOL_V1,
            window: 1,
            next_tag: 1,
            pending: VecDeque::new(),
        };

        // The handshake itself is v1-framed in both directions; tagged
        // framing starts only after a successful v2 ack.
        if env.protocol >= PROTOCOL_V2 {
            match conn.call(Request::LoginV2 {
                user: user.to_string(),
                database: database.to_string(),
                options: options.clone(),
                protocol: PROTOCOL_V2,
                window: env.window,
            })? {
                Response::LoginAckV2 {
                    session,
                    protocol,
                    window,
                } => {
                    conn.session = session;
                    conn.protocol = protocol;
                    conn.window = window.max(1);
                    driver_metrics().connects.inc();
                    return Ok(conn);
                }
                // A Busy reply is a real (retryable) refusal — the server
                // speaks v2 but is at capacity; falling through to v1 would
                // just be refused again.
                Response::Err { code, message } if code == crate::error::codes::BUSY => {
                    return Err(DriverError::Sql { code, message })
                }
                // Any other error reply means "no v2 here": an old server
                // answers the unknown LoginV2 tag with a Parse error and
                // keeps the connection alive, so the same socket can fall
                // through to the v1 handshake below.
                Response::Err { .. } => {}
                other => {
                    return Err(DriverError::Protocol(format!(
                        "unexpected login response: {other:?}"
                    )))
                }
            }
        }

        match conn.call(Request::Login {
            user: user.to_string(),
            database: database.to_string(),
            options,
        })? {
            Response::LoginAck { session } => {
                conn.session = session;
                driver_metrics().connects.inc();
                Ok(conn)
            }
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected login response: {other:?}"
            ))),
        }
    }

    /// The negotiated protocol version: `PROTOCOL_V2` when both ends speak
    /// v2, `PROTOCOL_V1` after a fallback to an old server.
    pub fn protocol(&self) -> u32 {
        self.protocol
    }

    /// The pipeline window the server granted (1 on a v1 connection: one
    /// request in flight, i.e. no pipelining).
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The server address this connection was opened against.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Login user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Database name given at connect.
    pub fn database(&self) -> &str {
        &self.database
    }

    /// Server-assigned session id (diagnostics only).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The environment this connection was opened from.
    pub fn environment(&self) -> &Environment {
        &self.env
    }

    /// Has a communication failure poisoned this connection?
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Mark this connection dead without waiting for a transport error.
    /// Recovery layers use this when out-of-band evidence (e.g. a failed
    /// reconnect to the same server) shows the peer is gone, so liveness
    /// probes on this connection cannot be trusted again.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    /// Override the read timeout for subsequent requests.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// One request/response round trip. Any transport failure poisons the
    /// connection. On a v2 connection this is submit-then-await-own-tag, so
    /// it interleaves correctly with an outstanding [`Pipeline`]'s replies.
    pub(crate) fn call(&mut self, request: Request) -> Result<Response> {
        if self.protocol >= PROTOCOL_V2 {
            let tag = self.submit_tagged(&request)?;
            return self.wait_tagged(tag);
        }
        if self.poisoned {
            return Err(DriverError::Comm(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection previously failed",
            )));
        }
        let mut send = || -> Result<Response> {
            write_frame(&mut self.stream, &request.encode())?;
            // Failures on the *response* path are communication failures,
            // not protocol bugs: a server that dies mid-send leaves a
            // half-written frame behind, and once framing is lost the byte
            // stream is unusable — header bytes read as lengths, payload
            // bytes read as headers. An undecodable or oversized response
            // therefore poisons the connection and triggers Phoenix's
            // reconnect loop instead of surfacing a terminal Protocol error
            // (or worse, a decode panic).
            let payload = read_frame(&mut self.stream).map_err(|e| match e {
                phoenix_wire::frame::FrameError::Io(io) => DriverError::Comm(io),
                phoenix_wire::frame::FrameError::TooLarge(n) => {
                    DriverError::Comm(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "response frame of {n} bytes exceeds limit — stream desynchronized"
                        ),
                    ))
                }
            })?;
            Response::decode(&payload).map_err(|e| {
                DriverError::Comm(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("undecodable response frame ({e}) — stream desynchronized"),
                ))
            })
        };
        match send() {
            Ok(r) => Ok(r),
            Err(e) => {
                if e.is_comm() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Submit a tagged request without waiting for its reply (v2 only).
    /// Returns the client-assigned tag. A transport failure poisons the
    /// connection.
    pub(crate) fn submit_tagged(&mut self, request: &Request) -> Result<u64> {
        if self.poisoned {
            return Err(DriverError::Comm(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection previously failed",
            )));
        }
        debug_assert!(self.protocol >= PROTOCOL_V2);
        let tag = self.next_tag;
        self.next_tag += 1;
        if let Err(e) = write_tagged_frame(&mut self.stream, tag, &request.encode()) {
            self.poisoned = true;
            return Err(e.into());
        }
        Ok(tag)
    }

    /// Allocate a tag without any I/O — used by v1 pipeline emulation to
    /// key synchronously-obtained results.
    pub(crate) fn fresh_tag(&mut self) -> u64 {
        let tag = self.next_tag;
        self.next_tag += 1;
        tag
    }

    /// Receive one tagged reply (v2 only). Frames that fail to decode are
    /// communication failures: once a reply is garbled the stream cannot be
    /// trusted to stay in sync.
    pub(crate) fn read_tagged_reply(&mut self) -> Result<(u64, Response)> {
        if self.poisoned {
            return Err(DriverError::Comm(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection previously failed",
            )));
        }
        let result = (|stream: &mut TcpStream| -> Result<(u64, Response)> {
            let (tag, payload) = read_tagged_frame(stream).map_err(DriverError::from)?;
            let rsp = Response::decode(&payload).map_err(|e| {
                DriverError::Comm(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("undecodable response frame ({e}) — stream desynchronized"),
                ))
            })?;
            Ok((tag, rsp))
        })(&mut self.stream);
        if let Err(e) = &result {
            if e.is_comm() {
                self.poisoned = true;
            }
        }
        result
    }

    /// Await the reply for `tag`, buffering replies to other tags (they
    /// belong to an outstanding [`Pipeline`]).
    pub(crate) fn wait_tagged(&mut self, tag: u64) -> Result<Response> {
        if let Some(pos) = self.pending.iter().position(|(t, _)| *t == tag) {
            return Ok(self.pending.remove(pos).expect("position exists").1);
        }
        loop {
            let (t, rsp) = self.read_tagged_reply()?;
            if t == tag {
                return Ok(rsp);
            }
            self.pending.push_back((t, rsp));
        }
    }

    /// Begin a pipelined submission scope: submit up to [`Self::window`]
    /// requests before awaiting their replies. On a v1 connection the same
    /// API works with a window of 1 (each submit completes synchronously).
    pub fn pipeline(&mut self) -> Pipeline<'_> {
        Pipeline::new(self)
    }

    /// Execute several statements in one round trip, returning per-statement
    /// outcomes. Execution stops at the first failing statement — its error
    /// is the last item, and the item count tells how far the batch got.
    ///
    /// On a v1 connection the batch degrades to sequential round trips with
    /// identical semantics.
    pub fn execute_batch(&mut self, stmts: &[String]) -> Result<Vec<BatchItem>> {
        if self.protocol >= PROTOCOL_V2 {
            match self.call(Request::ExecBatch {
                stmts: stmts.to_vec(),
            })? {
                Response::BatchResult { items } => Ok(items),
                Response::Err { code, message } => Err(DriverError::Sql { code, message }),
                other => Err(DriverError::Protocol(format!(
                    "unexpected response {other:?}"
                ))),
            }
        } else {
            let mut items = Vec::with_capacity(stmts.len());
            for sql in stmts {
                match self.call(Request::Exec {
                    sql: sql.to_string(),
                })? {
                    Response::Result { outcome, messages } => {
                        items.push(BatchItem::Ok { outcome, messages })
                    }
                    Response::Err { code, message } => {
                        items.push(BatchItem::Err { code, message });
                        break;
                    }
                    other => {
                        return Err(DriverError::Protocol(format!(
                            "unexpected response {other:?}"
                        )))
                    }
                }
            }
            Ok(items)
        }
    }

    /// Execute a statement with default result-set semantics: for a SELECT
    /// the server sends every row in the reply.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        match self.call(Request::Exec {
            sql: sql.to_string(),
        })? {
            Response::Result { outcome, messages } => Ok(QueryResult { outcome, messages }),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Allocate a statement handle (ODBC `SQLAllocStmt` analogue).
    pub fn statement(&mut self) -> Statement<'_> {
        Statement::new(self)
    }

    /// Open a server cursor as an RAII handle: the cursor is closed on the
    /// server when the handle drops (or explicitly via [`Cursor::close`],
    /// which also reports errors).
    pub fn cursor(
        &mut self,
        sql: &str,
        kind: phoenix_wire::message::CursorKind,
    ) -> Result<Cursor<'_>> {
        let (id, schema, granted) = self.open_cursor_raw(sql, kind)?;
        Ok(Cursor::new(self, id, schema, granted))
    }

    /// Low-level: open a server cursor, returning `(cursor id, schema,
    /// granted kind)`. Phoenix holds cursor ids across recoveries (a raw id
    /// survives reconnects in its bookkeeping where a borrowing [`Cursor`]
    /// could not), which is why the raw API stays public.
    pub fn open_cursor_raw(
        &mut self,
        sql: &str,
        kind: phoenix_wire::message::CursorKind,
    ) -> Result<(u64, Schema, phoenix_wire::message::CursorKind)> {
        match self.call(Request::OpenCursor {
            sql: sql.to_string(),
            kind,
        })? {
            Response::CursorOpened {
                cursor,
                schema,
                granted,
            } => Ok((cursor, schema, granted)),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Low-level: fetch a block from an open server cursor.
    pub fn fetch_cursor_raw(
        &mut self,
        cursor: u64,
        dir: phoenix_wire::message::FetchDir,
        n: usize,
    ) -> Result<(Vec<Row>, bool)> {
        match self.call(Request::Fetch {
            cursor,
            dir,
            n: n as u32,
        })? {
            Response::Rows { rows, at_end } => Ok((rows, at_end)),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Low-level: close a server cursor.
    pub fn close_cursor_raw(&mut self, cursor: u64) -> Result<()> {
        match self.call(Request::CloseCursor { cursor })? {
            Response::Result { .. } => Ok(()),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Run `EXPLAIN <sql>` and return the plan as an ordinary result set:
    /// one row per plan step with `(step, table, join, access, index,
    /// est_rows)` columns, plus a trailing ORDER BY row when the statement
    /// sorts. The statement itself is planned but never executed.
    pub fn explain(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute(&format!("EXPLAIN {sql}"))
    }

    /// Catalog call: schema and primary-key columns of a table (the ODBC
    /// `SQLColumns`/`SQLPrimaryKeys` analogue).
    pub fn describe(&mut self, table: &str) -> Result<(Schema, Vec<String>)> {
        match self.call(Request::Describe {
            table: table.to_string(),
        })? {
            Response::TableInfo {
                schema,
                primary_key,
            } => Ok((schema, primary_key)),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Liveness probe: a Ping round trip. Succeeds even when the server has
    /// restarted (Ping is session-less); use a session-scoped request to
    /// test whether *this session* still exists.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Fetch the server's observability snapshot — every registered counter,
    /// gauge, and latency histogram plus the recovery event journal — over
    /// the wire. Session-less, like [`Connection::ping`].
    pub fn server_stats(&mut self) -> Result<phoenix_obs::StatsSnapshot> {
        match self.call(Request::Stats)? {
            Response::Stats { snapshot } => phoenix_obs::StatsSnapshot::decode(&snapshot)
                .map_err(|e| DriverError::Protocol(format!("bad stats snapshot: {e}"))),
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Graceful logout. Consumes the connection. Best effort: a Logout
    /// failure is not worth surfacing to the application (the server cleans
    /// the session up on disconnect anyway), but it is not silently dropped
    /// either — the outcome is counted and journalled so a rash of failed
    /// closes shows up in the stats. Closing a poisoned connection is a
    /// no-op, never a panic.
    pub fn close(mut self) {
        let m = driver_metrics();
        let outcome = if self.poisoned {
            "skipped (poisoned)"
        } else {
            match self.call(Request::Logout) {
                Ok(_) => "clean",
                Err(_) => {
                    m.failed_closes.inc();
                    "logout failed"
                }
            }
        };
        m.closes.inc();
        phoenix_obs::journal().record(
            "driver",
            phoenix_obs::EventKind::ConnectionClose,
            format!("session {} close: {outcome}", self.session),
        );
    }
}
