//! Driver-side metric handles, registered once and cached in a static.
//!
//! The driver itself stays recovery-unaware; these count only what the
//! driver layer can see directly (connection lifecycle). Recovery metrics
//! live in `phoenix-core`, which owns the crash/reconnect machinery.

use std::sync::{Arc, OnceLock};

use phoenix_obs::{registry, Counter};

/// Cached handles for every driver metric.
pub struct DriverMetrics {
    /// Connections opened successfully (`phoenix_driver_connects_total`).
    pub connects: Arc<Counter>,
    /// `Connection::close` calls, clean or not
    /// (`phoenix_driver_closes_total`).
    pub closes: Arc<Counter>,
    /// Closes whose Logout round trip failed
    /// (`phoenix_driver_failed_closes_total`). Best effort by design, but a
    /// rash of these means sessions are being abandoned to server-side
    /// cleanup.
    pub failed_closes: Arc<Counter>,
}

/// The driver metric set, registered on first use.
pub fn driver_metrics() -> &'static DriverMetrics {
    static M: OnceLock<DriverMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        DriverMetrics {
            connects: r.counter(
                "phoenix_driver_connects_total",
                "connections opened successfully",
            ),
            closes: r.counter(
                "phoenix_driver_closes_total",
                "Connection::close calls (clean or best-effort)",
            ),
            failed_closes: r.counter(
                "phoenix_driver_failed_closes_total",
                "closes whose Logout round trip failed",
            ),
        }
    })
}
