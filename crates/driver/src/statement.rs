//! Statement handles: cursor options and fetching.
//!
//! Mirrors the ODBC statement model the paper's examples use: set cursor
//! attributes, execute, then issue fetch commands. With the default
//! (forward-only) options the result set arrives complete and fetches are
//! served client-side; with keyset/dynamic options a server cursor is opened
//! and each block fetch is a round trip.

use phoenix_storage::types::{Row, Schema};
use phoenix_wire::message::{CursorKind, FetchDir, Outcome, Request, Response};

use crate::connection::Connection;
use crate::error::{DriverError, Result};

/// What `Statement::execute` produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementResult {
    /// A result set is open (buffered or via server cursor); fetch from it.
    ResultSet,
    /// A data-modification count.
    RowsAffected(u64),
    /// DDL / control statement.
    Done,
}

enum Source {
    /// Default result set: all rows buffered client-side.
    Buffered { rows: Vec<Row>, pos: usize },
    /// Server cursor: fetch blocks on demand.
    Cursor {
        id: u64,
        /// Read-ahead block buffer.
        buf: Vec<Row>,
        buf_pos: usize,
        at_end: bool,
    },
}

/// A statement handle borrowed from a connection.
pub struct Statement<'c> {
    conn: &'c mut Connection,
    cursor_kind: CursorKind,
    /// Force a server cursor even for forward-only statements, so rows cross
    /// the wire in blocks instead of all at once. Phoenix uses this for
    /// result-set delivery from its persistent tables.
    server_cursor: bool,
    fetch_block: usize,
    schema: Option<Schema>,
    granted: Option<CursorKind>,
    source: Option<Source>,
    messages: Vec<String>,
    rows_affected: Option<u64>,
}

impl<'c> Statement<'c> {
    pub(crate) fn new(conn: &'c mut Connection) -> Statement<'c> {
        let fetch_block = conn.environment().fetch_block;
        Statement {
            conn,
            cursor_kind: CursorKind::ForwardOnly,
            server_cursor: false,
            fetch_block,
            schema: None,
            granted: None,
            source: None,
            messages: Vec::new(),
            rows_affected: None,
        }
    }

    /// Set the cursor type before `execute` (the ODBC statement attribute).
    pub fn set_cursor_type(&mut self, kind: CursorKind) -> &mut Self {
        self.cursor_kind = kind;
        self
    }

    /// Force block-wise delivery through a server cursor even for
    /// forward-only statements.
    pub fn set_server_cursor(&mut self, on: bool) -> &mut Self {
        self.server_cursor = on;
        self
    }

    /// Rows per block fetch on server cursors.
    pub fn set_fetch_block(&mut self, n: usize) -> &mut Self {
        self.fetch_block = n.max(1);
        self
    }

    /// Execute `sql` under the configured cursor options.
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult> {
        self.schema = None;
        self.granted = None;
        self.source = None;
        self.messages.clear();
        self.rows_affected = None;

        let is_select = sql.trim_start().to_ascii_uppercase().starts_with("SELECT");
        if is_select && (self.cursor_kind != CursorKind::ForwardOnly || self.server_cursor) {
            // Server cursor path.
            match self.conn.call(Request::OpenCursor {
                sql: sql.to_string(),
                kind: self.cursor_kind,
            })? {
                Response::CursorOpened {
                    cursor,
                    schema,
                    granted,
                } => {
                    self.schema = Some(schema);
                    self.granted = Some(granted);
                    self.source = Some(Source::Cursor {
                        id: cursor,
                        buf: Vec::new(),
                        buf_pos: 0,
                        at_end: false,
                    });
                    Ok(StatementResult::ResultSet)
                }
                Response::Err { code, message } => Err(DriverError::Sql { code, message }),
                other => Err(DriverError::Protocol(format!(
                    "unexpected response {other:?}"
                ))),
            }
        } else {
            // Default result set / non-query statement.
            match self.conn.call(Request::Exec {
                sql: sql.to_string(),
            })? {
                Response::Result { outcome, messages } => {
                    self.messages = messages;
                    match outcome {
                        Outcome::ResultSet { schema, rows } => {
                            self.schema = Some(schema);
                            self.granted = Some(CursorKind::ForwardOnly);
                            self.source = Some(Source::Buffered { rows, pos: 0 });
                            Ok(StatementResult::ResultSet)
                        }
                        Outcome::RowsAffected(n) => {
                            self.rows_affected = Some(n);
                            Ok(StatementResult::RowsAffected(n))
                        }
                        Outcome::Done => Ok(StatementResult::Done),
                    }
                }
                Response::Err { code, message } => Err(DriverError::Sql { code, message }),
                other => Err(DriverError::Protocol(format!(
                    "unexpected response {other:?}"
                ))),
            }
        }
    }

    /// Result-set metadata of the open result.
    pub fn schema(&self) -> Option<&Schema> {
        self.schema.as_ref()
    }

    /// The cursor kind the server actually granted (it may downgrade).
    pub fn granted_cursor(&self) -> Option<CursorKind> {
        self.granted
    }

    /// Server messages from the last execute.
    pub fn messages(&self) -> &[String] {
        &self.messages
    }

    /// Rows affected by the last execute, for DML statements.
    pub fn rows_affected(&self) -> Option<u64> {
        self.rows_affected
    }

    /// Fetch the next row, or `None` at end of the result set.
    pub fn fetch(&mut self) -> Result<Option<Row>> {
        let block = self.fetch_block;
        match self.source.as_mut() {
            None => Err(DriverError::Protocol("no open result set".into())),
            Some(Source::Buffered { rows, pos }) => {
                if *pos < rows.len() {
                    let row = rows[*pos].clone();
                    *pos += 1;
                    Ok(Some(row))
                } else {
                    Ok(None)
                }
            }
            Some(Source::Cursor { .. }) => {
                // Refill from the server when the block buffer is drained.
                loop {
                    let (need_fill, done) = match self.source.as_ref() {
                        Some(Source::Cursor {
                            buf,
                            buf_pos,
                            at_end,
                            ..
                        }) => (*buf_pos >= buf.len(), *at_end),
                        _ => unreachable!(),
                    };
                    if !need_fill {
                        break;
                    }
                    if done {
                        return Ok(None);
                    }
                    self.fill_block(FetchDir::Next, block)?;
                }
                match self.source.as_mut() {
                    Some(Source::Cursor { buf, buf_pos, .. }) => {
                        let row = buf[*buf_pos].clone();
                        *buf_pos += 1;
                        Ok(Some(row))
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Fetch up to `n` rows in an explicit direction (scrollable cursors).
    /// Bypasses the read-ahead buffer: issues one server fetch (or serves
    /// directly from the client buffer for default result sets).
    pub fn fetch_scroll(&mut self, dir: FetchDir, n: usize) -> Result<Vec<Row>> {
        match self.source.as_mut() {
            None => Err(DriverError::Protocol("no open result set".into())),
            Some(Source::Buffered { rows, pos }) => match dir {
                FetchDir::Next => {
                    let start = *pos;
                    let end = (start + n).min(rows.len());
                    *pos = end;
                    Ok(rows[start..end].to_vec())
                }
                FetchDir::Prior => {
                    let end = *pos;
                    let start = end.saturating_sub(n);
                    *pos = start;
                    Ok(rows[start..end].to_vec())
                }
                FetchDir::Absolute(k) => {
                    let start = (k as usize).min(rows.len());
                    let end = (start + n).min(rows.len());
                    *pos = end;
                    Ok(rows[start..end].to_vec())
                }
            },
            Some(Source::Cursor {
                id,
                buf,
                buf_pos,
                at_end: _,
            }) => {
                // Explicit scrolling invalidates the read-ahead buffer.
                buf.clear();
                *buf_pos = 0;
                let id = *id;
                let response = self.conn.call(Request::Fetch {
                    cursor: id,
                    dir,
                    n: n as u32,
                })?;
                match response {
                    Response::Rows { rows, at_end: end } => {
                        if let Some(Source::Cursor { at_end: ae, .. }) = self.source.as_mut() {
                            *ae = end && matches!(dir, FetchDir::Next);
                        }
                        Ok(rows)
                    }
                    Response::Err { code, message } => Err(DriverError::Sql { code, message }),
                    other => Err(DriverError::Protocol(format!(
                        "unexpected response {other:?}"
                    ))),
                }
            }
        }
    }

    fn fill_block(&mut self, dir: FetchDir, n: usize) -> Result<()> {
        let id = match self.source.as_ref() {
            Some(Source::Cursor { id, .. }) => *id,
            _ => return Err(DriverError::Protocol("not a cursor statement".into())),
        };
        match self.conn.call(Request::Fetch {
            cursor: id,
            dir,
            n: n as u32,
        })? {
            Response::Rows { rows, at_end } => {
                if let Some(Source::Cursor {
                    buf,
                    buf_pos,
                    at_end: ae,
                    ..
                }) = self.source.as_mut()
                {
                    *buf = rows;
                    *buf_pos = 0;
                    *ae = at_end;
                }
                Ok(())
            }
            Response::Err { code, message } => Err(DriverError::Sql { code, message }),
            other => Err(DriverError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Close the statement's server cursor, if any.
    pub fn close(&mut self) -> Result<()> {
        if let Some(Source::Cursor { id, .. }) = self.source.take() {
            match self.conn.call(Request::CloseCursor { cursor: id })? {
                Response::Result { .. } => Ok(()),
                Response::Err { code, message } => Err(DriverError::Sql { code, message }),
                other => Err(DriverError::Protocol(format!(
                    "unexpected response {other:?}"
                ))),
            }
        } else {
            Ok(())
        }
    }
}
