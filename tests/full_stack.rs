//! Workspace-level integration tests spanning every crate: SQL front end →
//! engine → WAL → wire protocol → server → driver → Phoenix, under crash
//! injection.
//!
//! The headline test is *crash-transparency equivalence*: the full TPC-H
//! query suite run through Phoenix with the server crashing repeatedly must
//! produce byte-identical results to a crash-free native run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::Environment;
use phoenix_engine::{Engine, EngineConfig};
use phoenix_server::ServerHarness;
use phoenix_storage::types::{Row, Value};
use phoenix_tpch::{queries::QUERIES, Tpch, TpchConfig};

fn temp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("phoenix-fullstack-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Load the TPC-H workload directly into an engine at `dir`.
fn load_tpch(dir: &PathBuf, scale: f64) -> Tpch {
    let workload = Tpch::new(TpchConfig::default().with_scale(scale));
    let engine = Engine::open(dir, EngineConfig::default()).unwrap();
    let sid = engine.create_session("loader");
    for sql in workload.setup_sql() {
        engine.execute(sid, &sql).unwrap();
    }
    engine.close_session(sid).unwrap();
    engine.checkpoint().unwrap();
    workload
}

fn phoenix_config() -> PhoenixConfig {
    let mut c = PhoenixConfig::default();
    c.recovery.read_timeout = Some(Duration::from_millis(1000));
    c.recovery.ping_interval = Duration::from_millis(20);
    c.recovery.max_wait = Duration::from_secs(20);
    c
}

#[test]
fn query_suite_equivalent_under_crash_storm() {
    let dir = temp_dir();
    load_tpch(&dir, 0.2);
    let harness = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = harness.addr();

    // Reference: crash-free native run.
    let reference: Vec<Vec<Row>> = {
        let mut conn = Environment::new().connect(&addr, "ref", "tpch").unwrap();
        let out = QUERIES
            .iter()
            .map(|q| conn.execute(q.sql).unwrap().rows().to_vec())
            .collect();
        conn.close();
        out
    };

    // Phoenix run with the server crashing underneath.
    let stop = Arc::new(AtomicBool::new(false));
    let chaos_stop = Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        let mut h = harness;
        while !chaos_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(150));
            if chaos_stop.load(Ordering::SeqCst) {
                break;
            }
            h.crash().unwrap();
            std::thread::sleep(Duration::from_millis(80));
            h.restart().unwrap();
        }
        h
    });

    let mut pc =
        PhoenixConnection::connect(&Environment::new(), &addr, "phx", "tpch", phoenix_config())
            .unwrap();
    // Keep sweeping the suite until the storm has interfered at least once
    // (bounded so a pathological scheduler cannot hang the test).
    let mut sweeps = 0;
    while pc.stats().recoveries == 0 && sweeps < 25 {
        for (q, expected) in QUERIES.iter().zip(&reference) {
            let got = pc.execute(q.sql).unwrap();
            assert_eq!(
                got.rows(),
                &expected[..],
                "{} diverged under crash storm",
                q.name
            );
        }
        sweeps += 1;
    }
    let recoveries = pc.stats().recoveries;
    stop.store(true, Ordering::SeqCst);
    let harness = chaos.join().unwrap();
    pc.close();
    drop(harness);
    assert!(
        recoveries > 0,
        "crash storm never hit the session in {sweeps} sweeps"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn two_phoenix_sessions_survive_the_same_crash() {
    let dir = temp_dir();
    let mut harness = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = harness.addr();

    let mut a = PhoenixConnection::connect(&Environment::new(), &addr, "a", "db", phoenix_config())
        .unwrap();
    let mut b = PhoenixConnection::connect(&Environment::new(), &addr, "b", "db", phoenix_config())
        .unwrap();

    a.execute("CREATE TABLE shared (id INT PRIMARY KEY, who TEXT)")
        .unwrap();
    a.execute("INSERT INTO shared VALUES (1, 'a')").unwrap();
    b.execute("INSERT INTO shared VALUES (2, 'b')").unwrap();
    // Both sessions hold temp objects through their redirections.
    a.execute("CREATE TABLE #mine (v INT)").unwrap();
    b.execute("CREATE TABLE #mine (v INT)").unwrap();
    a.execute("INSERT INTO #mine VALUES (10)").unwrap();
    b.execute("INSERT INTO #mine VALUES (20)").unwrap();

    harness.crash().unwrap();
    let h = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        harness.restart().unwrap();
        harness
    });

    // Both sessions recover independently, and their redirected temp state
    // stays separate.
    let ra = a.execute("SELECT v FROM #mine").unwrap();
    let rb = b.execute("SELECT v FROM #mine").unwrap();
    assert_eq!(ra.rows(), &[vec![Value::Int(10)]]);
    assert_eq!(rb.rows(), &[vec![Value::Int(20)]]);
    let r = a.execute("SELECT COUNT(*) FROM shared").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(2));

    let harness = h.join().unwrap();
    a.close();
    b.close();
    drop(harness);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_state_survives_orderly_and_crash_restarts() {
    let dir = temp_dir();
    // Cycle 1: create data, graceful shutdown (checkpoint).
    {
        let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut conn = Environment::new().connect(&h.addr(), "u", "db").unwrap();
        conn.execute("CREATE TABLE log (id INT PRIMARY KEY, note TEXT)")
            .unwrap();
        conn.execute("INSERT INTO log VALUES (1, 'cycle one')")
            .unwrap();
        conn.close();
        h.shutdown();
    }
    // Cycle 2: add data, crash.
    {
        let mut h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut conn = Environment::new()
            .with_read_timeout(Some(Duration::from_millis(500)))
            .connect(&h.addr(), "u", "db")
            .unwrap();
        conn.execute("INSERT INTO log VALUES (2, 'cycle two')")
            .unwrap();
        h.crash().unwrap();
        // Connection is dead — that's fine, durability is the point here.
        h.restart().unwrap();
        h.shutdown();
    }
    // Cycle 3: everything committed in both cycles is present.
    {
        let h = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
        let mut conn = Environment::new().connect(&h.addr(), "u", "db").unwrap();
        let r = conn
            .execute("SELECT id, note FROM log ORDER BY id")
            .unwrap();
        assert_eq!(
            r.rows(),
            &[
                vec![Value::Int(1), Value::Text("cycle one".into())],
                vec![Value::Int(2), Value::Text("cycle two".into())],
            ]
        );
        conn.close();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn refresh_functions_exactly_once_through_phoenix_with_crashes() {
    let dir = temp_dir();
    let workload = load_tpch(&dir, 0.2);
    let harness = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = harness.addr();

    let mut pc =
        PhoenixConnection::connect(&Environment::new(), &addr, "rf", "tpch", phoenix_config())
            .unwrap();
    let before = pc.execute("SELECT COUNT(*) FROM orders").unwrap().rows()[0][0]
        .as_i64()
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let chaos_stop = Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        let mut h = harness;
        while !chaos_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(100));
            if chaos_stop.load(Ordering::SeqCst) {
                break;
            }
            h.crash().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            h.restart().unwrap();
        }
        h
    });

    let (lo, hi) = workload.refresh_key_range();
    // Three full RF1+RF2 cycles under the storm: every cycle must leave the
    // database exactly where it started.
    for _ in 0..3 {
        for sql in phoenix_tpch::refresh::rf1(lo, hi) {
            pc.execute(&sql).unwrap();
        }
        for sql in phoenix_tpch::refresh::rf2(lo, hi) {
            pc.execute(&sql).unwrap();
        }
    }
    stop.store(true, Ordering::SeqCst);
    let harness = chaos.join().unwrap();

    let after = pc.execute("SELECT COUNT(*) FROM orders").unwrap().rows()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(before, after, "RF cycles not exactly-once under crashes");
    pc.close();
    drop(harness);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_sessions_exactly_once_under_chaos() {
    // Two Phoenix sessions hammer the same table from separate threads while
    // the server crashes repeatedly; every insert must land exactly once.
    let dir = temp_dir();
    let harness = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = harness.addr();

    {
        let mut seed =
            PhoenixConnection::connect(&Environment::new(), &addr, "seed", "db", phoenix_config())
                .unwrap();
        seed.execute("CREATE TABLE ledger (id INT PRIMARY KEY, who TEXT)")
            .unwrap();
        seed.close();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let chaos_stop = Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        let mut h = harness;
        while !chaos_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(90));
            if chaos_stop.load(Ordering::SeqCst) {
                break;
            }
            h.crash().unwrap();
            std::thread::sleep(Duration::from_millis(60));
            h.restart().unwrap();
        }
        h
    });

    const PER_WORKER: i64 = 25;
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut pc = PhoenixConnection::connect(
                    &Environment::new(),
                    &addr,
                    &format!("worker{w}"),
                    "db",
                    phoenix_config(),
                )
                .unwrap();
                for i in 0..PER_WORKER {
                    let id = w * 1000 + i;
                    pc.execute(&format!("INSERT INTO ledger VALUES ({id}, 'w{w}')"))
                        .unwrap();
                    // Pace the workload so the crash storm lands inside it.
                    std::thread::sleep(Duration::from_millis(12));
                }
                let recoveries = pc.stats().recoveries;
                pc.close();
                recoveries
            })
        })
        .collect();

    let mut total_recoveries = 0;
    for w in workers {
        total_recoveries += w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let harness = chaos.join().unwrap();

    let mut check =
        PhoenixConnection::connect(&Environment::new(), &addr, "check", "db", phoenix_config())
            .unwrap();
    let r = check.execute("SELECT COUNT(*) FROM ledger").unwrap();
    assert_eq!(
        r.rows()[0][0],
        Value::Int(2 * PER_WORKER),
        "exactly-once violated across concurrent sessions ({total_recoveries} recoveries)"
    );
    assert!(total_recoveries > 0, "the storm never hit either session");
    check.close();
    drop(harness);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn long_session_soak_with_mixed_statements_under_chaos() {
    // A long-lived session exercising every interception path — wrapped DML,
    // materialized queries, application transactions, temp objects, stored
    // procedures, cursors — while the server crashes repeatedly. The final
    // state must be exactly what a crash-free execution would produce.
    let dir = temp_dir();
    let harness = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = harness.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let chaos_stop = Arc::clone(&stop);
    let chaos = std::thread::spawn(move || {
        let mut h = harness;
        while !chaos_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(140));
            if chaos_stop.load(Ordering::SeqCst) {
                break;
            }
            h.crash().unwrap();
            std::thread::sleep(Duration::from_millis(70));
            h.restart().unwrap();
        }
        h
    });

    let mut pc =
        PhoenixConnection::connect(&Environment::new(), &addr, "soak", "db", phoenix_config())
            .unwrap();
    pc.execute("CREATE TABLE acc (id INT PRIMARY KEY, bal INT)")
        .unwrap();
    pc.execute("INSERT INTO acc VALUES (1, 0), (2, 0)").unwrap();
    pc.execute("CREATE TABLE #scratch (round INT, note TEXT)")
        .unwrap();
    pc.execute(
        "CREATE PROCEDURE transfer (@amt INT) AS BEGIN \
                UPDATE acc SET bal = bal - @amt WHERE id = 1; \
                UPDATE acc SET bal = bal + @amt WHERE id = 2 END",
    )
    .unwrap();

    const ROUNDS: i64 = 12;
    for round in 0..ROUNDS {
        // Wrapped DML.
        pc.execute("UPDATE acc SET bal = bal + 10 WHERE id = 1")
            .unwrap();
        // Procedure with side effects (wrapped like DML).
        pc.execute("EXEC transfer (3)").unwrap();
        // Application transaction with several statements.
        pc.execute("BEGIN").unwrap();
        pc.execute(&format!("INSERT INTO #scratch VALUES ({round}, 'in-txn')"))
            .unwrap();
        pc.execute("UPDATE acc SET bal = bal + 1 WHERE id = 2")
            .unwrap();
        pc.execute("COMMIT").unwrap();
        // Materialized query sanity mid-stream.
        let r = pc.execute("SELECT SUM(bal) FROM acc").unwrap();
        assert_eq!(
            r.rows()[0][0],
            Value::Int((round + 1) * 11),
            "invariant broken at round {round}"
        );
        // Cursor over the temp (redirected) table.
        let mut stmt = pc.statement();
        stmt.execute("SELECT round FROM #scratch").unwrap();
        assert_eq!(stmt.fetch_all().unwrap().len() as i64, round + 1);
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::SeqCst);
    let harness = chaos.join().unwrap();

    // Final audit: per-round +10 to acc1, transfer moves 3 from 1→2, +1 to
    // acc2 inside the transaction.
    let r = pc.execute("SELECT bal FROM acc ORDER BY id").unwrap();
    assert_eq!(r.rows()[0][0], Value::Int(ROUNDS * 7)); // +10 -3 per round
    assert_eq!(r.rows()[1][0], Value::Int(ROUNDS * 4)); // +3 +1 per round
    let recoveries = pc.stats().recoveries;
    assert!(recoveries > 0, "storm never hit the soak session");

    pc.close();
    drop(harness);
    std::fs::remove_dir_all(&dir).unwrap();
}
