//! End-to-end observability test: a crash/recover cycle must leave a
//! complete, ordered recovery timeline in the event journal, drive the
//! recovery counters, and be visible through the `Request::Stats` wire
//! round trip — server and client run in one process here, so both sides'
//! metrics land in the same global registry.

use std::time::Duration;

use phoenix_core::{PhoenixConfig, PhoenixConnection};
use phoenix_driver::Environment;
use phoenix_engine::EngineConfig;
use phoenix_obs::{journal, EventKind};
use phoenix_server::ServerHarness;

#[test]
fn crash_recovery_timeline_and_wire_stats() {
    let dir = std::env::temp_dir().join(format!("phoenix-obs-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut server = ServerHarness::start(&dir, EngineConfig::default()).unwrap();
    let addr = server.addr();

    let env = Environment::new().with_read_timeout(Some(Duration::from_millis(500)));
    let mut cfg = PhoenixConfig::default();
    cfg.recovery.read_timeout = Some(Duration::from_millis(500));
    cfg.recovery.ping_interval = Duration::from_millis(20);
    let mut db = PhoenixConnection::connect(&env, &addr, "obs", "db", cfg).unwrap();

    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }

    // Crash mid-session; Phoenix must recover transparently.
    server.crash().unwrap();
    std::thread::sleep(Duration::from_millis(40));
    server.restart().unwrap();
    for i in 5..10 {
        db.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    let n = db.execute("SELECT COUNT(*) FROM t").unwrap().rows()[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(n, 10, "exactly-once violated across the crash");

    // --- Counters -------------------------------------------------------
    assert!(db.stats().recoveries >= 1);
    assert!(
        db.stats().reconnect_attempts >= 1,
        "recovery must have reconnected at least once"
    );
    let snapshot = phoenix_obs::StatsSnapshot::capture();
    assert!(
        snapshot
            .counter("phoenix_reconnect_attempts_total")
            .is_some_and(|v| v >= db.stats().reconnect_attempts),
        "global reconnect counter must cover this connection's attempts"
    );
    assert!(snapshot
        .counter("phoenix_recoveries_total")
        .is_some_and(|v| v >= 1));

    // --- Recovery timeline ---------------------------------------------
    // The journal timestamps are taken inside the journal lock, so sequence
    // order and timestamp order must agree — globally, not just per
    // component.
    let events = journal().events();
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "journal out of order");
        assert!(
            pair[0].ts_us <= pair[1].ts_us,
            "timestamps must be monotonic with sequence: {:?} then {:?}",
            pair[0],
            pair[1]
        );
    }
    // The full ordered recovery story: crash detected, then at least one
    // reconnect attempt, then reconnected, then the session context
    // replayed, then state verified, then recovery complete.
    let seq_of = |kind: EventKind| {
        events
            .iter()
            .find(|e| e.component == "core" && e.kind == kind)
            .unwrap_or_else(|| panic!("no {kind:?} event in journal"))
            .seq
    };
    let crash = seq_of(EventKind::CrashDetected);
    let attempt = seq_of(EventKind::ReconnectAttempt);
    let reconnected = seq_of(EventKind::Reconnected);
    let context = seq_of(EventKind::ContextReinstalled);
    let verified = seq_of(EventKind::StateVerified);
    let complete = seq_of(EventKind::RecoveryComplete);
    assert!(
        crash < attempt && attempt < reconnected && reconnected < context,
        "timeline out of order: crash={crash} attempt={attempt} \
         reconnected={reconnected} context={context}"
    );
    assert!(
        context < verified && verified < complete,
        "timeline out of order: context={context} verified={verified} complete={complete}"
    );

    // --- Wire round trip ------------------------------------------------
    let mut monitor = env.connect(&addr, "monitor", "db").unwrap();
    let stats = monitor.server_stats().unwrap();
    assert!(
        stats
            .counter("phoenix_wal_fsyncs_total")
            .is_some_and(|v| v > 0),
        "committed inserts must have fsynced the WAL"
    );
    let stmt_latency_samples: u64 = stats
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("phoenix_stmt_latency_us"))
        .map(|(_, h)| h.count())
        .sum();
    assert!(
        stmt_latency_samples > 0,
        "statement latency histograms must have recorded the workload"
    );
    assert!(
        !stats.events.is_empty(),
        "the journal must travel with the snapshot"
    );
    monitor.close();

    db.close();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
