//! Std-backed stand-in for the `parking_lot` API subset used by this
//! workspace.
//!
//! The build environment has no network access and no vendored registry, so
//! external crates cannot be downloaded. This shim keeps the familiar
//! `parking_lot` surface (guards without `Result`, a `Condvar` that takes the
//! guard by `&mut`) while delegating to `std::sync`. Lock poisoning is
//! deliberately swallowed — `parking_lot` has no poisoning either, and a
//! panicked holder leaves state no less consistent than it would there.

use std::fmt;
use std::ops::{Deref, DerefMut};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion primitive (no poisoning, like `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(Some(g)),
            Err(p) => MutexGuard(Some(p.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock (no poisoning, like `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable paired with [`Mutex`], `parking_lot`-style: `wait`
/// takes the guard by `&mut` instead of by value.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait to be notified; the lock
    /// is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Like [`Condvar::wait`] with an upper bound on the wait time. Returns
    /// true if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        result.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        assert!(l.try_write().is_none());
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        t.join().unwrap();
    }
}
