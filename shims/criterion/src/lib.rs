//! Stand-in for the `criterion` crate API subset used by this workspace.
//!
//! The build environment has no network access and no vendored registry, so
//! external crates cannot be downloaded. This shim keeps the workspace's
//! benches compiling and *running*: it executes each benchmark for the
//! configured sample count, timing every sample, and prints mean / min / max
//! to stdout. It performs no statistical analysis, outlier rejection, or
//! HTML reporting — it is a timing harness, not Criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A `group/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose a label from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim ignores the time budget and is
    /// driven purely by `sample_size`.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects one timed sample per invocation of the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` invocations of `body`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = t0.elapsed();
    }

    /// Let the body do its own timing of `iters` iterations and report the
    /// total measured duration.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut body: F) {
        self.elapsed = body(self.iters);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // One warm-up sample, discarded.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "bench {label}: mean {:.3} ms, min {:.3} ms, max {:.3} ms ({} samples)",
        mean * 1e3,
        min * 1e3,
        max * 1e3,
        per_iter.len()
    );
}

/// Bundle benchmark functions into a runnable group, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_bodies() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
            g.bench_with_input(BenchmarkId::new("custom", 7), &7u64, |b, &n| {
                b.iter_custom(|iters| {
                    runs += 1;
                    Duration::from_nanos(iters * n)
                })
            });
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
