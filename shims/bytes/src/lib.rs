//! Stand-in for the `bytes` crate API subset used by this workspace.
//!
//! The build environment has no network access and no vendored registry, so
//! external crates cannot be downloaded. This shim provides [`Buf`] /
//! [`BufMut`] plus contiguous [`Bytes`] / [`BytesMut`] with the little-endian
//! accessors the codec, WAL record, snapshot and wire layers rely on. It does
//! not attempt reference-counted zero-copy slicing — every buffer owns its
//! storage — which is fine for correctness and for the sizes involved.

use std::ops::{Deref, RangeTo};

// ---------------------------------------------------------------------------
// Buf: sequential reader
// ---------------------------------------------------------------------------

/// Sequential read access to a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as one contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Does at least one unread byte remain?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy exactly `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian i32.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

// ---------------------------------------------------------------------------
// BufMut: sequential writer
// ---------------------------------------------------------------------------

/// Sequential append access to a growable byte buffer.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

// ---------------------------------------------------------------------------
// Bytes: an owned, readable buffer with a cursor
// ---------------------------------------------------------------------------

/// An immutable byte buffer that shrinks from the front as it is read.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied; this shim has no zero-copy sharing).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Is the unread view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new buffer over a prefix of the unread view.
    pub fn slice(&self, range: RangeTo<usize>) -> Bytes {
        Bytes {
            data: self.chunk()[range].to_vec(),
            pos: 0,
        }
    }

    /// Copy the unread view out as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.pos += cnt;
    }
}

// ---------------------------------------------------------------------------
// BytesMut: an owned, appendable buffer
// ---------------------------------------------------------------------------

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Copy the contents out as a vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(u64::MAX);
        w.put_i32_le(-5);
        w.put_i64_le(i64::MIN);
        w.put_f64_le(2.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), u64::MAX);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_i64_le(), i64::MIN);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_reader_advances() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u16_le(), u16::from_le_bytes([2, 3]));
        assert_eq!(r.chunk(), &[4]);
    }

    #[test]
    fn bytes_slice_and_len_track_unread_view() {
        let mut b = Bytes::from(vec![9u8, 8, 7, 6]);
        assert_eq!(b.len(), 4);
        b.advance(1);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[8, 7, 6]);
        let head = b.slice(..2);
        assert_eq!(&head[..], &[8, 7]);
    }
}
