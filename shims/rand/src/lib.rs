//! Stand-in for the `rand` crate API subset used by this workspace.
//!
//! The build environment has no network access and no vendored registry, so
//! external crates cannot be downloaded. This shim provides a deterministic
//! [`rngs::StdRng`] (splitmix64) with [`SeedableRng::seed_from_u64`] and the
//! [`Rng::gen_range`] surface the TPC-H data generator uses. It is a data
//! generator's PRNG, not a statistically rigorous or cryptographic one; the
//! modulo range reduction has negligible bias for the ranges involved.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `gen_range` can produce.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)`. `hi` is exclusive; callers
    /// guarantee `lo < hi`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        // 53 mantissa bits of uniformity in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi.next_up())
    }
}

/// Object-safe RNG core: a source of 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let w: i32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&w));
            let f: f64 = rng.gen_range(-999.99..9999.99);
            assert!((-999.99..9999.99).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
